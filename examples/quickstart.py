"""Quickstart: from the pigeonring principle to a served query in one page.

The paper's running example (Figure 1) shows why the pigeonring principle
filters more than the pigeonhole principle; this quickstart shows the other
end of the repo: the same machinery served over HTTP.  It builds a small
Hamming workload, attaches it to a `SearchEngine`, spawns the asyncio JSON
server on a free local port, and queries it through the blocking
`EngineClient` -- thresholded selection, top-k, and the server's own
batching/health introspection.

Run with:  python examples/quickstart.py
"""

from repro.core import passes_pigeonhole, passes_pigeonring_basic
from repro.datasets.binary import gist_like
from repro.engine import EngineClient, SearchEngine, ServerConfig, ServerThread
from repro.hamming import BinaryVectorDataset


def main() -> None:
    # The principle in one line: the Figure 1(a) layout passes the
    # pigeonhole test but fails the chain test, so pigeonring prunes it.
    boxes, threshold = (2, 1, 2, 2, 1), 5
    print(
        f"layout {boxes} vs threshold {threshold}: "
        f"pigeonhole={passes_pigeonhole(boxes, threshold)}, "
        f"pigeonring(l=2)={passes_pigeonring_basic(boxes, threshold, 2)}\n"
    )

    # Build a workload and attach it to an engine.
    workload = gist_like(num_vectors=2000, num_queries=8, seed=7)
    dataset = BinaryVectorDataset(workload.vectors, num_parts=8)
    engine = SearchEngine()
    engine.add_dataset("hamming", dataset)

    # Spawn the HTTP/JSON server locally (port 0 picks a free port) and
    # talk to it exactly like a remote client would.
    with ServerThread(engine, ServerConfig(max_wait_ms=2.0)) as server:
        print(f"engine serving at {server.url}")
        with EngineClient(server.url) as client:
            manifest = client.manifest()
            descriptor = manifest["backends"]["hamming"]["descriptor"]
            print(
                f"manifest: {descriptor['num_objects']} binary codes, "
                f"d={descriptor['d']}, {descriptor['num_parts']} parts\n"
            )

            query = workload.queries[0]
            hits = client.search("hamming", query, tau=40)
            print(
                f"tau=40 selection: {hits.num_results} match(es), "
                f"{hits.num_candidates} candidate(s), "
                f"{hits.engine_time_ms:.2f} ms in the engine"
            )

            top = client.search_topk("hamming", query, k=5)
            print(f"top-5 (ladder stopped at tau={top.tau_effective}):")
            for obj_id, score in zip(top.ids, top.scores):
                print(f"  id={obj_id}  hamming distance={score:.0f}")

            health = client.healthz()
            stats = client.stats()["server"]
            print(
                f"\nhealth={health['status']}  served {stats['num_queries']} "
                f"queries in {stats['num_batches']} micro-batch(es)"
            )
    print("server drained and stopped")


if __name__ == "__main__":
    main()
