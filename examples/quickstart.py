"""Quickstart: the pigeonring principle on the paper's running example.

Reproduces Examples 1-6 of the paper: two box layouts that both pass the
pigeonhole filter, and how the basic and strong forms of the pigeonring
principle filter them out, plus the Table-2 Hamming search example.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    passes_pigeonhole,
    passes_pigeonring_basic,
    passes_pigeonring_strong,
    pigeonhole_witnesses,
    pigeonring_strong_witnesses,
)
from repro.core.geometry import constructive_prefix_viable_start


def main() -> None:
    n, m = 5, 5
    layouts = {
        "Figure 1(a)": (2, 1, 2, 2, 1),
        "Figure 1(b)": (2, 0, 3, 1, 2),
        "within budget": (1, 1, 1, 1, 1),
    }

    print(f"Threshold n = {n}, boxes m = {m}, per-box quota n/m = {n / m}\n")
    header = f"{'layout':>14} | {'sum':>3} | {'pigeonhole':>10} | {'basic l=2':>9} | {'strong l=2':>10}"
    print(header)
    print("-" * len(header))
    for name, boxes in layouts.items():
        print(
            f"{name:>14} | {sum(boxes):>3} | "
            f"{str(passes_pigeonhole(boxes, n)):>10} | "
            f"{str(passes_pigeonring_basic(boxes, n, 2)):>9} | "
            f"{str(passes_pigeonring_strong(boxes, n, 2)):>10}"
        )

    print()
    boxes = layouts["Figure 1(a)"]
    print(f"Pigeonhole witnesses of {boxes}: boxes {pigeonhole_witnesses(boxes, n)}")
    print(
        "Strong-form witnesses at l = 2:",
        pigeonring_strong_witnesses(boxes, n, 2) or "none -> filtered",
    )

    within = layouts["within budget"]
    start = constructive_prefix_viable_start(within, n)
    print(
        f"\nFor {within} (sum <= n) the geometric construction of Appendix A "
        f"finds a start box {start} from which every chain length is prefix-viable."
    )


if __name__ == "__main__":
    main()
