"""Structure search with graph edit distance (the paper's AIDS use case).

Molecule-like labelled graphs are searched for structures within a small
graph edit distance of a query compound.  The workload runs through the
unified query engine's ``graphs`` backend: the Pars baseline and the
pigeonring searcher are compared through the same ``Query`` API -- a
miniature of the paper's Figure 12 -- and the engine then ranks the closest
compounds to one query with a top-k search.

Run with:  python examples/molecule_search.py
"""

from repro.datasets.molecules import aids_like
from repro.engine import Query, SearchEngine
from repro.experiments.harness import engine_comparison_rows, format_rows
from repro.graphs import GraphDataset


def main() -> None:
    workload = aids_like(num_graphs=100, num_queries=6, seed=2)
    tau = 3

    engine = SearchEngine()
    engine.add_dataset("graphs", GraphDataset(workload.graphs))
    print(
        f"dataset: {workload.num_graphs} molecule-like graphs, "
        f"avg {workload.avg_vertices:.1f} vertices; GED threshold {tau}\n"
    )

    algorithms = {
        "Pars": {"algorithm": "baseline"},
        f"Ring l={tau - 1}": {"algorithm": "ring", "chain_length": tau - 1},
    }
    rows = engine_comparison_rows(
        engine, "graphs", "aids-like", tau, algorithms, list(workload.queries)
    )
    print(format_rows(rows))

    top = engine.search(Query(backend="graphs", payload=workload.queries[2], k=3))
    print(f"\n3 closest compounds to query 2 (escalated to tau = {top.tau_effective}):")
    for obj_id, score in zip(top.ids, top.scores):
        print(f"  graph {obj_id}: GED {score:.0f}")


if __name__ == "__main__":
    main()
