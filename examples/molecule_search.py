"""Structure search with graph edit distance (the paper's AIDS use case).

Molecule-like labelled graphs are searched for structures within a small
graph edit distance of a query compound.  The example compares the Pars
baseline with the pigeonring searcher -- a miniature of the paper's Figure 12.

Run with:  python examples/molecule_search.py
"""

from repro.datasets.molecules import aids_like
from repro.graphs import GraphDataset, ParsSearcher, RingGraphSearcher


def main() -> None:
    workload = aids_like(num_graphs=100, num_queries=6, seed=2)
    dataset = GraphDataset(workload.graphs)
    tau = 3

    print(
        f"dataset: {len(dataset)} molecule-like graphs, avg {workload.avg_vertices:.1f} vertices; "
        f"GED threshold {tau}\n"
    )

    pars = ParsSearcher(dataset, tau)
    ring = RingGraphSearcher(dataset, tau, chain_length=tau - 1)

    print(f"{'algorithm':>10} | {'avg cand':>9} | {'avg results':>11} | {'avg time (ms)':>13}")
    for name, searcher in (("Pars", pars), ("Ring", ring)):
        outcomes = [searcher.search(query) for query in workload.queries]
        candidates = sum(o.num_candidates for o in outcomes) / len(outcomes)
        results = sum(o.num_results for o in outcomes) / len(outcomes)
        time_ms = sum(o.total_time for o in outcomes) / len(outcomes) * 1000
        print(f"{name:>10} | {candidates:>9.1f} | {results:>11.1f} | {time_ms:>13.2f}")


if __name__ == "__main__":
    main()
