"""Entity resolution with string edit distance search (the paper's IMDB use case).

Alternative spellings of the same name differ by a few edit operations; a
string similarity search with a small edit distance threshold retrieves
them.  The workload runs through the unified query engine: the dataset
registers with the ``strings`` backend, the Pivotal baseline and the
pigeonring searcher answer the same ``Query`` workload -- a miniature of
the paper's Figure 11 -- and the engine then resolves one name end-to-end,
including a top-k search the offline figure scripts never expose.

Run with:  python examples/entity_resolution.py
"""

from repro.datasets.text import imdb_like
from repro.engine import Query, SearchEngine
from repro.experiments.harness import engine_comparison_rows, format_rows
from repro.strings import StringDataset


def main() -> None:
    workload = imdb_like(num_records=2000, num_queries=15, seed=11)
    dataset = StringDataset(workload.records, kappa=2)
    tau = 2

    engine = SearchEngine()
    engine.add_dataset("strings", dataset)
    print(f"dataset: {len(dataset)} names, edit distance threshold {tau}\n")

    algorithms = {
        "Pivotal": {"algorithm": "baseline"},
        "Ring": {"algorithm": "ring"},
    }
    rows = engine_comparison_rows(
        engine, "strings", "imdb-like", tau, algorithms, list(workload.queries)
    )
    print(format_rows(rows))

    query = workload.queries[0]
    matches = engine.search(Query(backend="strings", payload=query, tau=tau))
    print(f"\nquery {query!r} matches {matches.num_results} name(s):")
    for obj_id in matches.ids[:10]:
        print(f"  - {dataset.record(obj_id)!r}")

    nearest = engine.search(Query(backend="strings", payload=query, k=3))
    print("\nclosest 3 names by edit distance:")
    for obj_id, score in zip(nearest.ids, nearest.scores):
        print(f"  - {dataset.record(obj_id)!r}  (distance {score:.0f})")

    stats = engine.stats
    print(
        f"\nengine served {stats.num_queries} queries, "
        f"avg latency {stats.avg_engine_time * 1000.0:.2f} ms"
    )


if __name__ == "__main__":
    main()
