"""Entity resolution with string edit distance search (the paper's IMDB use case).

Alternative spellings of the same name differ by a few edit operations; a
string similarity search with a small edit distance threshold retrieves them.
The example compares the Pivotal baseline with the pigeonring searcher -- a
miniature of the paper's Figure 11 -- and prints the matches for one query.

Run with:  python examples/entity_resolution.py
"""

from repro.datasets.text import imdb_like
from repro.strings import PivotalSearcher, RingStringSearcher, StringDataset


def main() -> None:
    workload = imdb_like(num_records=2000, num_queries=15, seed=11)
    dataset = StringDataset(workload.records, kappa=2)
    tau = 2

    print(f"dataset: {len(dataset)} names, edit distance threshold {tau}\n")

    pivotal = PivotalSearcher(dataset, tau)
    ring = RingStringSearcher(dataset, tau)

    print(f"{'algorithm':>8} | {'avg cand':>9} | {'avg results':>11} | {'avg time (ms)':>13}")
    for name, searcher in (("Pivotal", pivotal), ("Ring", ring)):
        outcomes = [searcher.search(query) for query in workload.queries]
        candidates = sum(o.num_candidates for o in outcomes) / len(outcomes)
        results = sum(o.num_results for o in outcomes) / len(outcomes)
        time_ms = sum(o.total_time for o in outcomes) / len(outcomes) * 1000
        print(f"{name:>8} | {candidates:>9.1f} | {results:>11.1f} | {time_ms:>13.2f}")

    query = workload.queries[0]
    matches = ring.search(query).results
    print(f"\nquery {query!r} matches {len(matches)} name(s):")
    for obj_id in matches[:10]:
        print(f"  - {dataset.record(obj_id)!r}")


if __name__ == "__main__":
    main()
