"""Near-duplicate record detection with set similarity search (Enron/DBLP use case).

Records are token sets; the query asks for every record whose Jaccard
similarity is at least ``tau``.  The example compares the prefix-filter
baseline, PartAlloc, pkwise, and the pigeonring searcher -- a miniature of the
paper's Figure 10.

Run with:  python examples/near_duplicate_records.py
"""

from repro.datasets.tokens import dblp_like
from repro.sets import (
    AdaptSearchSearcher,
    JaccardPredicate,
    PartAllocSearcher,
    PkwiseSearcher,
    RingSetSearcher,
    SetDataset,
)


def main() -> None:
    workload = dblp_like(num_records=2000, num_queries=20, seed=3)
    dataset = SetDataset(workload.records, num_classes=4)
    tau = 0.8
    predicate = JaccardPredicate(tau)

    print(
        f"dataset: {len(dataset)} records, avg size {workload.avg_record_size:.1f} tokens; "
        f"Jaccard threshold {tau}\n"
    )

    searchers = {
        "AdaptSearch": AdaptSearchSearcher(dataset, predicate),
        "PartAlloc": PartAllocSearcher(dataset, predicate),
        "pkwise": PkwiseSearcher(dataset, predicate),
        "Ring (l=2)": RingSetSearcher(dataset, predicate, chain_length=2),
    }

    print(f"{'algorithm':>12} | {'avg candidates':>14} | {'avg results':>11} | {'avg time (ms)':>13}")
    for name, searcher in searchers.items():
        outcomes = [searcher.search(query) for query in workload.queries]
        candidates = sum(o.num_candidates for o in outcomes) / len(outcomes)
        results = sum(o.num_results for o in outcomes) / len(outcomes)
        time_ms = sum(o.total_time for o in outcomes) / len(outcomes) * 1000
        print(f"{name:>12} | {candidates:>14.1f} | {results:>11.1f} | {time_ms:>13.2f}")


if __name__ == "__main__":
    main()
