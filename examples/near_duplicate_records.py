"""Near-duplicate record detection with set similarity search (Enron/DBLP use case).

Records are token sets; the query asks for every record whose Jaccard
similarity is at least ``tau``.  The workload runs through the unified query
engine's ``sets`` backend, which serves all of the paper's Figure-10
contenders (AdaptSearch, PartAlloc, pkwise, pigeonring) behind the same
``Query`` API; the batch is answered once sequentially and once on the
engine's thread pool to show both serving paths agree.

Run with:  python examples/near_duplicate_records.py
"""

from repro.datasets.tokens import dblp_like
from repro.engine import Query, SearchEngine
from repro.experiments.harness import engine_comparison_rows, format_rows
from repro.sets import SetDataset


def main() -> None:
    workload = dblp_like(num_records=2000, num_queries=20, seed=3)
    tau = 0.8

    engine = SearchEngine()
    engine.add_dataset("sets", SetDataset(workload.records, num_classes=4))
    print(
        f"dataset: {workload.num_records} records, avg size "
        f"{workload.avg_record_size:.1f} tokens; Jaccard threshold {tau}\n"
    )

    algorithms = {
        "AdaptSearch": {"algorithm": "adapt"},
        "PartAlloc": {"algorithm": "partalloc"},
        "pkwise": {"algorithm": "baseline"},
        "Ring (l=2)": {"algorithm": "ring", "chain_length": 2},
    }
    rows = engine_comparison_rows(
        engine, "sets", "dblp-like", tau, algorithms, list(workload.queries)
    )
    print(format_rows(rows))

    queries = [
        Query(backend="sets", payload=payload, tau=tau) for payload in workload.queries
    ]
    sequential = engine.search_batch(queries)
    engine.clear_cache()
    parallel = engine.search_batch(queries, parallel=True, max_workers=4)
    agree = all(
        sorted(a.ids) == sorted(b.ids) for a, b in zip(sequential, parallel)
    )
    print(f"\nsequential and thread-pooled batches agree: {agree}")


if __name__ == "__main__":
    main()
