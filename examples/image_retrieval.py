"""Image-retrieval style Hamming distance search (the paper's GIST/SIFT use case).

Binary codes stand in for hashed image descriptors.  The workload is served
through the unified query engine: the dataset registers with the ``hamming``
backend (the partition index is built exactly once and shared by every
searcher), the GPH baseline and the pigeonring searcher at several chain
lengths are compared through the same ``Query`` API -- a miniature of the
paper's Figures 5 and 9 -- and the same engine then answers a top-k query,
a workload the offline figure scripts never expose.

Run with:  python examples/image_retrieval.py
"""

from repro.datasets.binary import gist_like
from repro.engine import Query, SearchEngine
from repro.experiments.harness import engine_comparison_rows, format_rows
from repro.hamming import BinaryVectorDataset


def main() -> None:
    workload = gist_like(num_vectors=3000, num_queries=10, seed=7)
    dataset = BinaryVectorDataset(workload.vectors, num_parts=8)
    tau = 40

    engine = SearchEngine()
    engine.add_dataset("hamming", dataset)
    print(f"dataset: {len(dataset)} binary codes, d = {dataset.d}, m = {dataset.m} parts")
    print(f"query workload: {workload.num_queries} queries, tau = {tau}\n")

    algorithms = {"GPH (pigeonhole)": {"algorithm": "baseline"}}
    for length in (2, 4, 6):
        algorithms[f"Ring l={length}"] = {"algorithm": "ring", "chain_length": length}
    rows = engine_comparison_rows(
        engine, "hamming", "gist-like", tau, algorithms, list(workload.queries)
    )
    print(format_rows(rows))

    top = engine.search(Query(backend="hamming", payload=workload.queries[0], k=5))
    print(f"\ntop-5 for query 0 (escalated to tau = {top.tau_effective}):")
    for obj_id, score in zip(top.ids, top.scores):
        print(f"  id={obj_id}  hamming distance={score:.0f}")

    stats = engine.stats
    print(
        f"\nengine served {stats.num_queries} queries, "
        f"avg latency {stats.avg_engine_time * 1000.0:.2f} ms, "
        f"cache hits {stats.cache_hits}"
    )


if __name__ == "__main__":
    main()
