"""Image-retrieval style Hamming distance search (the paper's GIST/SIFT use case).

Binary codes stand in for hashed image descriptors; the query asks for every
code within Hamming distance ``tau``.  The example compares the GPH baseline
(pigeonhole) with the pigeonring searcher at several chain lengths and prints
average candidates and time -- a miniature of the paper's Figures 5 and 9.

Run with:  python examples/image_retrieval.py
"""

from repro.datasets.binary import gist_like
from repro.hamming import BinaryVectorDataset, GPHSearcher, RingHammingSearcher


def main() -> None:
    workload = gist_like(num_vectors=3000, num_queries=10, seed=7)
    dataset = BinaryVectorDataset(workload.vectors, num_parts=8)
    tau = 40

    print(f"dataset: {len(dataset)} binary codes, d = {dataset.d}, m = {dataset.m} parts")
    print(f"query workload: {workload.num_queries} queries, tau = {tau}\n")

    gph = GPHSearcher(dataset)
    searchers = {"GPH (pigeonhole)": lambda q: gph.search(q, tau)}
    for length in (2, 4, 6):
        ring = RingHammingSearcher(dataset, chain_length=length)
        searchers[f"Ring l={length}"] = lambda q, ring=ring: ring.search(q, tau)

    print(f"{'algorithm':>18} | {'avg candidates':>14} | {'avg results':>11} | {'avg time (ms)':>13}")
    for name, search in searchers.items():
        outcomes = [search(query) for query in workload.queries]
        candidates = sum(o.num_candidates for o in outcomes) / len(outcomes)
        results = sum(o.num_results for o in outcomes) / len(outcomes)
        time_ms = sum(o.total_time for o in outcomes) / len(outcomes) * 1000
        print(f"{name:>18} | {candidates:>14.1f} | {results:>11.1f} | {time_ms:>13.2f}")


if __name__ == "__main__":
    main()
