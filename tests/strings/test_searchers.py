"""Correctness and containment tests for the string edit distance searchers."""

import pytest

from repro.datasets.text import name_workload, title_workload
from repro.strings.dataset import StringDataset
from repro.strings.linear import LinearStringSearcher
from repro.strings.pivotal import PivotalSearcher
from repro.strings.ring import RingStringSearcher


@pytest.fixture(scope="module")
def workload():
    return name_workload(num_records=250, num_queries=12, max_edits=3, seed=3)


@pytest.fixture(scope="module")
def dataset(workload):
    return StringDataset(workload.records, kappa=2)


def ground_truth(dataset, query, tau):
    return sorted(LinearStringSearcher(dataset).search(query, tau).results)


class TestExactness:
    @pytest.mark.parametrize("tau", (1, 2, 3, 4))
    def test_pivotal_matches_linear_scan(self, workload, dataset, tau):
        searcher = PivotalSearcher(dataset, tau)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, query, tau
            )

    @pytest.mark.parametrize("tau", (1, 2, 3, 4))
    @pytest.mark.parametrize("chain_length", (1, 2, 3, None))
    def test_ring_matches_linear_scan(self, workload, dataset, tau, chain_length):
        searcher = RingStringSearcher(dataset, tau, chain_length=chain_length)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, query, tau
            )

    def test_exactness_on_long_strings(self):
        workload = title_workload(num_records=80, num_queries=6, max_edits=6, seed=4)
        dataset = StringDataset(workload.records, kappa=4)
        for tau in (4, 6):
            ring = RingStringSearcher(dataset, tau)
            pivotal = PivotalSearcher(dataset, tau)
            for query in workload.queries:
                expected = ground_truth(dataset, query, tau)
                assert sorted(ring.search(query).results) == expected
                assert sorted(pivotal.search(query).results) == expected

    def test_queries_have_results(self, workload, dataset):
        total = sum(len(ground_truth(dataset, q, 3)) for q in workload.queries)
        assert total > 0

    def test_exactness_on_adversarial_short_strings(self):
        records = ["ab", "abc", "abcd", "zzzz", "a", "", "abcabc", "xyxyxyxy"]
        dataset = StringDataset(records, kappa=2)
        queries = ["ab", "abcd", "zz", "", "xyxy"]
        for tau in (0, 1, 2, 3):
            ring = RingStringSearcher(dataset, tau)
            pivotal = PivotalSearcher(dataset, tau)
            for query in queries:
                expected = ground_truth(dataset, query, tau)
                assert sorted(ring.search(query).results) == expected
                assert sorted(pivotal.search(query).results) == expected


class TestCandidateContainment:
    @pytest.mark.parametrize("tau", (2, 3))
    def test_ring_candidates_within_pivotal_cand1(self, workload, dataset, tau):
        pivotal = PivotalSearcher(dataset, tau)
        ring = RingStringSearcher(dataset, tau)
        for query in workload.queries:
            cand1, _cand2 = pivotal.candidates(query)
            assert set(ring.candidates(query)) <= set(cand1)

    def test_candidates_contain_results(self, workload, dataset):
        ring = RingStringSearcher(dataset, 3)
        for query in workload.queries:
            outcome = ring.search(query)
            assert set(outcome.results) <= set(outcome.candidates)

    def test_pivotal_cand2_within_cand1(self, workload, dataset):
        pivotal = PivotalSearcher(dataset, 3)
        for query in workload.queries:
            cand1, cand2 = pivotal.candidates(query)
            assert set(cand2) <= set(cand1)

    def test_pivotal_reports_extra_counters(self, workload, dataset):
        outcome = PivotalSearcher(dataset, 2).search(workload.queries[0])
        assert outcome.extra["cand2"] <= outcome.extra["cand1"]

    def test_candidates_shrink_with_chain_length(self, workload, dataset):
        tau = 3
        searchers = {
            length: RingStringSearcher(dataset, tau, chain_length=length)
            for length in (1, 2, 4)
        }
        for query in workload.queries:
            previous = None
            for length in (1, 2, 4):
                current = set(searchers[length].candidates(query))
                if previous is not None:
                    assert current <= previous
                previous = current


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            StringDataset([], kappa=2)

    def test_invalid_tau(self, dataset):
        with pytest.raises(ValueError):
            PivotalSearcher(dataset, -1)

    def test_invalid_chain_length(self, dataset):
        with pytest.raises(ValueError):
            RingStringSearcher(dataset, 2, chain_length=0)

    def test_default_chain_length(self, dataset):
        assert RingStringSearcher(dataset, 1).chain_length == 2
        assert RingStringSearcher(dataset, 4).chain_length == 3
