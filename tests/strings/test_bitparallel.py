"""Tests for the bit-parallel (Myers) query matcher and the trimmed DPs."""

import random

from repro.strings.edit_distance import QueryMatcher, edit_distance, edit_distance_within


def reference_edit_distance(x: str, y: str) -> int:
    previous = list(range(len(y) + 1))
    for i, cx in enumerate(x, start=1):
        current = [i] + [0] * len(y)
        for j, cy in enumerate(y, start=1):
            current[j] = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + (cx != cy)
            )
        previous = current
    return previous[-1]


def test_edit_distance_matches_reference_dp():
    rng = random.Random(3)
    alphabet = "abcd"
    for _ in range(500):
        x = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 14)))
        y = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 14)))
        expected = reference_edit_distance(x, y)
        assert edit_distance(x, y) == expected
        for tau in range(0, 6):
            assert edit_distance_within(x, y, tau) == (expected <= tau)


def test_query_matcher_matches_reference_dp():
    rng = random.Random(4)
    alphabet = "abcde"
    for _ in range(400):
        query = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
        text = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
        expected = reference_edit_distance(query, text)
        matcher = QueryMatcher(query)
        assert matcher.distance(text) == expected
        for tau in range(0, 6):
            assert matcher.within(text, tau) == (expected <= tau)


def test_query_matcher_long_query_fallback():
    matcher = QueryMatcher("x" * 80)
    assert matcher.distance("x" * 70) == 10
    assert matcher.within("x" * 70, 10)
    assert not matcher.within("x" * 70, 9)


def test_query_matcher_edge_cases():
    assert QueryMatcher("").distance("abc") == 3
    assert QueryMatcher("abc").distance("") == 3
    assert QueryMatcher("").within("", 0)
    assert not QueryMatcher("abc").within("x", -1)
