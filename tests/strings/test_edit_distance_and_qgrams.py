"""Tests for edit distance, q-grams and the content-based filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings.edit_distance import edit_distance, edit_distance_within
from repro.strings.pivotal import window_edit_distance
from repro.strings.qgrams import (
    QGramExtractor,
    character_mask,
    content_lower_bound,
    positional_qgrams,
)

short_text = st.text(alphabet="abcde", max_size=12)


class TestEditDistance:
    def test_known_values(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3
        assert edit_distance("abc", "abc") == 0
        assert edit_distance("abc", "axc") == 1

    def test_paper_example_11(self):
        assert edit_distance("llabcdefkk", "llabghijkk") == 4

    @given(short_text, short_text)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestBandedEditDistance:
    @given(short_text, short_text, st.integers(min_value=0, max_value=6))
    @settings(max_examples=150, deadline=None)
    def test_matches_full_dp(self, a, b, tau):
        assert edit_distance_within(a, b, tau) == (edit_distance(a, b) <= tau)

    def test_negative_threshold(self):
        assert not edit_distance_within("a", "a", -1)

    def test_length_difference_shortcut(self):
        assert not edit_distance_within("abcdef", "a", 2)


class TestQGrams:
    def test_positional_qgrams(self):
        grams = positional_qgrams("abcd", 2)
        assert [(g.gram, g.position) for g in grams] == [("ab", 0), ("bc", 1), ("cd", 2)]

    def test_short_string_has_no_grams(self):
        assert positional_qgrams("a", 2) == []

    def test_invalid_kappa(self):
        with pytest.raises(ValueError):
            positional_qgrams("abc", 0)
        with pytest.raises(ValueError):
            QGramExtractor(0, ["abc"])

    def test_prefix_size(self):
        extractor = QGramExtractor(2, ["abcdefghij", "abcdxfghij"])
        prefix = extractor.prefix("abcdefghij", tau=2)
        assert len(prefix) == 2 * 2 + 1

    def test_prefix_prefers_rare_grams(self):
        records = ["ababab", "ababab", "abaxyz"]
        extractor = QGramExtractor(2, records)
        prefix = extractor.prefix("abaxyz", tau=1)
        grams = {g.gram for g in prefix}
        # The rare grams (xy, yz, ax) should appear before the frequent "ab".
        assert {"ax", "xy", "yz"} <= grams

    def test_pivotal_grams_are_disjoint(self):
        extractor = QGramExtractor(2, ["abcdefghijkl"])
        prefix = extractor.prefix("abcdefghijkl", tau=3)
        pivotal = extractor.pivotal(prefix, tau=3)
        assert pivotal is not None
        assert len(pivotal) == 4
        positions = [g.position for g in pivotal]
        assert all(b - a >= 2 for a, b in zip(positions, positions[1:]))

    def test_pivotal_returns_none_for_short_strings(self):
        extractor = QGramExtractor(2, ["abcd"])
        prefix = extractor.prefix("abcd", tau=3)
        assert extractor.pivotal(prefix, tau=3) is None

    def test_last_prefix_rank(self):
        extractor = QGramExtractor(2, ["abcdef", "abcdef", "xyzuvw"])
        prefix = extractor.prefix("abcdef", tau=1)
        assert extractor.last_prefix_rank(prefix) == max(
            extractor.rank(g.gram) for g in prefix
        )
        assert extractor.last_prefix_rank([]) == -1


class TestContentFilter:
    def test_character_mask_is_order_insensitive(self):
        assert character_mask("abc") == character_mask("cba")

    def test_lower_bound_of_identical_masks_is_zero(self):
        assert content_lower_bound(character_mask("abc"), character_mask("cab")) == 0

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_content_bound_is_a_lower_bound(self, a, b):
        bound = content_lower_bound(character_mask(a), character_mask(b))
        assert bound <= edit_distance(a, b)

    def test_paper_example_11_bit_vectors(self):
        # cd vs ab differ in 4 character bits -> lower bound 2.
        assert content_lower_bound(character_mask("cd"), character_mask("ab")) == 2


class TestWindowEditDistance:
    def test_exact_match_in_window(self):
        assert window_edit_distance("ab", "xxabyy", position=2, tau=1) == 0

    def test_no_match_in_window(self):
        assert window_edit_distance("ab", "xxxxxx", position=2, tau=1) == 2

    def test_window_respects_position_shift(self):
        # The matching substring is too far from the expected position.
        assert window_edit_distance("ab", "abxxxxxx", position=6, tau=1) > 0

    @given(short_text, short_text, st.integers(0, 3), st.integers(0, 4))
    @settings(max_examples=80, deadline=None)
    def test_window_value_bounded_by_gram_length(self, gram, text, position, tau):
        if not gram:
            return
        value = window_edit_distance(gram, text, position, tau)
        assert 0 <= value <= len(gram)
