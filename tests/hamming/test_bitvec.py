"""Tests for bit-vector packing and Hamming distance helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.hamming.bitvec import (
    as_bit_matrix,
    code_hamming_distances,
    codes_from_bits,
    hamming_distance,
    pack_words,
    packed_hamming_distances,
    popcount,
)


class TestValidation:
    def test_as_bit_matrix_accepts_zero_one(self):
        matrix = as_bit_matrix(np.array([[0, 1], [1, 0]]))
        assert matrix.dtype == np.uint8

    def test_as_bit_matrix_rejects_other_values(self):
        with pytest.raises(ValueError):
            as_bit_matrix(np.array([[0, 2]]))

    def test_as_bit_matrix_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            as_bit_matrix(np.array([0, 1, 1]))

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        with pytest.raises(ValueError):
            popcount(-1)


class TestPacking:
    def test_pack_words_shape(self):
        vectors = np.zeros((3, 130), dtype=np.uint8)
        assert pack_words(vectors).shape == (3, 3)

    def test_pack_words_roundtrip_distance(self):
        rng = np.random.default_rng(0)
        vectors = rng.integers(0, 2, size=(20, 100), dtype=np.uint8)
        query = rng.integers(0, 2, size=100, dtype=np.uint8)
        packed = pack_words(vectors)
        query_words = pack_words(query.reshape(1, -1))[0]
        fast = packed_hamming_distances(query_words, packed)
        slow = np.array([hamming_distance(v, query) for v in vectors])
        assert np.array_equal(fast, slow)

    def test_codes_from_bits(self):
        codes = codes_from_bits(np.array([[1, 0, 1], [0, 1, 1]]))
        assert codes.tolist() == [0b101, 0b110]

    def test_codes_width_limit(self):
        with pytest.raises(ValueError):
            codes_from_bits(np.zeros((1, 64), dtype=np.uint8))

    def test_code_hamming_distances(self):
        codes = np.array([0b000, 0b111, 0b101], dtype=np.int64)
        assert code_hamming_distances(0b001, codes).tolist() == [1, 2, 1]

    def test_hamming_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.array([0, 1]), np.array([0, 1, 1]))


class TestPackingProperties:
    @given(
        hnp.arrays(np.uint8, shape=st.tuples(st.integers(1, 8), st.integers(1, 90)),
                   elements=st.integers(0, 1))
    )
    @settings(max_examples=30, deadline=None)
    def test_packed_distance_matches_unpacked(self, vectors):
        query = vectors[0]
        packed = pack_words(vectors)
        query_words = pack_words(query.reshape(1, -1))[0]
        fast = packed_hamming_distances(query_words, packed)
        slow = np.array([hamming_distance(v, query) for v in vectors])
        assert np.array_equal(fast, slow)

    @given(
        hnp.arrays(np.uint8, shape=st.tuples(st.integers(1, 6), st.integers(1, 40)),
                   elements=st.integers(0, 1))
    )
    @settings(max_examples=30, deadline=None)
    def test_code_distance_matches_bit_distance(self, bits):
        codes = codes_from_bits(bits)
        query = bits[0]
        query_code = int(codes_from_bits(query.reshape(1, -1))[0])
        fast = code_hamming_distances(query_code, codes)
        slow = np.array([hamming_distance(row, query) for row in bits])
        assert np.array_equal(fast, slow)
