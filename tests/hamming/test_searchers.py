"""Correctness and containment tests for the Hamming searchers.

The two key invariants from the paper:

* every searcher is exact -- its result set equals the brute-force scan;
* the Ring candidates are a subset of the GPH candidates and shrink as the
  chain length grows (Lemmas 1 and 4).
"""

import numpy as np
import pytest

from repro.datasets.binary import clustered_binary_workload
from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.gph import GPHSearcher
from repro.hamming.linear import LinearHammingSearcher
from repro.hamming.ring import RingHammingSearcher


@pytest.fixture(scope="module")
def workload():
    return clustered_binary_workload(
        num_vectors=400, d=64, num_queries=8, num_clusters=8,
        cluster_fraction=0.5, cluster_radius=0.08, query_radius=0.1, seed=11,
    )


@pytest.fixture(scope="module")
def dataset(workload):
    return BinaryVectorDataset(workload.vectors, num_parts=8)


TAUS = (8, 16, 24)


class TestExactness:
    @pytest.mark.parametrize("tau", TAUS)
    def test_gph_matches_linear_scan(self, workload, dataset, tau):
        gph = GPHSearcher(dataset)
        linear = LinearHammingSearcher(dataset)
        for query in workload.queries:
            assert sorted(gph.search(query, tau).results) == sorted(
                linear.search(query, tau).results
            )

    @pytest.mark.parametrize("tau", TAUS)
    @pytest.mark.parametrize("chain_length", (1, 2, 4, 8))
    def test_ring_matches_linear_scan(self, workload, dataset, tau, chain_length):
        ring = RingHammingSearcher(dataset, chain_length=chain_length)
        linear = LinearHammingSearcher(dataset)
        for query in workload.queries:
            assert sorted(ring.search(query, tau).results) == sorted(
                linear.search(query, tau).results
            )

    @pytest.mark.parametrize("tau", TAUS)
    def test_even_allocation_is_also_exact(self, workload, dataset, tau):
        ring = RingHammingSearcher(dataset, chain_length=4, use_cost_model=False)
        linear = LinearHammingSearcher(dataset)
        for query in workload.queries:
            assert sorted(ring.search(query, tau).results) == sorted(
                linear.search(query, tau).results
            )


class TestCandidateContainment:
    @pytest.mark.parametrize("tau", TAUS)
    def test_ring_candidates_subset_of_gph(self, workload, dataset, tau):
        gph = GPHSearcher(dataset)
        for chain_length in (2, 4, 6):
            ring = RingHammingSearcher(dataset, chain_length=chain_length)
            for query in workload.queries:
                ring_candidates = set(ring.candidates(query, tau))
                gph_candidates = set(gph.candidates(query, tau))
                assert ring_candidates <= gph_candidates

    @pytest.mark.parametrize("tau", TAUS)
    def test_candidates_shrink_with_chain_length(self, workload, dataset, tau):
        searchers = {
            length: RingHammingSearcher(dataset, chain_length=length)
            for length in (1, 2, 4, 8)
        }
        for query in workload.queries:
            previous = None
            for length in (1, 2, 4, 8):
                current = set(searchers[length].candidates(query, tau))
                if previous is not None:
                    assert current <= previous
                previous = current

    def test_chain_length_one_equals_gph(self, workload, dataset):
        gph = GPHSearcher(dataset)
        ring = RingHammingSearcher(dataset, chain_length=1)
        for query in workload.queries:
            assert set(ring.candidates(query, 16)) == set(gph.candidates(query, 16))

    def test_candidates_contain_results(self, workload, dataset):
        ring = RingHammingSearcher(dataset, chain_length=6)
        for query in workload.queries:
            outcome = ring.search(query, 16)
            assert set(outcome.results) <= set(outcome.candidates)


class TestSearchResultAccounting:
    def test_result_counts(self, workload, dataset):
        ring = RingHammingSearcher(dataset, chain_length=4)
        outcome = ring.search(workload.queries[0], 16)
        assert outcome.num_candidates == len(outcome.candidates)
        assert outcome.num_results == len(outcome.results)
        assert outcome.false_positives >= 0
        assert outcome.total_time >= 0.0

    def test_invalid_chain_length(self, dataset):
        with pytest.raises(ValueError):
            RingHammingSearcher(dataset, chain_length=0)

    def test_chain_length_clamped_to_m(self, dataset):
        searcher = RingHammingSearcher(dataset, chain_length=100)
        assert searcher.chain_length == dataset.m

    def test_linear_scan_counts_everything_as_candidate(self, workload, dataset):
        linear = LinearHammingSearcher(dataset)
        outcome = linear.search(workload.queries[0], 16)
        assert outcome.num_candidates == len(dataset)


class TestExample9:
    """Example 9 of the paper: tau = 3, m = 3, T = (0, 1, 0)."""

    def test_example_9_filtering(self):
        x = np.array([0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1], dtype=np.uint8)
        q = np.array([0, 0, 0, 0, 1, 1, 1, 0, 0, 1, 1, 1], dtype=np.uint8)
        dataset = BinaryVectorDataset(x.reshape(1, -1), num_parts=3)
        # With the even allocation T = (1, 0, 0) (sum = tau - m + 1 = 1), GPH
        # lets x through: part 0 is within its threshold.
        gph = GPHSearcher(dataset, use_cost_model=False)
        assert gph.candidates(q, tau=3) == [0]
        # H(x, q) = 4 > 3, so x is a false positive for GPH...
        assert gph.search(q, tau=3).results == []
        # ...and the pigeonring check at l = 2 filters it: b0 + b1 = 3 exceeds
        # t0 + t1 + 1 = 2, exactly as in the paper's Example 9.
        ring = RingHammingSearcher(dataset, chain_length=2, use_cost_model=False)
        assert ring.candidates(q, tau=3) == []
