"""Tests for the partition index and the GPH threshold cost model."""

import numpy as np
import pytest

from repro.hamming.bitvec import hamming_distance
from repro.hamming.cost_model import allocate_thresholds, even_thresholds
from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.index import PartitionIndex


def small_dataset(seed=0, n=60, d=32, m=4):
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2, size=(n, d), dtype=np.uint8)
    return BinaryVectorDataset(vectors, num_parts=m), rng


class TestDataset:
    def test_properties(self):
        dataset, _ = small_dataset()
        assert len(dataset) == 60
        assert dataset.d == 32
        assert dataset.m == 4
        assert dataset.part_codes.shape == (60, 4)

    def test_default_num_parts(self):
        rng = np.random.default_rng(0)
        vectors = rng.integers(0, 2, size=(5, 256), dtype=np.uint8)
        assert BinaryVectorDataset(vectors).m == 16

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            BinaryVectorDataset(np.zeros((0, 16), dtype=np.uint8))

    def test_distances_to(self):
        dataset, rng = small_dataset()
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        fast = dataset.distances_to(query)
        slow = np.array([hamming_distance(v, query) for v in dataset.vectors])
        assert np.array_equal(fast, slow)

    def test_distances_to_subset(self):
        dataset, rng = small_dataset()
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        ids = np.array([3, 7, 11])
        subset = dataset.distances_to_subset(query, ids)
        full = dataset.distances_to(query)
        assert np.array_equal(subset, full[ids])

    def test_query_codes_rejects_wrong_dimensionality(self):
        dataset, _ = small_dataset()
        with pytest.raises(ValueError):
            dataset.query_codes(np.zeros(16, dtype=np.uint8))


class TestPartitionIndex:
    def test_postings_cover_all_objects(self):
        dataset, _ = small_dataset()
        index = PartitionIndex(dataset)
        for part in range(dataset.m):
            total = sum(
                len(index.postings(part, pos))
                for pos in range(len(index.distinct_codes(part)))
            )
            assert total == len(dataset)

    def test_probe_returns_objects_within_threshold(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        part, threshold = 1, 2
        probed = {obj for obj, _ in index.probe(part, int(query_codes[part]), threshold)}
        # Reference: recompute the per-part distance directly.
        start, end = dataset.partitioning.boundaries[part]
        expected = {
            i
            for i, vector in enumerate(dataset.vectors)
            if hamming_distance(vector[start:end], query[start:end]) <= threshold
        }
        assert probed == expected

    def test_probe_reports_correct_distances(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        start, end = dataset.partitioning.boundaries[0]
        for obj, distance in index.probe(0, int(query_codes[0]), 3):
            expected = hamming_distance(dataset.vectors[obj][start:end], query[start:end])
            assert distance == expected

    def test_negative_threshold_probes_nothing(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        assert list(index.probe(0, int(query_codes[0]), -1)) == []

    def test_probe_arrays_matches_iterator_shim(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        for part in range(dataset.m):
            for threshold in (-1, 0, 2, 8):
                ids, distances = index.probe_arrays(
                    part, int(query_codes[part]), threshold
                )
                assert ids.dtype == np.int64 and distances.dtype == np.int64
                assert len(ids) == len(distances)
                pairs = list(index.probe(part, int(query_codes[part]), threshold))
                assert pairs == list(zip(ids.tolist(), distances.tolist()))

    def test_state_round_trip(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        restored = PartitionIndex.from_state(dataset, index.state())
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        for part in range(dataset.m):
            np.testing.assert_array_equal(
                index.distinct_codes(part), restored.distinct_codes(part)
            )
            a = index.probe_arrays(part, int(query_codes[part]), 3)
            b = restored.probe_arrays(part, int(query_codes[part]), 3)
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])

    def test_distance_histogram_sums_to_dataset_size(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        for part in range(dataset.m):
            histogram = index.distance_histogram(part, int(query_codes[part]))
            assert histogram.sum() == len(dataset)
            assert len(histogram) == dataset.partitioning.widths[part] + 1


class TestThresholdAllocation:
    def test_even_thresholds_sum(self):
        assert sum(even_thresholds(10, 4)) == 10 - 4 + 1
        assert sum(even_thresholds(3, 4)) == 0

    def test_even_thresholds_floor(self):
        # tau small enough that some partitions must be disabled.
        thresholds = even_thresholds(1, 4)
        assert sum(thresholds) == 1 - 4 + 1
        assert min(thresholds) >= -1

    def test_cost_model_total_matches_integer_reduction(self):
        dataset, rng = small_dataset()
        index = PartitionIndex(dataset)
        query = rng.integers(0, 2, size=32, dtype=np.uint8)
        query_codes = dataset.query_codes(query)
        for tau in (4, 8, 12):
            thresholds = allocate_thresholds(index, query_codes, tau)
            assert sum(thresholds) == tau - dataset.m + 1
            assert all(t >= -1 for t in thresholds)

    def test_cost_model_prefers_selective_partitions(self):
        # Build a dataset where partition 0 is constant (everything matches the
        # query there) and partition 1 is diverse; the model should starve
        # partition 0.
        rng = np.random.default_rng(5)
        vectors = rng.integers(0, 2, size=(200, 32), dtype=np.uint8)
        vectors[:, :8] = 0
        dataset = BinaryVectorDataset(vectors, num_parts=4)
        index = PartitionIndex(dataset)
        query = np.zeros(32, dtype=np.uint8)
        thresholds = allocate_thresholds(index, dataset.query_codes(query), tau=9)
        assert thresholds[0] == min(thresholds)

    def test_invalid_even_thresholds(self):
        with pytest.raises(ValueError):
            even_thresholds(5, 0)
