"""Tests for vertical partitioning of binary vectors."""

import numpy as np
import pytest

from repro.hamming.bitvec import hamming_distance
from repro.hamming.partition import Partitioning, default_num_parts


class TestPartitioning:
    def test_equal_widths(self):
        assert Partitioning(10, 5).widths == (2, 2, 2, 2, 2)

    def test_uneven_widths_spread_over_leading_parts(self):
        assert Partitioning(10, 3).widths == (4, 3, 3)

    def test_boundaries_cover_all_dimensions(self):
        partitioning = Partitioning(37, 5)
        bounds = partitioning.boundaries
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 37
        for (start_a, end_a), (start_b, _end_b) in zip(bounds, bounds[1:]):
            assert end_a == start_b

    def test_split_shapes(self):
        vectors = np.zeros((4, 10), dtype=np.uint8)
        parts = Partitioning(10, 5).split(vectors)
        assert len(parts) == 5
        assert all(part.shape == (4, 2) for part in parts)

    def test_split_rejects_wrong_dimensionality(self):
        with pytest.raises(ValueError):
            Partitioning(10, 5).split(np.zeros((4, 8), dtype=np.uint8))

    def test_part_codes_table_2(self):
        # Table 2, x1 = 11 11 10 11 10 -> codes read little-endian per part.
        x1 = np.array([[1, 1, 1, 1, 1, 0, 1, 1, 1, 0]], dtype=np.uint8)
        codes = Partitioning(10, 5).part_codes(x1)[0]
        assert codes.tolist() == [0b11, 0b11, 0b01, 0b11, 0b01]

    def test_part_code_single(self):
        x1 = np.array([1, 1, 1, 1, 1, 0, 1, 1, 1, 0], dtype=np.uint8)
        assert Partitioning(10, 5).part_code(x1, 2) == 0b01

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Partitioning(0, 1)
        with pytest.raises(ValueError):
            Partitioning(10, 11)
        with pytest.raises(ValueError):
            Partitioning(10, 0)

    def test_partition_distances_sum_to_full_distance(self):
        rng = np.random.default_rng(3)
        vectors = rng.integers(0, 2, size=(10, 37), dtype=np.uint8)
        query = rng.integers(0, 2, size=37, dtype=np.uint8)
        partitioning = Partitioning(37, 5)
        for vector in vectors:
            parts_x = partitioning.split(vector.reshape(1, -1))
            parts_q = partitioning.split(query.reshape(1, -1))
            box_sum = sum(
                hamming_distance(px[0], pq[0]) for px, pq in zip(parts_x, parts_q)
            )
            assert box_sum == hamming_distance(vector, query)


class TestDefaultNumParts:
    def test_paper_default(self):
        assert default_num_parts(256) == 16
        assert default_num_parts(512) == 32

    def test_small_dimensionality_clamps_to_one(self):
        assert default_num_parts(10) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_num_parts(0)
