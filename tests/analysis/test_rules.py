"""Per-rule fixture corpus: every rule must trip on its bad tree and stay
silent on the matching good tree.

These fixtures are the proof that the CI gate can actually fail: a rule
that silently stops matching (an ast refactor, a renamed helper) breaks
these tests long before it lets a real regression through.
"""

from __future__ import annotations

from repro.analysis import run_analysis
from repro.analysis.framework import AnalysisContext
from repro.analysis.rules.wire_compat import update_schemas


def _run(root: str, rule: str):
    return run_analysis(root, rules=[rule])


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

_CYCLE = """
import threading

class Engine:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
"""

_CONSISTENT = """
import threading

class Engine:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                pass
"""


def test_lock_discipline_trips_on_inverted_order(make_tree):
    root = make_tree({"src/repro/engine.py": _CYCLE})
    report = _run(root, "lock-discipline")
    assert len(report.errors) == 1
    assert "lock-order cycle" in report.errors[0].message
    assert "Engine._a" in report.errors[0].message


def test_lock_discipline_passes_consistent_order(make_tree):
    root = make_tree({"src/repro/engine.py": _CONSISTENT})
    assert _run(root, "lock-discipline").findings == []


def test_lock_discipline_warns_on_unlocked_shared_write(make_tree):
    root = make_tree(
        {
            "src/repro/counter.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n

                def reset(self):
                    self.total = 0
            """
        }
    )
    report = _run(root, "lock-discipline")
    assert report.errors == []
    assert len(report.warnings) == 1
    assert "Counter.total" in report.warnings[0].message


def test_lock_discipline_allows_rlock_reentrancy(make_tree):
    # Mirrors WriteAheadLog: truncate_upto() re-enters batches() under the
    # same RLock; a plain Lock doing that would be flagged.
    root = make_tree(
        {
            "src/repro/wal.py": """
            import threading

            class Wal:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        return 1
            """
        }
    )
    assert _run(root, "lock-discipline").errors == []


def test_lock_discipline_trips_on_plain_lock_reentry(make_tree):
    root = make_tree(
        {
            "src/repro/wal.py": """
            import threading

            class Wal:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        return 1
            """
        }
    )
    report = _run(root, "lock-discipline")
    assert len(report.errors) == 1
    assert "lock-order cycle" in report.errors[0].message


# ---------------------------------------------------------------------------
# wire-compat
# ---------------------------------------------------------------------------

_WIRE_OK = """
WIRE_SCHEMA_VERSION = 1


def encode_query(tau):
    return {"tau": tau, "schema_version": WIRE_SCHEMA_VERSION}


def decode_query(body):
    _check_version(body)
    return body["tau"]


def _check_version(body):
    if body.get("schema_version") != WIRE_SCHEMA_VERSION:
        raise ValueError("bad version")


def encode_upsert(record):
    return {"record": record}


def decode_upsert(body):
    return body["record"]


def encode_delete(obj_id):
    return {"id": obj_id}


def decode_delete(body):
    return body["id"]


def encode_mutate(ops):
    return {"ops": ops}


def decode_mutate(body):
    return body["ops"]


def encode_response(ids):
    return {"ids": ids}
"""

_CLIENT = """
class WireResponse:
    def __init__(self, ids):
        self.ids = ids

    @classmethod
    def from_wire(cls, body):
        return cls(body["ids"])
"""


def _wire_tree(make_tree, wire_source: str) -> str:
    return make_tree(
        {
            "src/repro/engine/wire.py": wire_source,
            "src/repro/engine/client.py": _CLIENT,
        }
    )


def test_wire_compat_passes_matched_pairs(make_tree):
    root = _wire_tree(make_tree, _WIRE_OK)
    update_schemas(AnalysisContext(root))
    assert _run(root, "wire-compat").findings == []


def test_wire_compat_trips_on_unread_field(make_tree):
    bad = _WIRE_OK.replace(
        'return {"ids": ids}', 'return {"ids": ids, "debug_blob": 1}'
    )
    root = _wire_tree(make_tree, bad)
    update_schemas(AnalysisContext(root))
    report = _run(root, "wire-compat")
    assert len(report.errors) == 1
    assert "response:debug_blob" in report.errors[0].message
    assert "never read by WireResponse.from_wire" in report.errors[0].message


def test_wire_compat_transitive_helper_reads_count(make_tree):
    # schema_version is read only inside _check_version, reached from
    # decode_query -- the matched-pairs test above would fail without the
    # transitive closure; this spells the property out.
    root = _wire_tree(make_tree, _WIRE_OK)
    update_schemas(AnalysisContext(root))
    report = _run(root, "wire-compat")
    assert not any("schema_version" in f.message for f in report.findings)


def test_wire_compat_requires_snapshot(make_tree):
    root = _wire_tree(make_tree, _WIRE_OK)
    report = _run(root, "wire-compat")
    assert len(report.errors) == 1
    assert "missing schema snapshot" in report.errors[0].message


def test_wire_compat_requires_version_bump(make_tree):
    root = _wire_tree(make_tree, _WIRE_OK)
    update_schemas(AnalysisContext(root))
    changed = _WIRE_OK.replace(
        'return {"record": record}', 'return {"record": record, "ttl": 0}'
    ).replace('return body["record"]', 'return (body["record"], body["ttl"])')
    _wire_tree(make_tree, changed)
    report = _run(root, "wire-compat")
    assert len(report.errors) == 1
    assert "without a WIRE_SCHEMA_VERSION bump" in report.errors[0].message


def test_wire_compat_bumped_version_wants_fresh_snapshot(make_tree):
    root = _wire_tree(make_tree, _WIRE_OK)
    update_schemas(AnalysisContext(root))
    changed = (
        _WIRE_OK.replace("WIRE_SCHEMA_VERSION = 1", "WIRE_SCHEMA_VERSION = 2")
        .replace('return {"record": record}', 'return {"record": record, "ttl": 0}')
        .replace('return body["record"]', 'return (body["record"], body["ttl"])')
    )
    _wire_tree(make_tree, changed)
    report = _run(root, "wire-compat")
    assert len(report.errors) == 1
    assert "stale" in report.errors[0].message
    update_schemas(AnalysisContext(root))
    assert _run(root, "wire-compat").findings == []


# ---------------------------------------------------------------------------
# doc-drift
# ---------------------------------------------------------------------------

_SERVER = """
_ENDPOINTS = ("/query", "/healthz")
"""

_CLI = """
def build_parser(parser):
    parser.add_argument("--tau", type=float)
    parser.add_argument("positional")
"""


def test_doc_drift_trips_on_missing_route_and_flag(make_tree):
    root = make_tree(
        {
            "src/repro/engine/server.py": _SERVER,
            "src/repro/engine/cli.py": _CLI,
            "ENGINE.md": "Only `/healthz` is documented here.\n",
        }
    )
    report = _run(root, "doc-drift")
    messages = sorted(f.message for f in report.errors)
    assert len(messages) == 2
    assert "route /query is served but missing from ENGINE.md" in messages[1]
    assert "--tau is undocumented" in messages[0]


def test_doc_drift_passes_documented_tree(make_tree):
    root = make_tree(
        {
            "src/repro/engine/server.py": _SERVER,
            "src/repro/engine/cli.py": _CLI,
            "ENGINE.md": "Routes: `/query`, `/healthz`. Flags: `--tau`.\n",
        }
    )
    assert _run(root, "doc-drift").findings == []


def test_doc_drift_requires_engine_md_when_server_exists(make_tree):
    root = make_tree({"src/repro/engine/server.py": _SERVER})
    report = _run(root, "doc-drift")
    assert len(report.errors) == 1
    assert "ENGINE.md" in report.errors[0].message


# ---------------------------------------------------------------------------
# exception-hygiene
# ---------------------------------------------------------------------------


def test_exception_hygiene_trips_on_silent_swallow(make_tree):
    root = make_tree(
        {
            "src/repro/io.py": """
            def read(path):
                try:
                    return open(path).read()
                except Exception:
                    return None

            def close(handle):
                try:
                    handle.close()
                except:
                    pass
            """
        }
    )
    report = _run(root, "exception-hygiene")
    assert len(report.errors) == 2
    assert "broad except swallows" in report.errors[0].message
    assert "bare except swallows" in report.errors[1].message


def test_exception_hygiene_passes_observable_handlers(make_tree):
    root = make_tree(
        {
            "src/repro/io.py": """
            import logging

            def read(path):
                try:
                    return open(path).read()
                except Exception as exc:
                    logging.warning("read failed: %s", exc)
                    return None

            def parse(text):
                try:
                    return int(text)
                except ValueError:
                    return 0
            """
        }
    )
    assert _run(root, "exception-hygiene").findings == []


# ---------------------------------------------------------------------------
# numpy-hotpath
# ---------------------------------------------------------------------------


def test_numpy_hotpath_trips_on_growth_in_loop_and_untyped_alloc(make_tree):
    root = make_tree(
        {
            "src/repro/gather.py": """
            import numpy as np

            def gather(chunks):
                out = np.empty(0, dtype=np.int64)
                for chunk in chunks:
                    out = np.append(out, chunk)
                return out

            def histogram(n):
                return np.zeros(n)
            """
        }
    )
    report = _run(root, "numpy-hotpath")
    assert len(report.errors) == 1
    assert "np.append inside a loop" in report.errors[0].message
    assert len(report.warnings) == 1
    assert "np.zeros without an explicit dtype" in report.warnings[0].message


def test_numpy_hotpath_passes_gather_once_pattern(make_tree):
    root = make_tree(
        {
            "src/repro/gather.py": """
            import numpy as np

            def gather(chunks):
                parts = []
                for chunk in chunks:
                    parts.append(chunk)
                return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

            def histogram(n):
                return np.zeros(n, dtype=np.int64)
            """
        }
    )
    assert _run(root, "numpy-hotpath").findings == []


def test_numpy_hotpath_ignores_files_without_numpy(make_tree):
    root = make_tree(
        {
            "src/repro/plain.py": """
            def gather(chunks):
                out = []
                for chunk in chunks:
                    out.append(chunk)
                return out
            """
        }
    )
    assert _run(root, "numpy-hotpath").findings == []
