"""Runtime lock witness: unit mechanics plus the engine deadlock regression.

The final test is the "TSan-lite" the static rule cannot replace: it runs
a metrics scrape (which snapshots under every writer lock, then the
registry lock) concurrently with a mutation writer (writer lock, then the
engine ``_lock``, then registry counters) on a live ``SearchEngine``, and
asserts the observed acquisition orders are consistent with the statically
derived graph -- i.e. their union stays acyclic.  Re-introducing the
historical hazard (taking writer locks while still holding ``_lock`` in
``metrics_wire``) turns the union into a cycle and fails this test.
"""

from __future__ import annotations

import random
import threading

import numpy as np

from repro.analysis.framework import AnalysisContext
from repro.analysis.rules.locks import build_lock_graph
from repro.analysis.witness import (
    ENGINE_LOCK,
    REGISTRY_LOCK,
    WRITER_FAMILY,
    LockWitness,
    WitnessLog,
    check_consistent,
    family,
    instrument_engine,
)
from repro.engine import SearchEngine
from repro.hamming import BinaryVectorDataset

from .conftest import REPO_ROOT


def test_family_collapse():
    assert family("m.C._writer_locks[sets]") == "m.C._writer_locks[*]"
    assert family("m.C._lock") == "m.C._lock"


def test_witness_records_nesting_edges():
    log = WitnessLog()
    outer = LockWitness(threading.Lock(), "A", log)
    inner = LockWitness(threading.Lock(), "B", log)
    with outer:
        with inner:
            pass
    with outer:  # nothing held underneath: no new edge
        pass
    assert log.edges() == {("A", "B")}
    assert log.counts()[("A", "B")] == 1


def test_check_consistent_accepts_aligned_orders():
    static = {("A", "B")}
    observed = {("A", "B"), ("B", "C")}
    assert check_consistent(static, observed) == []


def test_check_consistent_detects_inversion_against_static_graph():
    static = {("A", "B")}
    observed = {("B", "A")}
    problems = check_consistent(static, observed)
    assert len(problems) == 1
    assert "lock-order cycle" in problems[0]


def test_check_consistent_detects_reacquisition():
    problems = check_consistent(set(), {("A", "A")})
    assert problems == ["lock 'A' was re-acquired while already held"]


def test_check_consistent_keeps_intra_family_instance_order():
    # Two members of one family taken in both orders is a real deadlock
    # even though the family-collapsed graph would show a legal self-loop.
    observed = {
        ("m.C._writer_locks[a]", "m.C._writer_locks[b]"),
        ("m.C._writer_locks[b]", "m.C._writer_locks[a]"),
    }
    problems = check_consistent(set(), observed)
    assert len(problems) == 1
    assert "lock-order cycle" in problems[0]


def test_check_consistent_collapses_cross_family_edges():
    # writer[x] -> registry observed at runtime must interact with the
    # static registry -> writer[*] edge (if one existed) after collapsing.
    static = {("R", "m.C._writer_locks[*]")}
    observed = {("m.C._writer_locks[x]", "R")}
    problems = check_consistent(static, observed)
    assert len(problems) == 1
    assert "lock-order cycle" in problems[0]


# ---------------------------------------------------------------------------
# The engine regression: metrics scrape vs mutation writer
# ---------------------------------------------------------------------------


def _small_engine() -> SearchEngine:
    rng = np.random.default_rng(11)
    vectors = rng.integers(0, 2, size=(64, 32)).astype(np.uint8)
    engine = SearchEngine(cache_size=8)
    engine.add_dataset("hamming", BinaryVectorDataset(vectors, num_parts=4))
    return engine


def test_engine_scrape_vs_writer_is_deadlock_free():
    engine = _small_engine()
    # Force-create the per-backend writer lock so instrumentation wraps it.
    engine._writer_lock("hamming")
    log = WitnessLog()
    instrument_engine(engine, log)

    failures: list[BaseException] = []
    stop = threading.Event()

    def scrape():
        try:
            while not stop.is_set():
                engine.metrics_wire()
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    def write():
        try:
            rnd = random.Random(7)
            for _ in range(40):
                record = np.array(
                    [rnd.randint(0, 1) for _ in range(32)], dtype=np.uint8
                )
                engine.mutate("hamming", [{"op": "upsert", "record": record}])
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    scraper = threading.Thread(target=scrape, name="witness-scraper")
    writer = threading.Thread(target=write, name="witness-writer")
    scraper.start()
    writer.start()
    writer.join(timeout=30)
    stop.set()
    scraper.join(timeout=30)
    assert not writer.is_alive() and not scraper.is_alive()
    assert failures == []

    # The witness must have seen the two orders the static pass cannot:
    # writer -> engine _lock (mutation applying its delta) and
    # writer -> registry lock (scrape snapshotting under writer locks).
    observed = log.edges()
    collapsed = {(family(a), family(b)) for a, b in observed}
    assert (f"{WRITER_FAMILY}[*]", ENGINE_LOCK) in collapsed
    assert (f"{WRITER_FAMILY}[*]", REGISTRY_LOCK) in collapsed

    graph, _ = build_lock_graph(AnalysisContext(str(REPO_ROOT)))
    problems = check_consistent(graph.edges.keys(), observed)
    assert problems == []


def test_witness_catches_reintroduced_scrape_hazard():
    # Simulate the historical bug: snapshotting while still holding _lock.
    engine = _small_engine()
    engine._writer_lock("hamming")
    log = WitnessLog()
    instrument_engine(engine, log)

    with engine._lock:  # type: ignore[attr-defined]
        with engine._writer_locks["hamming"]:  # type: ignore[index]
            pass

    graph, _ = build_lock_graph(AnalysisContext(str(REPO_ROOT)))
    problems = check_consistent(graph.edges.keys(), log.edges())
    assert len(problems) == 1
    assert "lock-order cycle" in problems[0]


# ---------------------------------------------------------------------------
# The replication regression: writer vs rolling compaction vs supervisor heal
# ---------------------------------------------------------------------------


def test_replica_writer_vs_compaction_vs_heal_is_deadlock_free(tmp_path):
    """The documented ``_write_lock -> _lock -> WAL._lock`` order holds live.

    Three concurrent actors contend on one shard's :class:`ReplicaSet`:
    a mutation writer (write lock, then the replica table, then the WAL
    append), a rolling compaction (drain markers under the table lock,
    readmission's final replay under the write lock, WAL truncation) and
    the supervisor healing a SIGKILLed replica (respawn + catch-up).  Any
    inversion against the statically derived graph turns the union cyclic
    and fails here before it can deadlock in production.
    """
    import os
    import signal
    import time

    from repro.datasets.tokens import zipfian_set_workload
    from repro.engine import build_shards
    from repro.engine.sharding import ShardedEngine
    from repro.sets import SetDataset

    workload = zipfian_set_workload(60, 6, seed=17)
    directory = str(tmp_path / "shards")
    build_shards("sets", SetDataset(workload.records, num_classes=4), directory, 1)
    log = WitnessLog()
    engine = ShardedEngine(directory, wal_dir=str(tmp_path / "wal"), replicas=2)
    try:
        from repro.analysis.witness import instrument_replica_set

        instrument_replica_set(engine._sets[0], log)

        failures: list[BaseException] = []
        stop = threading.Event()

        def write():
            try:
                rnd = random.Random(3)
                while not stop.is_set():
                    record = sorted({rnd.randint(0, 40) for _ in range(4)})
                    engine.mutate("sets", [{"op": "upsert", "record": record}])
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        writer = threading.Thread(target=write, name="witness-replica-writer")
        writer.start()
        try:
            engine.compact()  # rolling: drains one replica at a time
            victim = engine.replica_status()[0]["replicas"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                entry = engine.shard_health()[0]
                if entry["live_replicas"] == entry["num_replicas"]:
                    break
                time.sleep(0.05)
            engine.compact()  # a second rolling pass over the healed set
        finally:
            stop.set()
            writer.join(timeout=30)
        assert not writer.is_alive() and failures == []
    finally:
        engine.close()

    observed = log.edges()
    # The three documented orders all fired at least once.
    from repro.analysis.witness import REPLICA_LOCK, REPLICA_WRITE_LOCK, WAL_LOCK

    assert (REPLICA_WRITE_LOCK, REPLICA_LOCK) in observed
    assert (REPLICA_WRITE_LOCK, WAL_LOCK) in observed

    graph, _ = build_lock_graph(AnalysisContext(str(REPO_ROOT)))
    problems = check_consistent(graph.edges.keys(), observed)
    assert problems == []
