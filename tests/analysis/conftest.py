"""Fixture helpers: build throwaway repository trees for the analyser.

The rules walk ``src/`` of whatever root they are handed, so each test
materialises a miniature repository under ``tmp_path`` mirroring the real
``src/repro`` layout and runs the analyser against it.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

#: The real repository root (tests/analysis/conftest.py -> two levels up).
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def make_tree(tmp_path):
    """Write ``{relpath: source}`` files under a fresh root; returns its path."""

    def write(files: dict[str, str]) -> str:
        for relpath, content in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(content), encoding="utf-8")
        return str(tmp_path)

    return write
