"""Framework mechanics: findings, allowlist, exit codes -- and the repo itself.

The last test is the one the CI ``analysis`` job repeats from the command
line: the checked-in tree must be clean under ``--strict``, so any code
change that introduces a lock-order cycle, a wire field nobody reads, an
undocumented flag, a silent ``except`` or a hot-path ``np.append`` fails
the unit suite too, not just the lint job.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import run_analysis
from repro.analysis.framework import (
    AnalysisContext,
    Finding,
    Report,
    all_rules,
    apply_allowlist,
    load_allowlist,
)

from .conftest import REPO_ROOT

EXPECTED_RULES = {
    "doc-drift",
    "exception-hygiene",
    "lock-discipline",
    "numpy-hotpath",
    "wire-compat",
}


def test_all_rules_registered():
    assert {r.name for r in all_rules()} == EXPECTED_RULES


def test_finding_key_is_line_stable():
    a = Finding("r", "f.py", 10, "msg")
    b = Finding("r", "f.py", 99, "msg")
    assert a.key == b.key
    assert a.render() == "f.py:10: [r] error: msg"


def test_exit_code_semantics():
    error = Finding("r", "f.py", 1, "bad")
    warning = Finding("r", "f.py", 1, "meh", severity="warning")
    assert Report(findings=[error]).exit_code(strict=False) == 1
    assert Report(findings=[warning]).exit_code(strict=False) == 0
    assert Report(findings=[warning]).exit_code(strict=True) == 1
    assert Report(stale_allowlist=[{"rule": "r"}]).exit_code(strict=False) == 0
    assert Report(stale_allowlist=[{"rule": "r"}]).exit_code(strict=True) == 1
    assert Report().exit_code(strict=True) == 0


def test_apply_allowlist_suppresses_and_reports_stale():
    findings = [Finding("r", "f.py", 1, "spurious thing"), Finding("r", "f.py", 2, "real bug")]
    entries = [
        {"rule": "r", "match": "spurious", "reason": "argued"},
        {"rule": "r", "match": "never-matches", "reason": "rotted"},
        {"rule": "other", "match": "real bug", "reason": "wrong rule, must not match"},
    ]
    kept, suppressed, stale = apply_allowlist(findings, entries)
    assert [f.message for f in kept] == ["real bug"]
    assert [f.message for f in suppressed] == ["spurious thing"]
    assert stale == entries[1:]


def test_load_allowlist_rejects_incomplete_entries(tmp_path):
    path = tmp_path / "allowlist.json"
    path.write_text(json.dumps([{"rule": "r", "match": "x"}]))
    with pytest.raises(ValueError, match="reason"):
        load_allowlist(str(path))
    assert load_allowlist(str(tmp_path / "absent.json")) == []


def test_module_name():
    assert AnalysisContext.module_name("src/repro/engine/executor.py") == "repro.engine.executor"
    assert AnalysisContext.module_name("src/repro/analysis/__init__.py") == "repro.analysis"


def test_repository_is_clean_under_strict():
    report = run_analysis(str(REPO_ROOT))
    assert report.findings == []
    assert report.stale_allowlist == []
    assert report.exit_code(strict=True) == 0
    # The checked-in allowlist must actually be exercised (only argued FPs).
    assert {f.rule for f in report.suppressed} <= {"wire-compat"}


def test_cli_json_output_and_exit_code(make_tree):
    root = make_tree(
        {
            "pyproject.toml": "",  # anchors --root auto-detection at the fixture tree
            "src/repro/broken.py": """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """,
        }
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--root", root, "--json",
         "--rule", "exception-hygiene"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["rules_run"] == ["exception-hygiene"]
    assert len(payload["findings"]) == 1
    assert payload["findings"][0]["file"] == "src/repro/broken.py"
