"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.binary import BinaryWorkload, clustered_binary_workload, gist_like, sift_like
from repro.datasets.text import imdb_like, name_workload, pubmed_like, title_workload
from repro.datasets.tokens import dblp_like, enron_like, zipfian_set_workload


class TestBinaryWorkloads:
    def test_shapes_and_values(self):
        workload = clustered_binary_workload(
            num_vectors=100, d=64, num_queries=5, seed=1
        )
        assert workload.vectors.shape == (100, 64)
        assert workload.queries.shape == (5, 64)
        assert set(np.unique(workload.vectors)) <= {0, 1}
        assert workload.d == 64
        assert workload.num_vectors == 100
        assert workload.num_queries == 5

    def test_determinism(self):
        a = clustered_binary_workload(50, 32, 3, seed=9)
        b = clustered_binary_workload(50, 32, 3, seed=9)
        assert np.array_equal(a.vectors, b.vectors)
        assert np.array_equal(a.queries, b.queries)

    def test_different_seeds_differ(self):
        a = clustered_binary_workload(50, 32, 3, seed=1)
        b = clustered_binary_workload(50, 32, 3, seed=2)
        assert not np.array_equal(a.vectors, b.vectors)

    def test_queries_have_near_neighbours(self):
        workload = clustered_binary_workload(
            num_vectors=500, d=64, num_queries=5, cluster_fraction=0.6, seed=3
        )
        for query in workload.queries:
            distances = (workload.vectors != query).sum(axis=1)
            assert distances.min() <= 24  # well below the d/2 random baseline

    def test_named_presets(self):
        assert gist_like(num_vectors=50, num_queries=2).d == 256
        assert sift_like(num_vectors=50, num_queries=2).d == 512

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            clustered_binary_workload(0, 16, 1)
        with pytest.raises(ValueError):
            clustered_binary_workload(10, 0, 1)
        with pytest.raises(ValueError):
            clustered_binary_workload(10, 16, 1, cluster_fraction=2.0)

    def test_workload_dataclass(self):
        workload = BinaryWorkload(
            vectors=np.zeros((3, 8), dtype=np.uint8),
            queries=np.zeros((1, 8), dtype=np.uint8),
        )
        assert workload.num_vectors == 3


class TestTokenWorkloads:
    def test_shapes(self):
        workload = zipfian_set_workload(
            num_records=80, num_queries=5, universe_size=500, avg_size=15,
            size_spread=5, seed=2,
        )
        assert workload.num_records == 80
        assert workload.num_queries == 5
        assert 5 <= workload.avg_record_size <= 25

    def test_records_are_distinct_token_lists(self):
        workload = zipfian_set_workload(
            num_records=30, num_queries=3, universe_size=200, avg_size=10,
            size_spread=3, seed=4,
        )
        for record in workload.records:
            assert len(record) == len(set(record))
            assert all(0 <= token < 200 + 1 for token in record)

    def test_determinism(self):
        a = zipfian_set_workload(20, 2, universe_size=100, avg_size=8, size_spread=2, seed=5)
        b = zipfian_set_workload(20, 2, universe_size=100, avg_size=8, size_spread=2, seed=5)
        assert a.records == b.records
        assert a.queries == b.queries

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipfian_set_workload(0, 1)
        with pytest.raises(ValueError):
            zipfian_set_workload(10, 1, avg_size=3, size_spread=5)

    def test_named_presets(self):
        enron = enron_like(num_records=40, num_queries=3)
        dblp = dblp_like(num_records=40, num_queries=3)
        assert enron.avg_record_size > dblp.avg_record_size


class TestStringWorkloads:
    def test_shapes(self):
        workload = name_workload(num_records=60, num_queries=5, seed=2)
        assert workload.num_records == 60
        assert workload.num_queries == 5
        assert workload.avg_length > 4

    def test_titles_are_longer_than_names(self):
        names = name_workload(num_records=40, num_queries=3, seed=1)
        titles = title_workload(num_records=40, num_queries=3, seed=1)
        assert titles.avg_length > names.avg_length

    def test_determinism(self):
        a = name_workload(num_records=20, num_queries=2, seed=8)
        b = name_workload(num_records=20, num_queries=2, seed=8)
        assert a.records == b.records
        assert a.queries == b.queries

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            name_workload(0, 1)
        with pytest.raises(ValueError):
            title_workload(1, 0)

    def test_named_presets(self):
        assert imdb_like(num_records=30, num_queries=2).num_records == 30
        assert pubmed_like(num_records=30, num_queries=2).num_records == 30
