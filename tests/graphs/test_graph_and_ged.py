"""Tests for the graph structure, subgraph isomorphism and graph edit distance."""

import pytest

from repro.graphs.ged import ged_within, graph_edit_distance
from repro.graphs.graph import Graph
from repro.graphs.isomorphism import min_mapping_cost, subgraph_isomorphic
from repro.graphs.partition import partition_graph, partition_vertices


def path_graph(labels, edge_label="e"):
    graph = Graph()
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    for i in range(len(labels) - 1):
        graph.add_edge(i, i + 1, edge_label)
    return graph


def triangle(labels=("C", "C", "C"), edge_label="e"):
    graph = Graph()
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    graph.add_edge(0, 1, edge_label)
    graph.add_edge(1, 2, edge_label)
    graph.add_edge(0, 2, edge_label)
    return graph


class TestGraph:
    def test_add_and_query(self):
        graph = path_graph(["C", "N", "O"])
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.vertex_label(1) == "N"
        assert graph.has_edge(0, 1)
        assert graph.edge_label(1, 2) == "e"
        assert graph.degree(1) == 2
        assert graph.neighbors(1) == {0, 2}

    def test_self_loop_rejected(self):
        graph = path_graph(["C"])
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, "e")

    def test_edge_requires_existing_vertices(self):
        graph = path_graph(["C"])
        with pytest.raises(ValueError):
            graph.add_edge(0, 7, "e")

    def test_remove_vertex_removes_incident_edges(self):
        graph = triangle()
        graph.remove_vertex(1)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1

    def test_induced_subgraph(self):
        graph = triangle(("C", "N", "O"))
        sub = graph.induced_subgraph([0, 1])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.vertex_label(1) == "N"

    def test_copy_and_equality(self):
        graph = triangle()
        clone = graph.copy()
        assert clone == graph
        clone.remove_edge(0, 1)
        assert clone != graph

    def test_label_counts(self):
        graph = triangle(("C", "C", "N"))
        assert graph.vertex_label_counts() == {"C": 2, "N": 1}
        assert graph.edge_label_counts() == {"e": 3}


class TestSubgraphIsomorphism:
    def test_path_in_triangle(self):
        assert subgraph_isomorphic(path_graph(["C", "C"]), triangle())

    def test_triangle_not_in_path(self):
        assert not subgraph_isomorphic(triangle(), path_graph(["C", "C", "C"]))

    def test_label_mismatch(self):
        assert not subgraph_isomorphic(path_graph(["C", "S"]), triangle())

    def test_edge_label_must_match(self):
        pattern = path_graph(["C", "C"], edge_label="double")
        assert not subgraph_isomorphic(pattern, triangle(edge_label="single"))

    def test_empty_pattern_is_always_isomorphic(self):
        assert subgraph_isomorphic(Graph(), triangle())

    def test_isolated_vertex_pattern(self):
        pattern = Graph({0: "C"})
        assert subgraph_isomorphic(pattern, triangle())
        assert not subgraph_isomorphic(Graph({0: "X"}), triangle())


class TestMinMappingCost:
    def test_zero_cost_for_subgraph(self):
        assert min_mapping_cost(path_graph(["C", "C"]), triangle(), budget=3) == 0

    def test_label_mismatch_costs_one(self):
        assert min_mapping_cost(Graph({0: "X"}), triangle(), budget=3) == 1

    def test_missing_edge_costs_one(self):
        pattern = triangle(("C", "C", "C"))
        target = path_graph(["C", "C", "C"])
        assert min_mapping_cost(pattern, target, budget=3) == 1

    def test_budget_truncation(self):
        pattern = triangle(("X", "Y", "Z"))
        target = path_graph(["C", "C"])
        assert min_mapping_cost(pattern, target, budget=1) == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            min_mapping_cost(Graph(), Graph(), budget=-1)

    def test_lower_bound_of_ged_to_any_subgraph(self):
        # min_mapping_cost(pattern, target) <= ged(pattern, target subgraph).
        pattern = triangle(("C", "N", "O"))
        target = path_graph(["C", "N", "O", "C"])
        cost = min_mapping_cost(pattern, target, budget=10)
        best = min(
            graph_edit_distance(pattern, target.induced_subgraph(subset))
            for subset in ([0, 1, 2], [1, 2, 3], [0, 1], [2, 3], [0, 1, 2, 3])
        )
        assert cost <= best


class TestGraphEditDistance:
    def test_identical_graphs(self):
        assert graph_edit_distance(triangle(), triangle()) == 0

    def test_single_vertex_relabel(self):
        assert graph_edit_distance(triangle(("C", "C", "C")), triangle(("C", "C", "N"))) == 1

    def test_single_edge_deletion(self):
        assert graph_edit_distance(triangle(), path_graph(["C", "C", "C"])) == 1

    def test_edge_relabel(self):
        a = path_graph(["C", "C"], edge_label="single")
        b = path_graph(["C", "C"], edge_label="double")
        assert graph_edit_distance(a, b) == 1

    def test_vertex_insertion(self):
        a = path_graph(["C", "C"])
        b = path_graph(["C", "C", "C"])
        # Insert one vertex and one edge.
        assert graph_edit_distance(a, b) == 2

    def test_empty_versus_triangle(self):
        assert graph_edit_distance(Graph(), triangle()) == 6  # 3 vertices + 3 edges

    def test_symmetry(self):
        a = triangle(("C", "N", "O"))
        b = path_graph(["C", "N", "S", "O"])
        assert graph_edit_distance(a, b) == graph_edit_distance(b, a)

    def test_upper_bound_truncation(self):
        a = Graph()
        b = triangle()
        assert graph_edit_distance(a, b, upper_bound=2) == 3

    def test_ged_within(self):
        assert ged_within(triangle(), triangle(), 0)
        assert ged_within(triangle(), path_graph(["C", "C", "C"]), 1)
        assert not ged_within(triangle(), path_graph(["C", "C", "C"]), 0)
        assert not ged_within(triangle(), triangle(), -1)

    def test_paper_example_12_structure(self):
        # Example 12: x and q are 5-vertex molecule graphs with ged(x, q) = 3.
        x = Graph(
            {0: "S", 1: "C", 2: "C", 3: "P", 4: "O"},
            [(0, 1, "-"), (1, 2, "-"), (2, 3, "-"), (3, 4, "-")],
        )
        q = Graph(
            {0: "S", 1: "C", 2: "C", 3: "N", 4: "C"},
            [(0, 1, "-"), (1, 2, "-"), (2, 3, "-"), (3, 4, "-")],
        )
        assert graph_edit_distance(x, q) <= 3
        assert not ged_within(x, q, 1)


class TestPartitioning:
    def test_partition_covers_all_vertices(self):
        graph = path_graph(["C"] * 7)
        groups = partition_vertices(graph, 3)
        flattened = sorted(v for group in groups for v in group)
        assert flattened == sorted(graph.vertices)
        assert [len(g) for g in groups] == [3, 2, 2]

    def test_partition_graph_parts_are_disjoint(self):
        graph = triangle(("C", "N", "O"))
        parts = partition_graph(graph, 2)
        vertices = [set(part.vertices) for part in parts]
        assert vertices[0].isdisjoint(vertices[1])

    def test_invalid_num_parts(self):
        with pytest.raises(ValueError):
            partition_vertices(triangle(), 0)

    def test_more_parts_than_vertices(self):
        graph = path_graph(["C", "C"])
        parts = partition_graph(graph, 4)
        assert len(parts) == 4
        assert sum(part.num_vertices for part in parts) == 2

    def test_untouched_part_is_subgraph_of_close_graph(self):
        # The completeness argument behind Pars: if ged(x, q) <= tau, some part
        # of the (tau + 1)-partition is subgraph-isomorphic to q.
        x = path_graph(["C", "N", "O", "C", "N", "O"])
        q = x.copy()
        q.add_vertex(99, "S")
        q.add_edge(99, 0, "e")
        tau = 2  # ged(x, q) = 2
        parts = partition_graph(x, tau + 1)
        assert any(subgraph_isomorphic(part, q) for part in parts)
