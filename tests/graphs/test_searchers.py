"""Correctness and containment tests for the graph edit distance searchers."""

import pytest

from repro.datasets.molecules import molecule_workload
from repro.graphs.dataset import GraphDataset
from repro.graphs.linear import LinearGraphSearcher
from repro.graphs.pars import ParsSearcher
from repro.graphs.ring import RingGraphSearcher


@pytest.fixture(scope="module")
def workload():
    return molecule_workload(
        num_graphs=60,
        num_queries=6,
        min_vertices=6,
        max_vertices=9,
        extra_edges=2,
        num_vertex_labels=6,
        num_edge_labels=2,
        max_edits=3,
        seed=5,
    )


@pytest.fixture(scope="module")
def dataset(workload):
    return GraphDataset(workload.graphs)


def ground_truth(dataset, query, tau):
    return sorted(LinearGraphSearcher(dataset).search(query, tau).results)


class TestExactness:
    @pytest.mark.parametrize("tau", (1, 2, 3))
    def test_pars_matches_linear_scan(self, workload, dataset, tau):
        searcher = ParsSearcher(dataset, tau)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, query, tau
            )

    @pytest.mark.parametrize("tau", (1, 2, 3))
    @pytest.mark.parametrize("chain_length", (1, 2, 3, None))
    def test_ring_matches_linear_scan(self, workload, dataset, tau, chain_length):
        searcher = RingGraphSearcher(dataset, tau, chain_length=chain_length)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, query, tau
            )

    def test_queries_have_results(self, workload, dataset):
        total = sum(len(ground_truth(dataset, q, 3)) for q in workload.queries)
        assert total > 0


class TestCandidateContainment:
    @pytest.mark.parametrize("tau", (2, 3))
    def test_ring_candidates_subset_of_pars(self, workload, dataset, tau):
        pars = ParsSearcher(dataset, tau)
        for chain_length in (2, 3):
            ring = RingGraphSearcher(dataset, tau, chain_length=chain_length)
            for query in workload.queries:
                assert set(ring.candidates(query)) <= set(pars.candidates(query))

    def test_chain_length_one_equals_pars(self, workload, dataset):
        tau = 2
        pars = ParsSearcher(dataset, tau)
        ring = RingGraphSearcher(dataset, tau, chain_length=1)
        for query in workload.queries:
            assert set(ring.candidates(query)) == set(pars.candidates(query))

    def test_candidates_contain_results(self, workload, dataset):
        ring = RingGraphSearcher(dataset, 3)
        for query in workload.queries:
            outcome = ring.search(query)
            assert set(outcome.results) <= set(outcome.candidates)

    def test_candidates_shrink_with_chain_length(self, workload, dataset):
        tau = 3
        searchers = {
            length: RingGraphSearcher(dataset, tau, chain_length=length)
            for length in (1, 2, 4)
        }
        for query in workload.queries:
            previous = None
            for length in (1, 2, 4):
                current = set(searchers[length].candidates(query))
                if previous is not None:
                    assert current <= previous
                previous = current


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            GraphDataset([])

    def test_invalid_tau(self, dataset):
        with pytest.raises(ValueError):
            ParsSearcher(dataset, -1)

    def test_invalid_chain_length(self, dataset):
        with pytest.raises(ValueError):
            RingGraphSearcher(dataset, 2, chain_length=0)

    def test_default_chain_length(self, dataset):
        assert RingGraphSearcher(dataset, 4).chain_length == 3
        assert RingGraphSearcher(dataset, 1).chain_length == 1

    def test_parts_accessible(self, dataset):
        searcher = ParsSearcher(dataset, 2)
        parts = searcher.parts(0)
        assert len(parts) == 3
        assert sum(p.num_vertices for p in parts) == dataset.graph(0).num_vertices


class TestWorkloadGenerator:
    def test_molecule_workload_shapes(self, workload):
        assert workload.num_graphs == 60
        assert workload.num_queries == 6
        assert 6 <= workload.avg_vertices <= 9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            molecule_workload(num_graphs=0, num_queries=1)
        with pytest.raises(ValueError):
            molecule_workload(num_graphs=1, num_queries=1, min_vertices=5, max_vertices=3)

    def test_determinism(self):
        a = molecule_workload(num_graphs=5, num_queries=2, seed=9)
        b = molecule_workload(num_graphs=5, num_queries=2, seed=9)
        assert all(x == y for x, y in zip(a.graphs, b.graphs))
