"""Tests for variable threshold allocation and integer reduction (Theorems 4-7)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.thresholds import (
    Direction,
    ThresholdAllocation,
    integer_reduction_allocation,
    uniform_allocation,
)


class TestConstruction:
    def test_uniform_allocation_values(self):
        alloc = uniform_allocation(5, 5)
        assert alloc.thresholds == (1.0, 1.0, 1.0, 1.0, 1.0)
        assert alloc.direction is Direction.LEQ
        assert not alloc.integer_reduction

    def test_uniform_allocation_rejects_bad_m(self):
        with pytest.raises(ValueError):
            uniform_allocation(5, 0)

    def test_integer_reduction_allocation_total_leq(self):
        alloc = integer_reduction_allocation(5, 5)
        assert alloc.total == 5 - 5 + 1
        assert alloc.integer_reduction

    def test_integer_reduction_allocation_total_geq(self):
        alloc = integer_reduction_allocation(9, 5, direction=Direction.GEQ)
        assert alloc.total == 9 + 5 - 1

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAllocation([])

    def test_validates_bound(self):
        assert uniform_allocation(5, 5).validates_bound(5)
        assert integer_reduction_allocation(5, 5).validates_bound(5)
        assert not uniform_allocation(5, 5).validates_bound(6)
        geq = integer_reduction_allocation(9, 5, direction=Direction.GEQ)
        assert geq.validates_bound(9)


class TestChainThresholds:
    def test_chain_threshold_sums_box_thresholds(self):
        alloc = ThresholdAllocation([1, 2, 0, 1, 1])
        assert alloc.chain_threshold(0, 2) == 3
        assert alloc.chain_threshold(3, 3) == 1 + 1 + 1  # wraps to t_0

    def test_chain_threshold_with_integer_reduction_leq(self):
        alloc = ThresholdAllocation([0, 1, 0], integer_reduction=True)
        assert alloc.chain_threshold(0, 2) == 0 + 1 + (2 - 1)

    def test_chain_threshold_with_integer_reduction_geq(self):
        alloc = ThresholdAllocation(
            [4, 1, 2, 2, 4], direction=Direction.GEQ, integer_reduction=True
        )
        # Example 10: t_2 + t_3 - (l - 1) = 2 + 2 - 1 = 3.
        assert alloc.chain_threshold(2, 2) == 3

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAllocation([1, 1]).chain_threshold(0, 3)


class TestExample7:
    """Example 7: x1 = (2,1,2,2,1), T = (1,2,0,1,1), variable allocation."""

    BOXES = (2, 1, 2, 2, 1)
    ALLOC = ThresholdAllocation([1, 2, 0, 1, 1])

    def test_chain_0_2_is_viable(self):
        assert self.ALLOC.is_viable(self.BOXES, 0, 2)

    def test_it_is_the_only_viable_chain_of_length_two(self):
        viable = [i for i in range(5) if self.ALLOC.is_viable(self.BOXES, i, 2)]
        assert viable == [0]

    def test_its_one_prefix_violates(self):
        assert not self.ALLOC.is_prefix_viable(self.BOXES, 0, 2)

    def test_object_is_filtered(self):
        assert not self.ALLOC.passes(self.BOXES, 2)


class TestExample8:
    """Example 8: x3 = (1,2,2,1,1), T = (1,0,0,0,0), integer reduction."""

    BOXES = (1, 2, 2, 1, 1)
    ALLOC = ThresholdAllocation([1, 0, 0, 0, 0], integer_reduction=True)

    def test_chain_4_2_is_viable(self):
        assert self.ALLOC.is_viable(self.BOXES, 4, 2)

    def test_it_is_the_only_viable_chain_of_length_two(self):
        viable = [i for i in range(5) if self.ALLOC.is_viable(self.BOXES, i, 2)]
        assert viable == [4]

    def test_its_one_prefix_violates(self):
        assert not self.ALLOC.is_prefix_viable(self.BOXES, 4, 2)

    def test_object_is_filtered(self):
        assert not self.ALLOC.passes(self.BOXES, 2)


class TestGeqDirection:
    def test_example_10_set_similarity_boxes(self):
        # Example 10: tau = 9, m = 5, T = (4, 1, 2, 2, 4), f(x, q) = 8.
        # b2 = 2 is the only box with b_i >= t_i; b2 + b3 = 2 < t2 + t3 - 1 = 3.
        boxes = (3, 0, 2, 0, 3)
        alloc = ThresholdAllocation(
            [4, 1, 2, 2, 4], direction=Direction.GEQ, integer_reduction=True
        )
        # Pigeonhole (l = 1) lets the object through via b2...
        assert alloc.passes(boxes, 1)
        assert alloc.strong_witnesses(boxes, 1) == [2]
        # ...but the chain of length 2 starting at b2 is not viable, so the
        # pigeonring filter removes the false positive, as in the paper.
        assert not alloc.is_viable(boxes, 2, 2)
        assert not alloc.passes(boxes, 2)

    def test_geq_guarantee(self):
        # If ||B||_1 >= n and ||T||_1 = n, some chain is prefix-viable (>= case).
        boxes = (3, 2, 4, 1, 2)
        alloc = ThresholdAllocation([2, 2, 4, 2, 2], direction=Direction.GEQ)
        assert sum(boxes) >= alloc.total
        for length in range(1, 6):
            assert alloc.passes(boxes, length)


@st.composite
def integer_cases(draw, max_m=7, max_value=10):
    m = draw(st.integers(min_value=1, max_value=max_m))
    boxes = draw(
        st.lists(st.integers(min_value=0, max_value=max_value), min_size=m, max_size=m)
    )
    thresholds = draw(
        st.lists(st.integers(min_value=0, max_value=max_value), min_size=m, max_size=m)
    )
    return boxes, thresholds


class TestTheoremProperties:
    @given(integer_cases())
    def test_theorem_6_guarantee(self, case):
        """Variable allocation: if ||B||_1 <= ||T||_1 a prefix-viable chain exists."""
        boxes, thresholds = case
        alloc = ThresholdAllocation(thresholds)
        if sum(boxes) > alloc.total:
            return
        for length in range(1, len(boxes) + 1):
            assert alloc.passes(boxes, length)

    @given(integer_cases())
    def test_theorem_7_guarantee(self, case):
        """Integer reduction: ||B||_1 <= ||T||_1 + m - 1 still guarantees a witness."""
        boxes, thresholds = case
        alloc = ThresholdAllocation(thresholds, integer_reduction=True)
        n = alloc.total + len(boxes) - 1
        if sum(boxes) > n:
            return
        for length in range(1, len(boxes) + 1):
            assert alloc.passes(boxes, length)

    @given(integer_cases())
    def test_theorem_6_geq_guarantee(self, case):
        boxes, thresholds = case
        alloc = ThresholdAllocation(thresholds, direction=Direction.GEQ)
        if sum(boxes) < alloc.total:
            return
        for length in range(1, len(boxes) + 1):
            assert alloc.passes(boxes, length)

    @given(integer_cases())
    def test_theorem_7_geq_guarantee(self, case):
        boxes, thresholds = case
        alloc = ThresholdAllocation(
            thresholds, direction=Direction.GEQ, integer_reduction=True
        )
        n = alloc.total - len(boxes) + 1
        if sum(boxes) < n:
            return
        for length in range(1, len(boxes) + 1):
            assert alloc.passes(boxes, length)

    @given(integer_cases())
    def test_strong_witnesses_subset_of_basic(self, case):
        boxes, thresholds = case
        alloc = ThresholdAllocation(thresholds)
        for length in range(1, len(boxes) + 1):
            if alloc.passes(boxes, length):
                assert alloc.passes_basic(boxes, length)

    @given(integer_cases())
    def test_first_prefix_violation_consistency(self, case):
        boxes, thresholds = case
        alloc = ThresholdAllocation(thresholds)
        for start in range(len(boxes)):
            violation = alloc.first_prefix_violation(boxes, start, len(boxes))
            prefix_viable = alloc.is_prefix_viable(boxes, start, len(boxes))
            assert (violation is None) == prefix_viable
