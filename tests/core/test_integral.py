"""Tests for the integral (continuous) forms of Appendix B."""

import math

import pytest

from repro.core.integral import (
    integral_over_period,
    pointwise_witness,
    prefix_viable_witness,
)


class TestIntegralOverPeriod:
    def test_constant_function(self):
        assert math.isclose(integral_over_period(lambda x: 2.0, 0.0, 3.0), 6.0, rel_tol=1e-9)

    def test_sine_over_full_period_is_zero(self):
        value = integral_over_period(math.sin, 0.0, 2 * math.pi)
        assert abs(value) < 1e-6

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            integral_over_period(lambda x: 1.0, 0.0, 0.0)


class TestTheorem8:
    def test_constant_function_witness(self):
        x = pointwise_witness(lambda t: 1.0, 0.0, 4.0, n=4.0)
        assert x is not None
        assert 0.0 <= x <= 4.0

    def test_witness_value_is_within_quota(self):
        b = lambda t: 2.0 + math.sin(t)  # noqa: E731
        period = 2 * math.pi
        n = integral_over_period(b, 0.0, period) + 1e-9
        x = pointwise_witness(b, 0.0, period, n)
        assert x is not None
        assert b(x) <= n / period + 1e-6

    def test_premise_failure_returns_none(self):
        assert pointwise_witness(lambda t: 2.0, 0.0, 4.0, n=4.0) is None


class TestTheorem9:
    def test_constant_function(self):
        x1 = prefix_viable_witness(lambda t: 1.0, 0.0, 5.0, n=5.0)
        assert x1 is not None

    def test_periodic_sine(self):
        period = 2 * math.pi
        b = lambda t: 1.0 + math.sin(t)  # noqa: E731
        n = integral_over_period(b, 0.0, period) + 1e-6
        x1 = prefix_viable_witness(b, 0.0, period, n)
        assert x1 is not None
        # The cumulative integral from x1 must stay under the linear budget.
        samples = 512
        quota = n / period
        step = period / samples
        running = 0.0
        previous = b(x1)
        for k in range(1, samples + 1):
            current = b(x1 + k * step)
            running += 0.5 * (previous + current) * step
            previous = current
            assert running <= k * step * quota + 1e-3

    def test_square_wave(self):
        period = 4.0

        def b(t):
            return 3.0 if (t % period) < 1.0 else 0.5

        n = integral_over_period(b, 0.0, period) + 1e-9
        x1 = prefix_viable_witness(b, 0.0, period, n, samples=4096)
        assert x1 is not None
        # The witness must start after the heavy pulse.
        assert (x1 % period) >= 1.0 - 1e-2

    def test_premise_failure_returns_none(self):
        assert prefix_viable_witness(lambda t: 2.0, 0.0, 4.0, n=4.0) is None
