"""Tests for the universal filtering framework <F, B, D> (Section 5)."""

from repro.core.framework import (
    FilteringInstance,
    check_completeness,
    check_tightness,
    trivial_complete_instance,
)
from repro.core.thresholds import Direction, ThresholdAllocation


def _hamming(x, q):
    return sum(1 for a, b in zip(x, q) if a != b)


def _hamming_boxes(x, q, m=5):
    """Equi-width partition boxes for binary tuples of length divisible by m."""
    width = len(x) // m
    return [
        _hamming(x[i * width : (i + 1) * width], q[i * width : (i + 1) * width])
        for i in range(m)
    ]


def _partition_features(x, m=5):
    width = len(x) // m
    return [x[i * width : (i + 1) * width] for i in range(m)]


# Table 2 of the paper: d = 10, m = 5, tau = 5.
TABLE2_QUERY = (0, 0, 1, 0, 0, 1, 0, 0, 1, 1)
TABLE2_DATA = {
    "x1": (1, 1, 1, 1, 1, 0, 1, 1, 1, 0),
    "x2": (0, 0, 0, 1, 0, 1, 1, 1, 1, 0),
    "x3": (0, 1, 0, 1, 1, 0, 0, 1, 1, 0),
    "x4": (1, 1, 0, 1, 1, 0, 1, 1, 0, 0),
}


def hamming_instance() -> FilteringInstance:
    return FilteringInstance(
        featuring=_partition_features,
        boxes=_hamming_boxes,
        bound=lambda tau: tau,
        selection=_hamming,
        direction=Direction.LEQ,
    )


class TestFilteringInstance:
    def test_box_sum_equals_selection_for_disjoint_partitions(self):
        instance = hamming_instance()
        for x in TABLE2_DATA.values():
            assert instance.box_sum(x, TABLE2_QUERY) == _hamming(x, TABLE2_QUERY)

    def test_example_2_box_values(self):
        instance = hamming_instance()
        assert instance.box_values(TABLE2_DATA["x1"], TABLE2_QUERY) == [2, 1, 2, 2, 1]
        assert instance.box_values(TABLE2_DATA["x2"], TABLE2_QUERY) == [0, 2, 0, 2, 1]
        assert instance.box_values(TABLE2_DATA["x3"], TABLE2_QUERY) == [1, 2, 2, 1, 1]
        assert instance.box_values(TABLE2_DATA["x4"], TABLE2_QUERY) == [2, 2, 2, 2, 2]

    def test_example_2_pigeonhole_candidates(self):
        # With l = 1 (pigeonhole), x1, x2, x3 are candidates and x4 is not.
        instance = hamming_instance()
        passing = {
            name
            for name, x in TABLE2_DATA.items()
            if instance.passes(x, TABLE2_QUERY, tau=5, length=1)
        }
        assert passing == {"x1", "x2", "x3"}

    def test_example_5_pigeonring_candidates_at_length_two(self):
        # With l = 2 only x2 and x3 remain candidates.
        instance = hamming_instance()
        passing = {
            name
            for name, x in TABLE2_DATA.items()
            if instance.passes(x, TABLE2_QUERY, tau=5, length=2)
        }
        assert passing == {"x2", "x3"}

    def test_length_m_candidates_equal_results(self):
        instance = hamming_instance()
        passing = {
            name
            for name, x in TABLE2_DATA.items()
            if instance.passes(x, TABLE2_QUERY, tau=5, length=5)
        }
        results = {
            name
            for name, x in TABLE2_DATA.items()
            if instance.is_result(x, TABLE2_QUERY, tau=5)
        }
        assert passing == results == {"x2"}

    def test_passes_with_explicit_allocation(self):
        instance = hamming_instance()
        alloc = ThresholdAllocation([1, 1, 1, 1, 1])
        assert instance.passes(
            TABLE2_DATA["x2"], TABLE2_QUERY, tau=5, length=2, allocation=alloc
        )

    def test_basic_form_option(self):
        instance = hamming_instance()
        # (2, 0, 3, 1, 2) corresponds to no object in Table 2; use x2 whose
        # boxes (0,2,0,2,1) pass both forms at l = 2.
        assert instance.passes(TABLE2_DATA["x2"], TABLE2_QUERY, 5, 2, strong=False)

    def test_allocation_helper(self):
        instance = hamming_instance()
        alloc = instance.allocation(5, 5)
        assert alloc.thresholds == (1.0,) * 5

    def test_is_result_geq_direction(self):
        overlap_instance = FilteringInstance(
            featuring=lambda s: sorted(s),
            boxes=lambda x, q: [len(set(x) & set(q))],
            bound=lambda tau: tau,
            selection=lambda x, q: len(set(x) & set(q)),
            direction=Direction.GEQ,
        )
        assert overlap_instance.is_result({1, 2, 3}, {2, 3, 4}, tau=2)
        assert not overlap_instance.is_result({1, 2, 3}, {4, 5}, tau=1)


class TestCompletenessAndTightness:
    def pairs(self):
        return [(x, TABLE2_QUERY) for x in TABLE2_DATA.values()]

    def test_hamming_instance_is_complete_and_tight(self):
        instance = hamming_instance()
        assert check_completeness(instance, self.pairs(), taus=[3, 5, 7])
        assert check_tightness(instance, self.pairs(), taus=[3, 5, 7])

    def test_lower_bounding_instance_is_complete_but_not_tight(self):
        # Boxes sum to floor(H / 2): a valid lower bound, complete, not tight.
        instance = FilteringInstance(
            featuring=_partition_features,
            boxes=lambda x, q: [_hamming(x, q) // 2],
            bound=lambda tau: tau,
            selection=_hamming,
        )
        assert check_completeness(instance, self.pairs(), taus=[3, 5, 7])
        assert not check_tightness(instance, self.pairs(), taus=[5])

    def test_broken_instance_is_not_complete(self):
        # Boxes sum to H + 1 with D(tau) = tau: violates Condition 1 of Lemma 6.
        instance = FilteringInstance(
            featuring=_partition_features,
            boxes=lambda x, q: [_hamming(x, q) + 1],
            bound=lambda tau: tau,
            selection=_hamming,
        )
        assert not check_completeness(instance, self.pairs())

    def test_trivial_instance_is_complete(self):
        instance = trivial_complete_instance(_hamming)
        assert check_completeness(instance, self.pairs(), taus=[0, 5, 10])
        assert not check_tightness(instance, self.pairs(), taus=[5])

    def test_geq_completeness(self):
        overlap = lambda x, q: len(set(x) & set(q))  # noqa: E731
        instance = FilteringInstance(
            featuring=lambda s: sorted(s),
            boxes=lambda x, q: [overlap(x, q)],
            bound=lambda tau: tau,
            selection=overlap,
            direction=Direction.GEQ,
        )
        pairs = [({1, 2, 3}, {2, 3, 4}), ({1}, {2}), ({5, 6}, {5, 6})]
        assert check_completeness(instance, pairs, taus=[1, 2])
        assert check_tightness(instance, pairs, taus=[1, 2])
