"""Tests for the geometric interpretation of Appendix A."""

from hypothesis import given, strategies as st

from repro.core.geometry import (
    constructive_prefix_viable_start,
    cumulative_sums,
    line_intercept,
    max_intercept_start,
    verify_geometric_witness,
)
from repro.core.chains import is_prefix_viable
from repro.core.principle import pigeonring_strong_witnesses

import pytest

FIG1A = (2, 1, 2, 2, 1)


class TestCumulativeSums:
    def test_values(self):
        assert cumulative_sums((1, 2, 3)) == [0, 1, 3, 6, 7, 9]

    def test_length_is_two_m(self):
        assert len(cumulative_sums(FIG1A)) == 2 * len(FIG1A)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cumulative_sums(())


class TestIntercepts:
    def test_line_intercept_at_origin_start(self):
        assert line_intercept((1, 2, 3), 0) == 0.0

    def test_intercepts_reflect_running_balance(self):
        # Boxes (3, 0, 0): starting after the heavy box has the best intercept.
        assert max_intercept_start((3, 0, 0)) == 1

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            line_intercept((1, 2, 3), 3)


class TestConstructiveWitness:
    def test_returns_none_when_premise_fails(self):
        assert constructive_prefix_viable_start(FIG1A, 5) is None

    def test_witness_for_within_budget_layout(self):
        layout = (2, 1, 0, 1, 1)
        start = constructive_prefix_viable_start(layout, 5)
        assert start is not None
        quota = 1.0
        for length in range(1, 6):
            assert is_prefix_viable(layout, start, length, quota)

    def test_witness_matches_exhaustive_search(self):
        layout = (0, 2, 1, 1, 1)
        start = constructive_prefix_viable_start(layout, 5)
        for length in range(1, 6):
            assert start in pigeonring_strong_witnesses(layout, 5, length)

    def test_verify_geometric_witness_on_examples(self):
        assert verify_geometric_witness((1, 1, 1, 1, 1), 5)
        assert verify_geometric_witness(FIG1A, 5)  # premise fails -> vacuously true

    @given(
        st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=10)
    )
    def test_constructive_witness_property(self, boxes):
        """Whenever ||B||_1 <= n, the Appendix-A start is prefix-viable at every length."""
        n = sum(boxes) + 1e-9
        start = constructive_prefix_viable_start(boxes, n)
        assert start is not None
        quota = n / len(boxes)
        for length in range(1, len(boxes) + 1):
            assert is_prefix_viable(boxes, start, length, quota)

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=100),
    )
    def test_verify_geometric_witness_property(self, boxes, n):
        assert verify_geometric_witness(boxes, n)
