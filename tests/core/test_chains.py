"""Unit and property tests for the ring / chain machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.core.chains import (
    Chain,
    Ring,
    chain_sum,
    first_prefix_violation,
    is_prefix_viable,
    is_suffix_viable,
    is_viable,
    prefix_sums,
    prefix_viable_lengths,
)

# The ring of Figure 1(a): layout (2, 1, 2, 2, 1) with n = m = 5.
FIG1A = (2, 1, 2, 2, 1)
# The ring of Figure 1(b): layout (2, 0, 3, 1, 2).
FIG1B = (2, 0, 3, 1, 2)


class TestChainSum:
    def test_simple_sum(self):
        assert chain_sum(FIG1A, 0, 2) == 3

    def test_wraps_around_the_ring(self):
        assert chain_sum(FIG1A, 4, 2) == 1 + 2
        assert chain_sum(FIG1A, 3, 4) == 2 + 1 + 2 + 1

    def test_example_4_c43(self):
        # Example 4: c_3^4 = (b3, b4, b0, b1), sum 2 + 1 + 2 + 1 = 6.
        assert chain_sum(FIG1A, 3, 4) == 6

    def test_empty_chain_is_zero(self):
        assert chain_sum(FIG1A, 2, 0) == 0

    def test_complete_chain_equals_total(self):
        for start in range(5):
            assert chain_sum(FIG1A, start, 5) == sum(FIG1A)

    def test_start_is_taken_modulo_m(self):
        assert chain_sum(FIG1A, 7, 2) == chain_sum(FIG1A, 2, 2)

    def test_length_above_m_rejected(self):
        with pytest.raises(ValueError):
            chain_sum(FIG1A, 0, 6)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            chain_sum(FIG1A, 0, -1)

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            chain_sum([], 0, 0)


class TestPrefixSums:
    def test_prefix_sums_accumulate(self):
        assert prefix_sums(FIG1A, 3, 4) == [2, 3, 5, 6]

    def test_prefix_sums_empty(self):
        assert prefix_sums(FIG1A, 1, 0) == []


class TestChainDataclass:
    def test_indices_wrap(self):
        chain = Chain(3, 4, 5)
        assert chain.indices == (3, 4, 0, 1)

    def test_sum_matches_chain_sum(self):
        chain = Chain(3, 4, 5)
        assert chain.sum(FIG1A) == chain_sum(FIG1A, 3, 4)

    def test_prefix_and_suffix(self):
        chain = Chain(3, 4, 5)
        assert chain.prefix(2) == Chain(3, 2, 5)
        assert chain.suffix(3) == Chain(4, 3, 5)

    def test_complete_chain_flag(self):
        assert Chain(2, 5, 5).is_complete
        assert not Chain(2, 4, 5).is_complete

    def test_subchains_of_example_4(self):
        # c_4^2 is a subchain of c_3^4.
        chain = Chain(3, 4, 5)
        assert Chain(4, 2, 5) in set(chain.subchains())

    def test_subchain_count(self):
        chain = Chain(0, 4, 5)
        assert len(list(chain.subchains())) == 4 + 3 + 2 + 1

    def test_concatenate_contiguous(self):
        left = Chain(3, 2, 5)
        right = Chain(0, 2, 5)
        assert left.concatenate(right) == Chain(3, 4, 5)

    def test_concatenate_non_contiguous_rejected(self):
        with pytest.raises(ValueError):
            Chain(3, 2, 5).concatenate(Chain(1, 2, 5))

    def test_wrong_box_count_rejected(self):
        with pytest.raises(ValueError):
            Chain(0, 2, 5).sum([1, 2, 3])

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            Chain(0, 6, 5)

    def test_bad_prefix_length_rejected(self):
        with pytest.raises(ValueError):
            Chain(0, 3, 5).prefix(4)


class TestRing:
    def test_total(self):
        assert Ring(FIG1A).total == 8

    def test_chain_enumeration_counts(self):
        ring = Ring(FIG1A)
        assert len(list(ring.chains())) == 5 * 5
        assert len(list(ring.chains(length=2))) == 5

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            Ring([])

    def test_viability_queries_delegate(self):
        ring = Ring(FIG1A)
        assert ring.is_viable(1, 1, 1.0)
        assert not ring.is_viable(0, 2, 1.0)
        assert ring.is_prefix_viable(1, 1, 1.0)
        assert ring.is_suffix_viable(4, 1, 1.0)


class TestViability:
    def test_example_1_layouts_have_a_viable_box(self):
        # Both layouts in Example 1 pass the pigeonhole filter (some b_i <= 1).
        assert any(is_viable(FIG1A, i, 1, 1.0) for i in range(5))
        assert any(is_viable(FIG1B, i, 1, 1.0) for i in range(5))

    def test_example_1_layout_a_fails_length_two(self):
        # (2,1,2,2,1): all pairs of adjacent boxes sum to >= 3 > 2.
        assert not any(is_viable(FIG1A, i, 2, 1.0) for i in range(5))

    def test_example_6_layout_b_passes_basic_but_not_strong(self):
        # (2,0,3,1,2): c_0^2 sums to 2 <= 2 so the basic form passes at l=2...
        assert is_viable(FIG1B, 0, 2, 1.0)
        # ...but its 1-prefix is 2 > 1, so it is not prefix-viable.
        assert not is_prefix_viable(FIG1B, 0, 2, 1.0)
        assert not any(is_prefix_viable(FIG1B, i, 2, 1.0) for i in range(5))

    def test_suffix_viability(self):
        # For (2,1,2,2,1) with quota 1.6 (n=8): the complete chain is viable
        # and must have a prefix-viable suffix (Lemma 3) -- check directly.
        quota = 8 / 5
        assert is_viable(FIG1A, 0, 5, quota)
        assert any(is_suffix_viable(FIG1A, i, length, quota)
                   for length in range(1, 6) for i in range(5))

    def test_prefix_viable_lengths_counts(self):
        # From box 1 of (2,1,2,2,1) with quota 1.6: sums 1, 3, 5, 6, 8 vs
        # bounds 1.6, 3.2, 4.8, 6.4, 8.0 -> fails at length 3.
        assert prefix_viable_lengths(FIG1A, 1, 8 / 5) == 2

    def test_prefix_viable_lengths_zero_when_start_nonviable(self):
        assert prefix_viable_lengths(FIG1A, 0, 1.0) == 0

    def test_prefix_viable_lengths_respects_max_length(self):
        assert prefix_viable_lengths(FIG1A, 1, 10.0, max_length=3) == 3

    def test_first_prefix_violation(self):
        assert first_prefix_violation(FIG1A, 0, 1.0, 3) == 1
        assert first_prefix_violation(FIG1A, 1, 1.0, 1) is None
        assert first_prefix_violation(FIG1B, 0, 1.0, 2) == 1


@st.composite
def rings(draw, max_m=8, max_value=10):
    m = draw(st.integers(min_value=1, max_value=max_m))
    return draw(
        st.lists(
            st.integers(min_value=0, max_value=max_value), min_size=m, max_size=m
        )
    )


class TestChainProperties:
    @given(rings())
    def test_sum_of_all_chains_of_length_l_equals_l_times_total(self, boxes):
        m = len(boxes)
        for length in range(1, m + 1):
            total = sum(chain_sum(boxes, i, length) for i in range(m))
            assert total == length * sum(boxes)

    @given(rings())
    def test_prefix_viable_implies_viable(self, boxes):
        m = len(boxes)
        quota = sum(boxes) / m if m else 0.0
        for i in range(m):
            for length in range(1, m + 1):
                if is_prefix_viable(boxes, i, length, quota):
                    assert is_viable(boxes, i, length, quota)

    @given(rings(), st.integers(min_value=0, max_value=7))
    def test_concatenating_viable_chains_is_viable(self, boxes, start):
        # Lemma 2 on random splits of random chains.
        m = len(boxes)
        start %= m
        quota = max(boxes) / 2 + 1.0
        for l1 in range(1, m):
            for l2 in range(1, m - l1 + 1):
                left_viable = is_viable(boxes, start, l1, quota)
                right_viable = is_viable(boxes, start + l1, l2, quota)
                if left_viable and right_viable:
                    assert is_viable(boxes, start, l1 + l2, quota)

    @given(rings())
    def test_viable_chain_has_prefix_viable_suffix(self, boxes):
        # Lemma 3: every viable chain has a suffix that is prefix-viable.
        m = len(boxes)
        quota = sum(boxes) / m if sum(boxes) else 1.0
        for i in range(m):
            for length in range(1, m + 1):
                if not is_viable(boxes, i, length, quota):
                    continue
                found = False
                for suffix_len in range(1, length + 1):
                    suffix_start = (i + length - suffix_len) % m
                    if is_prefix_viable(boxes, suffix_start, suffix_len, quota):
                        found = True
                        break
                assert found
