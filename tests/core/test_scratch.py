"""Tests for the shared columnar scratch kernels."""

import threading

import numpy as np

from repro.common.scratch import (
    PerThread,
    Scratch,
    csr_gather_indices,
    grouped_counts,
    segment_sums,
)


def test_scratch_buffers_grow_and_are_reused():
    scratch = Scratch()
    first = scratch.take("a", 10, np.int64)
    assert first.size == 10
    second = scratch.take("a", 5, np.int64)
    assert second.base is first.base  # same backing buffer, no reallocation
    bigger = scratch.take("a", 1000, np.int64)
    assert bigger.size == 1000
    other_dtype = scratch.take("a", 10, np.uint64)
    assert other_dtype.dtype == np.uint64


def test_csr_gather_indices():
    starts = np.asarray([3, 10, 0], dtype=np.int64)
    ends = np.asarray([6, 10, 2], dtype=np.int64)
    expected = [3, 4, 5, 0, 1]
    assert csr_gather_indices(starts, ends).tolist() == expected
    assert csr_gather_indices(starts, ends, Scratch()).tolist() == expected
    empty = csr_gather_indices(np.asarray([4]), np.asarray([4]))
    assert empty.size == 0


def test_grouped_counts_matches_naive():
    rng = np.random.default_rng(5)
    objs = rng.integers(0, 40, size=300)
    cols = rng.integers(0, 5, size=300)
    touched, counts = grouped_counts(objs, cols, 5)
    assert touched.tolist() == sorted(set(objs.tolist()))
    for row, obj in enumerate(touched.tolist()):
        for col in range(5):
            expected = int(np.count_nonzero((objs == obj) & (cols == col)))
            assert counts[row, col] == expected
    empty_touched, empty_counts = grouped_counts(np.empty(0, np.int64), np.empty(0, np.int64), 3)
    assert empty_touched.size == 0 and empty_counts.shape == (0, 3)


def test_segment_sums_handles_empty_segments():
    flags = np.asarray([1, 0, 1, 1, 0], dtype=bool)
    boundaries = np.asarray([0, 2, 2, 5], dtype=np.int64)
    assert segment_sums(flags, boundaries).tolist() == [1, 0, 2]


def test_per_thread_gives_each_thread_its_own_instance():
    holder = PerThread(Scratch)
    main_instance = holder.get()
    assert holder.get() is main_instance
    seen = {}

    def worker():
        seen["other"] = holder.get()

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert seen["other"] is not main_instance
