"""Tests for the generic two-step candidate generation (Section 7)."""

import pytest

from repro.core.candidates import CandidateStats, ChainChecker, generate_candidates
from repro.core.thresholds import Direction, ThresholdAllocation, uniform_allocation


class TestChainChecker:
    def test_accepts_prefix_viable_chain(self):
        boxes = [0, 2, 0, 2, 1]
        checker = ChainChecker(uniform_allocation(5, 5), boxes.__getitem__, 2)
        assert checker.check_from(0)

    def test_rejects_non_prefix_viable_chain(self):
        boxes = [2, 0, 3, 1, 2]
        checker = ChainChecker(uniform_allocation(5, 5), boxes.__getitem__, 2)
        assert not checker.check_from(0)

    def test_box_values_are_cached(self):
        calls = []

        def box_value(i):
            calls.append(i)
            return 0

        checker = ChainChecker(uniform_allocation(5, 5), box_value, 3)
        assert checker.check_from(0)
        assert checker.check_from(1)
        # Boxes 0..3 evaluated once each even though chains overlap.
        assert sorted(calls) == [0, 1, 2, 3]
        assert checker.stats.box_evaluations == 4

    def test_corollary_2_skip(self):
        # Failing at prefix length 2 from start 0 rules out starts 0 and 1.
        boxes = [1, 5, 0, 0, 0]
        checker = ChainChecker(uniform_allocation(5, 5), boxes.__getitem__, 3)
        assert not checker.check_from(0)
        assert checker.should_skip(0)
        assert checker.should_skip(1)
        assert not checker.should_skip(2)

    def test_skip_is_sound(self):
        # Any start the checker skips must indeed not be prefix-viable at the
        # target length.
        boxes = [3, 1, 0, 4, 0, 1]
        allocation = uniform_allocation(6, 6)
        length = 3
        checker = ChainChecker(allocation, boxes.__getitem__, length)
        for start in range(6):
            if not checker.should_skip(start):
                checker.check_from(start)
        for start in range(6):
            if checker.should_skip(start):
                assert not allocation.is_prefix_viable(boxes, start, length)

    def test_is_candidate_over_multiple_starts(self):
        boxes = [2, 1, 0, 0, 2]
        checker = ChainChecker(uniform_allocation(5, 5), boxes.__getitem__, 2)
        assert checker.is_candidate([0, 1, 2])

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            ChainChecker(uniform_allocation(5, 5), lambda i: 0, 6)
        with pytest.raises(ValueError):
            ChainChecker(uniform_allocation(5, 5), lambda i: 0, 0)

    def test_geq_direction(self):
        boxes = [0, 3, 3, 0, 0]
        alloc = ThresholdAllocation([1, 1, 1, 1, 1], direction=Direction.GEQ)
        checker = ChainChecker(alloc, boxes.__getitem__, 2)
        assert checker.check_from(1)
        assert not checker.check_from(3)


class SmallProblem:
    """A miniature tau-selection problem over explicit box tables.

    Box values for each of four objects against the (implicit) query are the
    Example 2 / Example 5 values, so expected candidate sets are known from
    the paper.
    """

    BOXES = {
        "x1": [2, 1, 2, 2, 1],
        "x2": [0, 2, 0, 2, 1],
        "x3": [1, 2, 2, 1, 1],
        "x4": [2, 2, 2, 2, 2],
    }

    def probe(self, query):
        # First step: yield (object, box index) for every viable single box.
        for obj_id, boxes in self.BOXES.items():
            for i, value in enumerate(boxes):
                if value <= 1:
                    yield obj_id, i

    def box_value(self, obj_id, i):
        return self.BOXES[obj_id][i]


class TestGenerateCandidates:
    def setup_method(self):
        self.problem = SmallProblem()
        self.allocation = uniform_allocation(5, 5)

    def run(self, length, stats=None):
        return list(
            generate_candidates(
                query=None,
                probe_index=self.problem.probe,
                box_value=self.problem.box_value,
                allocation_for=lambda obj_id: self.allocation,
                length=length,
                stats=stats,
            )
        )

    def test_length_one_matches_pigeonhole_candidates(self):
        assert set(self.run(1)) == {"x1", "x2", "x3"}

    def test_length_two_matches_example_5(self):
        assert set(self.run(2)) == {"x2", "x3"}

    def test_length_five_matches_results(self):
        assert set(self.run(5)) == {"x2"}

    def test_candidates_are_yielded_once(self):
        candidates = self.run(1)
        assert len(candidates) == len(set(candidates))

    def test_monotone_in_chain_length(self):
        previous = set(self.run(1))
        for length in range(2, 6):
            current = set(self.run(length))
            assert current <= previous
            previous = current

    def test_stats_collected(self):
        stats = CandidateStats()
        self.run(2, stats=stats)
        assert stats.probed_boxes > 0
        assert stats.candidates == 2
        assert stats.box_evaluations > 0

    def test_length_is_clamped_to_object_ring_size(self):
        # Objects with fewer boxes than the requested chain length use l = m.
        small_alloc = uniform_allocation(2, 2)
        candidates = list(
            generate_candidates(
                query=None,
                probe_index=lambda q: [("tiny", 0)],
                box_value=lambda obj, i: [1, 1][i],
                allocation_for=lambda obj: small_alloc,
                length=5,
            )
        )
        assert candidates == ["tiny"]
