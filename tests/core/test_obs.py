"""Unit tests for the metrics registry and tracing primitives."""

from __future__ import annotations

import json

import pytest

from repro.common import obs
from repro.common.obs import (
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceBuffer,
    span,
    span_tree_coverage,
)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


def test_counter_is_monotone():
    registry = MetricsRegistry()
    counter = registry.counter("queries_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("queue_depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 6.0


def test_histogram_quantiles_interpolate():
    hist = Histogram(buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(6.5)
    # Median target is the 2nd of 4 samples; it falls in the (1, 2] bucket.
    assert 1.0 <= hist.quantile(0.5) <= 2.0
    # Everything past the last finite edge clamps to that edge.
    hist.observe(100.0)
    assert hist.quantile(1.0) == 4.0
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_histogram_merge_equals_single_observer():
    """The satellite invariant: sharded histograms merge losslessly."""
    samples = [0.0001 * (i % 37 + 1) + 0.001 * (i % 5) for i in range(400)]
    single = Histogram()
    for value in samples:
        single.observe(value)
    shards = [Histogram() for _ in range(3)]
    for i, value in enumerate(samples):
        shards[i % 3].observe(value)
    merged = Histogram()
    for shard in shards:
        merged.merge(shard)
    assert merged.counts == single.counts
    assert merged.count == single.count
    assert merged.sum == pytest.approx(single.sum)
    for q in (0.5, 0.95, 0.99):
        assert merged.quantile(q) == pytest.approx(single.quantile(q))


def test_histogram_merge_rejects_mismatched_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_get_or_create_identity():
    registry = MetricsRegistry()
    a = registry.counter("hits", "help", backend="sets")
    b = registry.counter("hits", backend="sets")
    other = registry.counter("hits", backend="graphs")
    assert a is b
    assert a is not other


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_registry_get_has_no_side_effect():
    registry = MetricsRegistry()
    assert registry.get("missing") is None
    assert registry.get("missing", backend="sets") is None
    assert "missing" not in registry.to_wire()["families"]
    registry.counter("present").inc()
    assert registry.get("present").value == 1.0
    assert registry.get("present", backend="sets") is None


def test_wire_round_trip_preserves_everything():
    registry = MetricsRegistry()
    registry.counter("c", "a counter", backend="sets").inc(3)
    registry.gauge("g", "a gauge").set(7)
    hist = registry.histogram("h", "a histogram", buckets=(0.5, 1.0))
    hist.observe(0.2)
    hist.observe(0.7)
    wire = registry.to_wire()
    assert json.loads(json.dumps(wire)) == wire  # JSON-safe
    restored = MetricsRegistry.merged([wire])
    assert restored.render_prometheus() == registry.render_prometheus()


def test_registry_merge_across_shards_matches_single():
    """Registries merged from worker wires answer like one registry."""
    single = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(2)]
    for i in range(100):
        value = 0.001 * (i % 10 + 1)
        single.counter("queries_total").inc()
        single.histogram("latency").observe(value)
        worker = workers[i % 2]
        worker.counter("queries_total").inc()
        worker.histogram("latency").observe(value)
    merged = MetricsRegistry.merged([w.to_wire() for w in workers])
    assert merged.get("queries_total").value == single.get("queries_total").value
    for q in (0.5, 0.95, 0.99):
        assert merged.get("latency").quantile(q) == pytest.approx(
            single.get("latency").quantile(q)
        )


def test_merge_wire_adds_gauges():
    # Per-worker sizes (delta records per shard) are additive.
    a = MetricsRegistry()
    a.gauge("delta_records").set(3)
    b = MetricsRegistry()
    b.gauge("delta_records").set(4)
    merged = MetricsRegistry.merged([a.to_wire(), b.to_wire()])
    assert merged.get("delta_records").value == 7.0


def test_prometheus_rendering_format():
    registry = MetricsRegistry()
    registry.counter("requests_total", "served requests", route="/search").inc(2)
    hist = registry.histogram("latency_seconds", buckets=(0.5, 1.0))
    hist.observe(0.2)
    hist.observe(0.7)
    hist.observe(5.0)
    text = registry.render_prometheus()
    lines = text.splitlines()
    assert "# HELP requests_total served requests" in lines
    assert "# TYPE requests_total counter" in lines
    assert 'requests_total{route="/search"} 2' in lines
    assert "# TYPE latency_seconds histogram" in lines
    # Buckets are cumulative and end with +Inf == count.
    assert 'latency_seconds_bucket{le="0.5"} 1' in lines
    assert 'latency_seconds_bucket{le="1"} 2' in lines
    assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
    assert "latency_seconds_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("c", 'he said "hi"\nback\\slash', path='a"b\\c\nd').inc()
    text = registry.render_prometheus()
    assert '# HELP c he said "hi"\\nback\\\\slash' in text
    assert 'c{path="a\\"b\\\\c\\nd"} 1' in text
    assert text.count("\n") == len(text.splitlines())


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


def test_span_without_trace_is_shared_noop():
    assert obs.current_trace() is None
    handle = span("anything")
    assert handle is span("something else")  # the shared no-op singleton
    with handle:
        pass  # must be usable as a context manager


def test_trace_builds_nested_span_tree():
    trace = Trace("abc123", name="engine")
    token = obs.activate(trace)
    try:
        with span("outer"):
            with span("inner"):
                pass
        with span("sibling"):
            pass
    finally:
        obs.deactivate(token)
    trace.finish()
    doc = trace.to_dict()
    assert doc["trace_id"] == "abc123"
    assert doc["name"] == "engine"
    assert [node["name"] for node in doc["spans"]] == ["outer", "sibling"]
    outer = doc["spans"][0]
    assert [child["name"] for child in outer["children"]] == ["inner"]
    inner = outer["children"][0]
    assert inner["start_ms"] >= outer["start_ms"]
    assert inner["duration_ms"] <= outer["duration_ms"] + 1e-6
    assert doc["duration_ms"] >= outer["duration_ms"]


def test_trace_embed_attaches_prerendered_subtree():
    trace = Trace(name="sharded")
    with span("fanout"):
        pass  # no ambient activation: span() is a no-op here
    node = trace.begin("fanout")
    trace.embed("shard[0]", 1.5, [{"name": "verify", "start_ms": 0.2, "duration_ms": 1.0, "children": []}], start_ms=0.1)
    trace.end(node)
    trace.finish()
    doc = trace.to_dict()
    fanout = doc["spans"][0]
    assert fanout["children"][0]["name"] == "shard[0]"
    assert fanout["children"][0]["duration_ms"] == 1.5
    assert fanout["children"][0]["children"][0]["name"] == "verify"


def test_span_tree_coverage():
    doc = {"duration_ms": 10.0, "spans": [{"duration_ms": 6.0}, {"duration_ms": 3.0}]}
    assert span_tree_coverage(doc) == pytest.approx(0.9)
    assert span_tree_coverage({"duration_ms": 0.0, "spans": []}) == 0.0


def test_trace_buffer_is_a_ring():
    buffer = TraceBuffer(capacity=3)
    for i in range(5):
        buffer.add({"trace_id": str(i)})
    assert len(buffer) == 3
    assert [doc["trace_id"] for doc in buffer.snapshot()] == ["4", "3", "2"]
    assert [doc["trace_id"] for doc in buffer.snapshot(2)] == ["4", "3"]


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


def test_slow_query_log_threshold_and_file(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(threshold_ms=5.0, path=str(path))
    assert not log.maybe_log(1.0, {"trace_id": "fast"})
    assert log.maybe_log(9.0, {"trace_id": "slow", "route": "/search"})
    assert len(log.recent) == 1
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["trace_id"] == "slow"
    assert entry["e2e_ms"] == 9.0


def test_slow_query_log_rejects_negative_threshold():
    with pytest.raises(ValueError):
        SlowQueryLog(threshold_ms=-1.0)
