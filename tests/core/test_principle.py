"""Tests of the pigeonhole and pigeonring principles (Theorems 1-3, Corollaries 1-2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.principle import (
    candidate_subset_holds,
    complete_chain_sum,
    passes_pigeonhole,
    passes_pigeonring,
    passes_pigeonring_basic,
    passes_pigeonring_strong,
    pigeonhole_bound,
    pigeonhole_witnesses,
    pigeonring_basic_witnesses,
    pigeonring_strong_witnesses,
    prefix_nonviable_witnesses,
    suffix_nonviable_witnesses,
    suffix_viable_witnesses,
)

FIG1A = (2, 1, 2, 2, 1)
FIG1B = (2, 0, 3, 1, 2)


class TestPigeonhole:
    def test_bound(self):
        assert pigeonhole_bound(5, 5) == 1.0
        assert pigeonhole_bound(7, 2) == 3.5

    def test_bound_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            pigeonhole_bound(5, 0)

    def test_example_1_both_layouts_pass(self):
        assert passes_pigeonhole(FIG1A, 5)
        assert passes_pigeonhole(FIG1B, 5)

    def test_witnesses_of_figure_1a(self):
        assert pigeonhole_witnesses(FIG1A, 5) == [1, 4]

    def test_theorem_1_guarantee(self):
        # Any layout with ||B||_1 <= n must pass.
        assert passes_pigeonhole([1, 1, 1, 1, 1], 5)
        assert passes_pigeonhole([0, 0, 5, 0, 0], 5)

    def test_all_boxes_above_quota_fails(self):
        assert not passes_pigeonhole([2, 2, 2, 2, 2], 5)


class TestPigeonringBasic:
    def test_example_3_layout_a_filtered_at_length_two(self):
        assert not passes_pigeonring_basic(FIG1A, 5, 2)

    def test_example_6_layout_b_passes_basic_at_length_two(self):
        assert passes_pigeonring_basic(FIG1B, 5, 2)
        assert pigeonring_basic_witnesses(FIG1B, 5, 2) == [0]

    def test_length_one_equals_pigeonhole(self):
        for layout in (FIG1A, FIG1B, (0, 1, 2, 3, 4), (3, 3, 3, 3, 3)):
            assert passes_pigeonring_basic(layout, 5, 1) == passes_pigeonhole(layout, 5)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            pigeonring_basic_witnesses(FIG1A, 5, 0)
        with pytest.raises(ValueError):
            pigeonring_basic_witnesses(FIG1A, 5, 6)


class TestPigeonringStrong:
    def test_example_6_layout_b_filtered_by_strong_form(self):
        assert not passes_pigeonring_strong(FIG1B, 5, 2)

    def test_both_example_layouts_filtered_at_length_two(self):
        assert not passes_pigeonring_strong(FIG1A, 5, 2)
        assert not passes_pigeonring_strong(FIG1B, 5, 2)

    def test_within_budget_layout_passes_all_lengths(self):
        layout = (1, 1, 1, 1, 1)
        for length in range(1, 6):
            assert passes_pigeonring_strong(layout, 5, length)

    def test_default_form_is_strong(self):
        assert passes_pigeonring(FIG1B, 5, 2, strong=False)
        assert not passes_pigeonring(FIG1B, 5, 2, strong=True)
        assert not passes_pigeonring(FIG1B, 5, 2)

    def test_strong_witnesses_are_subset_of_basic(self):
        for layout in (FIG1A, FIG1B, (1, 0, 2, 1, 1)):
            for length in range(1, 6):
                strong = set(pigeonring_strong_witnesses(layout, 5, length))
                basic = set(pigeonring_basic_witnesses(layout, 5, length))
                assert strong <= basic

    def test_complete_chain_candidates_are_results(self):
        # With l = m the strong filter passes exactly when ||B||_1 <= n.
        for layout in (FIG1A, FIG1B, (1, 1, 1, 1, 1), (0, 0, 5, 0, 0)):
            expected = sum(layout) <= 5
            assert passes_pigeonring_strong(layout, 5, 5) == expected


class TestCorollaries:
    def test_corollary_1_viable_case(self):
        layout = (1, 1, 1, 1, 1)
        for length in range(1, 6):
            assert pigeonring_strong_witnesses(layout, 5, length)
            assert suffix_viable_witnesses(layout, 5, length)

    def test_corollary_1_nonviable_case(self):
        # ||B||_1 = 8 > 5: prefix- and suffix-non-viable chains must exist.
        for length in range(1, 6):
            assert prefix_nonviable_witnesses(FIG1A, 5, length)
            assert suffix_nonviable_witnesses(FIG1A, 5, length)

    def test_nonviable_witness_values(self):
        # Box 0 of (2,1,2,2,1) has value 2 > 1, so it is prefix-non-viable at length 1.
        assert 0 in prefix_nonviable_witnesses(FIG1A, 5, 1)
        assert 1 not in prefix_nonviable_witnesses(FIG1A, 5, 1)


class TestHelperFunctions:
    def test_complete_chain_sum(self):
        assert complete_chain_sum(FIG1A) == 8

    def test_candidate_subset_holds_on_examples(self):
        assert candidate_subset_holds(FIG1A, 5)
        assert candidate_subset_holds(FIG1B, 5)


@st.composite
def layouts(draw, max_m=8, max_value=12):
    m = draw(st.integers(min_value=1, max_value=max_m))
    boxes = draw(
        st.lists(st.integers(min_value=0, max_value=max_value), min_size=m, max_size=m)
    )
    n = draw(st.integers(min_value=0, max_value=max_m * max_value))
    return boxes, n


class TestPrincipleProperties:
    @given(layouts())
    def test_theorem_2_and_3_guarantee(self, layout):
        """If ||B||_1 <= n both forms must pass for every chain length."""
        boxes, n = layout
        if sum(boxes) > n:
            return
        for length in range(1, len(boxes) + 1):
            assert passes_pigeonring_basic(boxes, n, length)
            assert passes_pigeonring_strong(boxes, n, length)

    @given(layouts())
    def test_lemma_1_and_4_monotonicity(self, layout):
        """Candidates shrink as the chain length grows (Lemmas 1 and 4)."""
        boxes, n = layout
        assert candidate_subset_holds(boxes, n)

    @given(layouts())
    def test_strong_form_subset_of_basic_form(self, layout):
        boxes, n = layout
        for length in range(1, len(boxes) + 1):
            if passes_pigeonring_strong(boxes, n, length):
                assert passes_pigeonring_basic(boxes, n, length)

    @given(layouts())
    def test_length_m_filter_equals_exact_test(self, layout):
        boxes, n = layout
        assert passes_pigeonring_strong(boxes, n, len(boxes)) == (sum(boxes) <= n)

    @given(layouts())
    def test_real_valued_thresholds(self, layout):
        """The principle holds when n is real-valued (not only integers)."""
        boxes, n = layout
        real_n = n + 0.5
        if sum(boxes) <= real_n:
            for length in range(1, len(boxes) + 1):
                assert passes_pigeonring_strong(boxes, real_n, length)
