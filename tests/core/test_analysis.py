"""Tests for the filtering-power analysis of Section 3.1 (Figure 2)."""

import math
import random

import pytest

from repro.core.analysis import (
    AnalysisPoint,
    BoxDistribution,
    FilterAnalysis,
    hamming_uniform_analysis,
)
from repro.core.principle import passes_pigeonring_strong


class TestBoxDistribution:
    def test_binomial_mass_sums_to_one(self):
        dist = BoxDistribution.binomial(16, 0.5)
        assert math.isclose(sum(dist.pmf.values()), 1.0, abs_tol=1e-12)

    def test_binomial_mean(self):
        dist = BoxDistribution.binomial(16, 0.5)
        assert math.isclose(dist.mean(), 8.0, abs_tol=1e-9)

    def test_cdf_and_tail_are_complementary(self):
        dist = BoxDistribution.binomial(8, 0.5)
        for value in range(-1, 10):
            assert math.isclose(dist.cdf(value) + dist.tail(value), 1.0, abs_tol=1e-12)

    def test_uniform_distribution(self):
        dist = BoxDistribution.uniform([0, 1, 2, 3])
        assert dist.probability(2) == 0.25
        assert dist.cdf(1) == 0.5

    def test_from_samples(self):
        dist = BoxDistribution.from_samples([1, 1, 2, 4])
        assert dist.probability(1) == 0.5
        assert dist.probability(4) == 0.25

    def test_from_pdf_normalises(self):
        dist = BoxDistribution.from_pdf(lambda x: 1.0, 0.0, 4.0, bins=64)
        assert math.isclose(sum(dist.pmf.values()), 1.0, abs_tol=1e-9)
        assert math.isclose(dist.mean(), 2.0, abs_tol=1e-6)

    def test_convolution_matches_binomial_identity(self):
        # Binomial(4) + Binomial(4) == Binomial(8).
        d4 = BoxDistribution.binomial(4, 0.5)
        d8 = BoxDistribution.binomial(8, 0.5)
        conv = d4.convolve(d4)
        for value in range(9):
            assert math.isclose(conv.probability(value), d8.probability(value), abs_tol=1e-12)

    def test_convolve_power(self):
        d2 = BoxDistribution.binomial(2, 0.5)
        d8 = d2.convolve_power(4)
        expected = BoxDistribution.binomial(8, 0.5)
        for value in range(9):
            assert math.isclose(d8.probability(value), expected.probability(value), abs_tol=1e-12)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            BoxDistribution({})
        with pytest.raises(ValueError):
            BoxDistribution({0: 0.4})
        with pytest.raises(ValueError):
            BoxDistribution.binomial(-1)
        with pytest.raises(ValueError):
            BoxDistribution.uniform([])
        with pytest.raises(ValueError):
            BoxDistribution.from_samples([])
        with pytest.raises(ValueError):
            BoxDistribution.binomial(4).convolve_power(0)


class TestFilterAnalysis:
    def test_word_probability_length_one(self):
        analysis = hamming_uniform_analysis(d=32, m=4, tau=16)
        # Quota is 4; Pr(b > 4) for Binomial(8, 1/2).
        expected = BoxDistribution.binomial(8, 0.5).tail(4.0)
        assert math.isclose(analysis.word_probability(1), expected, abs_tol=1e-12)

    def test_word_probability_monotone_decreasing(self):
        analysis = hamming_uniform_analysis(d=64, m=8, tau=32)
        probs = [analysis.word_probability(i) for i in range(1, 6)]
        assert all(b <= a + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_candidate_probability_decreases_with_chain_length(self):
        analysis = hamming_uniform_analysis(d=256, m=16, tau=96)
        probs = [analysis.candidate_probability(length) for length in range(1, 8)]
        assert all(b <= a + 1e-9 for a, b in zip(probs, probs[1:]))

    def test_candidate_probability_at_least_result_probability(self):
        analysis = hamming_uniform_analysis(d=128, m=8, tau=48)
        result = analysis.result_probability()
        for length in range(1, 9):
            assert analysis.candidate_probability(length) >= result - 1e-9

    def test_result_probability_matches_binomial_cdf(self):
        analysis = hamming_uniform_analysis(d=64, m=8, tau=24)
        expected = BoxDistribution.binomial(64, 0.5).cdf(24)
        assert math.isclose(analysis.result_probability(), expected, abs_tol=1e-12)

    def test_sweep_and_point(self):
        analysis = hamming_uniform_analysis(d=64, m=8, tau=24)
        points = analysis.sweep([1, 2, 3])
        assert [p.chain_length for p in points] == [1, 2, 3]
        assert all(isinstance(p, AnalysisPoint) for p in points)
        assert points[0].candidate_to_result_ratio >= points[1].candidate_to_result_ratio

    def test_figure_2_ratio_scale(self):
        # Figure 2: for tau = 96, m = 16, d = 256 the l = 1 ratio is orders of
        # magnitude above 1 and drops by orders of magnitude by l = 7.
        analysis = hamming_uniform_analysis(d=256, m=16, tau=96)
        first = analysis.point(1).candidate_to_result_ratio
        last = analysis.point(7).candidate_to_result_ratio
        assert first > 100.0
        assert last < first / 10.0

    def test_ratios_handle_zero_result_probability(self):
        point = AnalysisPoint(chain_length=1, candidate_probability=0.5, result_probability=0.0)
        assert point.candidate_to_result_ratio == math.inf
        assert point.false_positive_to_result_ratio == math.inf

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            hamming_uniform_analysis(d=100, m=16, tau=10)
        with pytest.raises(ValueError):
            FilterAnalysis(BoxDistribution.binomial(4), 0, 1)
        analysis = hamming_uniform_analysis(d=64, m=8, tau=24)
        with pytest.raises(ValueError):
            analysis.word_probability(0)
        with pytest.raises(ValueError):
            analysis.no_candidate_probability(0)
        with pytest.raises(ValueError):
            analysis.no_candidate_probability(9)

    def test_model_agrees_with_monte_carlo(self):
        """The analytical Pr(CAND_l) tracks a direct simulation of random rings."""
        rng = random.Random(7)
        m, tau, width = 8, 20, 6
        analysis = FilterAnalysis(BoxDistribution.binomial(width, 0.5), m, tau)
        trials = 4000
        for length in (1, 2, 3):
            hits = 0
            for _ in range(trials):
                boxes = [sum(rng.random() < 0.5 for _ in range(width)) for _ in range(m)]
                if passes_pigeonring_strong(boxes, tau, length):
                    hits += 1
            simulated = hits / trials
            predicted = analysis.candidate_probability(length)
            assert abs(simulated - predicted) < 0.05
