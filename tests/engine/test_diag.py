"""The diagnostics layer: profiler, exemplars, tail sampling, SLO monitors."""

from __future__ import annotations

import json
import re
import threading
import time

import pytest

from repro.common import diag, obs
from repro.engine import (
    EngineClient,
    Query,
    RequestError,
    SearchEngine,
    ServerConfig,
    ServerThread,
    ShardedEngine,
    build_shards,
)

# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name, role",
    [
        ("engine-batch_0", "executor"),
        ("engine-server", "batcher"),
        ("asyncio_0", "batcher"),
        ("auto-compact-sets", "compaction"),
        ("MainThread", "batcher"),
        ("ThreadPoolExecutor-3_0", "other"),
    ],
)
def test_thread_role_mapping(name, role):
    assert diag.thread_role(name) == role


def test_thread_role_main_override():
    assert diag.thread_role("MainThread", main_role="shard-worker") == "shard-worker"


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


def test_profiler_attributes_samples_to_roles():
    stop = threading.Event()
    worker = threading.Thread(target=_spin, args=(stop,), name="engine-batch_test")
    worker.start()
    try:
        with diag.SamplingProfiler(hz=200.0) as profiler:
            time.sleep(0.25)
            snapshot = profiler.snapshot()
    finally:
        stop.set()
        worker.join()
    assert snapshot["diag_wire_version"] == diag.PROFILE_WIRE_VERSION
    assert snapshot["ticks"] > 0
    roles = snapshot["roles"]
    assert "executor" in roles
    assert roles["executor"]["samples"] > 0
    # The busy loop's leaf frames dominate the executor role.
    folded = diag.render_folded(snapshot)
    assert any(line.startswith("executor;") for line in folded.splitlines())
    top = diag.top_self_frames(snapshot, top=5)
    assert top and top[0]["samples"] >= top[-1]["samples"]
    attribution = diag.role_attribution(snapshot)
    assert attribution
    assert abs(sum(attribution.values()) - 1.0) < 1e-9


def test_profiler_snapshot_mergeable_and_diffable():
    a = {
        "diag_wire_version": 1,
        "hz": 67.0,
        "running": True,
        "duration_s": 2.0,
        "ticks": 100,
        "roles": {"executor": {"samples": 3, "stacks": {"m:f;m:g": 3}}},
    }
    b = {
        "diag_wire_version": 1,
        "hz": 50.0,
        "running": False,
        "duration_s": 5.0,
        "ticks": 10,
        "roles": {
            "executor": {"samples": 2, "stacks": {"m:f;m:g": 1, "m:f;m:h": 1}},
            "shard-worker": {"samples": 4, "stacks": {"w:scan": 4}},
        },
    }
    merged = diag.merge_profiles([a, b, {}])
    assert merged["ticks"] == 110
    assert merged["duration_s"] == 5.0
    assert merged["roles"]["executor"]["stacks"]["m:f;m:g"] == 4
    assert merged["roles"]["shard-worker"]["samples"] == 4

    diff = diag.profile_diff(a, merged)
    assert diff["ticks"] == 10
    assert diff["roles"]["executor"]["stacks"] == {"m:f;m:g": 1, "m:f;m:h": 1}
    assert diff["roles"]["shard-worker"]["stacks"] == {"w:scan": 4}


def test_profiler_memory_is_bounded():
    profiler = diag.SamplingProfiler(hz=1.0, max_stacks=2)
    # Drive the aggregation path directly with synthetic distinct stacks.
    bucket = profiler._roles.setdefault("executor", {})
    for i in range(10):
        stack = f"m:frame_{i}"
        if stack in bucket or len(bucket) < profiler.max_stacks:
            bucket[stack] = bucket.get(stack, 0) + 1
        else:
            bucket[diag.OVERFLOW_STACK] = bucket.get(diag.OVERFLOW_STACK, 0) + 1
    assert len(bucket) <= profiler.max_stacks + 1
    assert bucket[diag.OVERFLOW_STACK] == 8


def _time_workload(repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        sum(i * i for i in range(60_000))
        best = min(best, time.perf_counter() - t0)
    return best


def test_profiler_overhead_is_small():
    """A 67 Hz sampler must not meaningfully slow the sampled workload."""
    ratio = float("inf")
    for _attempt in range(3):  # best-of retries absorb scheduler noise
        off = _time_workload(5)
        with diag.SamplingProfiler(hz=diag.DEFAULT_PROFILE_HZ):
            on = _time_workload(5)
        ratio = min(ratio, on / off if off else 1.0)
        if ratio <= 1.05:
            break
    assert ratio <= 1.05, f"profiler overhead {100 * (ratio - 1):.1f}% exceeds 5%"


# ---------------------------------------------------------------------------
# OpenMetrics exemplars
# ---------------------------------------------------------------------------

_EXEMPLAR_SUFFIX_RE = re.compile(
    r'^\{trace_id="[^"\\]+"\} [0-9.eE+-]+ [0-9.eE+-]+$'
)


def test_histogram_exemplar_grammar():
    registry = obs.MetricsRegistry()
    registry.histogram("engine_query_seconds", "q", backend="sets").observe(
        0.004, trace_id="deadbeef"
    )
    text = registry.render_prometheus()
    annotated = [line for line in text.splitlines() if " # {" in line]
    assert annotated, "no exemplar rendered"
    for line in annotated:
        sample, _sep, suffix = line.partition(" # ")
        assert _EXEMPLAR_SUFFIX_RE.match(suffix), suffix
        # The stripped sample must parse as an ordinary exposition line.
        stripped = obs.strip_exemplar(line)
        assert stripped == sample
        float(stripped.rpartition(" ")[2])
    # Exactly one bucket (the owning one) carries the exemplar.
    assert len([line for line in annotated if 'le="0.005"' in line]) == 1


def test_exemplars_survive_wire_merge_newest_wins():
    old = obs.MetricsRegistry()
    h = old.histogram("engine_query_seconds", "q", backend="sets")
    h.observe(0.004, trace_id="older")
    h.exemplars[h._bucket_index(0.004)] = ("older", 0.004, 100.0)

    new = obs.MetricsRegistry()
    h2 = new.histogram("engine_query_seconds", "q", backend="sets")
    h2.observe(0.0045, trace_id="newer")
    h2.exemplars[h2._bucket_index(0.0045)] = ("newer", 0.0045, 200.0)

    merged = obs.MetricsRegistry.merged([old.to_wire(), new.to_wire()])
    hist = merged.get("engine_query_seconds", backend="sets")
    assert hist.count == 2
    kept = [ex for ex in hist.exemplars if ex is not None]
    assert kept == [("newer", 0.0045, 200.0)]
    # A second round trip (parent re-exporting the merged dump) is lossless.
    again = obs.MetricsRegistry.merged([merged.to_wire()])
    assert again.get("engine_query_seconds", backend="sets").exemplars == hist.exemplars


def test_untraced_histograms_carry_no_exemplars():
    registry = obs.MetricsRegistry()
    registry.histogram("engine_query_seconds", "q").observe(0.004)
    assert registry.get("engine_query_seconds").exemplars is None
    assert " # {" not in registry.render_prometheus()
    assert "exemplars" not in json.dumps(registry.to_wire())


# ---------------------------------------------------------------------------
# Tail-based trace sampling
# ---------------------------------------------------------------------------


def test_tail_sampler_keeps_all_slow_and_errors_under_tight_budget():
    sampler = diag.TailSampler(capacity=256, budget=0.01, slow_ms=50.0)
    for i in range(1000):
        sampler.add({"trace_id": f"fast-{i}"}, e2e_ms=1.0)
    for i in range(20):
        sampler.add({"trace_id": f"slow-{i}"}, e2e_ms=80.0)
    for i in range(5):
        sampler.add({"trace_id": f"err-{i}"}, error=True)
    stats = sampler.stats()
    assert stats["kept_slow"] == 20
    assert stats["kept_error"] == 5
    assert stats["kept_sampled"] == 10  # 1% of 1000, deterministic stride
    assert stats["offered"] == 1025
    kept_ids = {doc["trace_id"] for doc in sampler.snapshot()}
    assert all(f"slow-{i}" in kept_ids for i in range(20))
    assert all(f"err-{i}" in kept_ids for i in range(5))


def test_tail_sampler_full_budget_matches_trace_buffer():
    sampler = diag.TailSampler(capacity=4, budget=1.0)
    for i in range(6):
        sampler.add({"trace_id": f"t{i}"})
    assert len(sampler) == 4
    assert [doc["trace_id"] for doc in sampler.snapshot()] == ["t5", "t4", "t3", "t2"]
    assert [doc["trace_id"] for doc in sampler.snapshot(2)] == ["t5", "t4"]


def test_tail_sampler_interleaves_newest_first():
    sampler = diag.TailSampler(capacity=8, budget=1.0, slow_ms=10.0)
    sampler.add({"trace_id": "a"}, e2e_ms=1.0)
    sampler.add({"trace_id": "b"}, e2e_ms=99.0)  # slow -> tail ring
    sampler.add({"trace_id": "c"}, e2e_ms=1.0)
    assert [doc["trace_id"] for doc in sampler.snapshot()] == ["c", "b", "a"]


def test_tail_sampler_infers_latency_from_duration():
    sampler = diag.TailSampler(capacity=8, budget=0.0, slow_ms=10.0)
    assert sampler.add({"trace_id": "s", "duration_ms": 25.0})
    assert not sampler.add({"trace_id": "f", "duration_ms": 1.0})
    assert [doc["trace_id"] for doc in sampler.snapshot()] == ["s"]


def test_tail_sampler_rejects_bad_budget():
    with pytest.raises(ValueError, match="budget"):
        diag.TailSampler(budget=1.5)


# ---------------------------------------------------------------------------
# Span -> metrics bridge
# ---------------------------------------------------------------------------

_TRACE_DOC = {
    "trace_id": "abc",
    "name": "request",
    "duration_ms": 10.0,
    "spans": [
        {"name": "coalesce_wait", "start_ms": 0.0, "duration_ms": 2.0, "children": []},
        {
            "name": "batch_exec",
            "start_ms": 2.0,
            "duration_ms": 8.0,
            "children": [
                {"name": "verify", "start_ms": 3.0, "duration_ms": 5.0, "children": []}
            ],
        },
    ],
}


def test_span_self_times_subtract_children():
    self_times = diag.span_self_times(_TRACE_DOC)
    assert self_times == {"coalesce_wait": 2.0, "batch_exec": 3.0, "verify": 5.0}


def test_span_self_times_clamp_negative():
    doc = {
        "spans": [
            {
                "name": "parent",
                "duration_ms": 1.0,
                "children": [{"name": "child", "duration_ms": 5.0, "children": []}],
            }
        ]
    }
    assert diag.span_self_times(doc) == {"parent": 0.0, "child": 5.0}


def test_span_metrics_bridge_records_counters():
    registry = obs.MetricsRegistry()
    bridge = diag.SpanMetricsBridge(registry)
    bridge.record(_TRACE_DOC, backend="sets")
    bridge.record(_TRACE_DOC, backend="sets")
    counter = registry.get(bridge.METRIC, backend="sets", stage="batch_exec")
    assert counter.value == pytest.approx(2 * 3.0 / 1000.0)
    assert registry.get(bridge.FOLDS, backend="sets").value == 2


# ---------------------------------------------------------------------------
# SLO burn-rate monitors
# ---------------------------------------------------------------------------


def test_slo_burn_rate_math():
    slo = diag.SloMonitor(objective=0.99, latency_ms=100.0)
    now = 10_000.0
    for _ in range(90):
        slo.observe(10.0, now=now)
    for _ in range(10):
        slo.observe(500.0, now=now)  # over the latency target -> bad
    # 10% bad over a 1% budget -> burn rate 10.
    assert slo.burn_rate(300.0, now=now) == pytest.approx(10.0)
    status = slo.status(now=now)
    assert status["windows"]["fast"]["burn_rate"] == pytest.approx(10.0)
    assert status["windows"]["fast"]["bad"] == 10
    # Fast window burns at 10 < 14.4: not breaching yet.
    assert not status["breaching"]


def test_slo_breaching_requires_both_windows():
    slo = diag.SloMonitor(objective=0.99, latency_ms=100.0)
    now = 10_000.0
    for _ in range(80):
        slo.observe(10.0, now=now)
    for _ in range(20):
        slo.observe(10.0, error=True, now=now)
    status = slo.status(now=now)
    # 20% bad -> burn 20 exceeds both 14.4 (fast) and 6.0 (slow).
    assert status["breaching"]
    # An hour later the fast window is clean but the slow window still
    # remembers the bad minute: no longer breaching (the blip ended).
    later = now + 2000.0
    for _ in range(50):
        slo.observe(10.0, now=later)
    status = slo.status(now=later)
    assert status["windows"]["fast"]["burn_rate"] == 0.0
    assert status["windows"]["slow"]["burn_rate"] > 0.0
    assert not status["breaching"]


def test_slo_memory_is_bounded():
    slo = diag.SloMonitor(objective=0.99, bucket_s=10.0, slow_window_s=3600.0)
    for i in range(100_000):
        slo.observe(1.0, now=float(i))
    assert len(slo._buckets) <= 3600 / 10 + 2


def test_health_scoreboard_grades_shards():
    board = diag.HealthScoreboard(num_shards=3, window_s=60.0)
    now = 1000.0
    board.observe(0, latency_s=0.01, now=now)
    board.observe(1, latency_s=0.02, now=now)
    board.observe(1, error=True, now=now)
    board.observe(1, latency_s=0.01, now=now)
    report = board.report(now=now)
    assert [entry["status"] for entry in report] == ["ok", "degraded", "idle"]
    assert report[0]["max_latency_ms"] == pytest.approx(10.0)
    # Half the recent requests failing grades the shard as failing.
    board.observe(2, error=True, now=now)
    board.observe(2, latency_s=0.01, now=now)
    assert board.report(now=now)[2]["status"] == "failing"
    # Events age out of the window entirely.
    assert [e["status"] for e in board.report(now=now + 120.0)] == ["idle"] * 3


# ---------------------------------------------------------------------------
# Slow-query log rotation
# ---------------------------------------------------------------------------


def test_slow_query_log_rotates_and_bounds_disk(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = obs.SlowQueryLog(0.0, str(path), max_bytes=512, keep_files=2)
    entry = {"trace_id": "x" * 32, "route": "/search", "spans": []}
    for i in range(100):
        assert log.maybe_log(5.0, {**entry, "i": i})
    assert log.rotations >= 2
    assert path.exists() or (tmp_path / "slow.jsonl.1").exists()
    assert (tmp_path / "slow.jsonl.1").exists()
    assert (tmp_path / "slow.jsonl.2").exists()
    assert not (tmp_path / "slow.jsonl.3").exists()
    # Every retained file stays near the rotation bound.
    for candidate in tmp_path.iterdir():
        assert candidate.stat().st_size < 512 + 256
    # Retained lines are intact JSON (rotation never splits a line).
    kept = (tmp_path / "slow.jsonl.1").read_text(encoding="utf-8").splitlines()
    assert kept and all(json.loads(line)["e2e_ms"] == 5.0 for line in kept)


def test_slow_query_log_rejects_bad_rotation_config():
    with pytest.raises(ValueError, match="max_bytes"):
        obs.SlowQueryLog(1.0, "x.log", max_bytes=0)
    with pytest.raises(ValueError, match="keep_files"):
        obs.SlowQueryLog(1.0, "x.log", keep_files=0)


# ---------------------------------------------------------------------------
# Consistent /metrics scrapes under concurrent mutation
# ---------------------------------------------------------------------------


def test_metrics_scrape_is_consistent_under_concurrent_mutation(datasets):
    engine = SearchEngine(cache_size=0)
    engine.add_dataset("sets", datasets["sets"])
    stop = threading.Event()
    failures: list[str] = []

    def writer() -> None:
        while not stop.is_set():
            engine.mutate(
                "sets",
                [
                    {"op": "upsert", "record": [1, 2, 3]},
                    {"op": "upsert", "record": [4, 5, 6]},
                ],
            )

    def total(wire: dict, name: str) -> float:
        family = wire.get("families", {}).get(name)
        if family is None:
            return 0.0
        return sum(entry["value"] for entry in family["series"])

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        deadline = time.perf_counter() + 1.0
        scrapes = 0
        while time.perf_counter() < deadline:
            wire = engine.metrics_wire()
            ops = total(wire, "engine_mutation_ops_total")
            batches = total(wire, "engine_mutation_batches_total")
            if ops != 2 * batches:
                failures.append(f"torn scrape: ops={ops} batches={batches}")
                break
            scrapes += 1
    finally:
        stop.set()
        thread.join()
    assert not failures, failures[0]
    assert scrapes > 10


# ---------------------------------------------------------------------------
# Server endpoints: /debug/profile, /debug/slo, exemplars end to end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def diag_served(datasets):
    """A server with the full diagnostics stack armed."""
    engine = SearchEngine(cache_size=0)
    for name, dataset in datasets.items():
        engine.add_dataset(name, dataset)
    config = ServerConfig(
        max_wait_ms=1.0,
        trace=True,
        profile_hz=97.0,
        slo_latency_ms=5000.0,
        trace_budget=1.0,
    )
    with ServerThread(engine, config) as handle:
        yield handle


def test_metrics_exemplar_resolves_to_debug_trace(diag_served, query_payloads, taus):
    trace_id = "feedfacecafe0001"
    with EngineClient(diag_served.url) as client:
        client.search("sets", query_payloads["sets"][0], tau=taus["sets"], trace_id=trace_id)
        text = client.metrics()
        annotated = [
            line
            for line in text.splitlines()
            if line.startswith("engine_query_seconds_bucket") and " # {" in line
        ]
        assert annotated, "no exemplar on the query-latency histogram"
        exemplar_ids = {
            re.search(r'# \{trace_id="([^"]+)"\}', line).group(1) for line in annotated
        }
        assert trace_id in exemplar_ids
        known = {doc.get("trace_id") for doc in client.traces()["traces"]}
        assert trace_id in known


def test_debug_profile_returns_folded_stacks(diag_served, query_payloads, taus):
    with EngineClient(diag_served.url) as client:
        for payload in query_payloads["sets"]:
            client.search("sets", payload, tau=taus["sets"])
        payload = client.profile(seconds=0.5)
    profile = payload["profile"]
    assert profile["roles"], "continuous profiler produced no samples"
    assert payload["folded"]
    assert payload["top"]
    assert payload["attribution"]
    total_samples = sum(role["samples"] for role in profile["roles"].values())
    assert total_samples > 0
    # Every folded line parses as "role;stack count".
    for line in payload["folded"]:
        head, _sep, count = line.rpartition(" ")
        assert ";" in head and int(count) > 0


def test_debug_profile_lifetime_snapshot(diag_served):
    with EngineClient(diag_served.url) as client:
        payload = client.profile()
    assert payload["profile"]["running"]
    assert payload["profile"]["ticks"] > 0


@pytest.mark.parametrize("seconds", ["0", "-1", "31", "nan", "bogus"])
def test_debug_profile_rejects_bad_seconds(diag_served, seconds):
    with EngineClient(diag_served.url) as client:
        with pytest.raises(RequestError) as excinfo:
            client._request("GET", f"/debug/profile?seconds={seconds}")
        assert excinfo.value.status == 400


def test_debug_slo_and_healthz_report_burn_rates(diag_served, query_payloads, taus):
    with EngineClient(diag_served.url) as client:
        client.search("sets", query_payloads["sets"][0], tau=taus["sets"])
        payload = client.slo()
        health = client.healthz()
    slo = payload["slo"]
    assert slo["objective"] == 0.99
    assert set(slo["windows"]) == {"fast", "slow"}
    assert slo["windows"]["fast"]["requests"] > 0
    assert not slo["breaching"]
    assert payload["trace_sampling"]["offered"] > 0
    assert health["slo"]["breaching"] is False
    assert "fast_burn_rate" in health["slo"]


def test_debug_traces_reports_sampling_stats(diag_served, query_payloads, taus):
    with EngineClient(diag_served.url) as client:
        client.search("sets", query_payloads["sets"][0], tau=taus["sets"])
        payload = client.traces()
    sampling = payload["sampling"]
    assert sampling["budget"] == 1.0
    assert sampling["offered"] >= sampling["kept_sampled"]


# ---------------------------------------------------------------------------
# Sharded engine: worker profilers and the health scoreboard
# ---------------------------------------------------------------------------


def test_sharded_engine_profiles_workers_and_reports_health(tmp_path, datasets):
    directory = str(tmp_path / "shards")
    build_shards("sets", datasets["sets"], directory, 2)
    with ShardedEngine(directory) as engine:
        engine.start_profiling(hz=150.0)
        for step in range(4):
            engine.search(Query(backend="sets", payload=[1, 2, 3 + step], tau=0.5))
        time.sleep(0.3)  # let the worker samplers tick
        wires = engine.profile_wire()
        assert len(wires) == 2
        merged = diag.merge_profiles(wires)
        assert merged["ticks"] > 0
        assert "shard-worker" in merged["roles"]
        health = engine.shard_health()
        assert [entry["shard"] for entry in health] == [0, 1]
        assert all(entry["status"] == "ok" for entry in health)
        assert all(entry["requests"] >= 4 for entry in health)
        engine.stop_profiling()
