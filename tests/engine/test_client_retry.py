"""429/503 handling must survive missing or malformed ``Retry-After`` headers."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.engine.client import (
    EngineClient,
    ServerBusyError,
    ServerUnavailableError,
    parse_retry_after,
)


@pytest.mark.parametrize(
    ("value", "expected"),
    [
        (None, None),
        ("", None),
        ("0", 0.0),
        ("1.5", 1.5),
        ("120", 120.0),
        ("soon", None),  # free-text garbage
        ("Wed, 21 Oct 2026 07:28:00 GMT", None),  # the HTTP-date form
        ("-3", None),  # negative hints are meaningless
        ("nan", None),
    ],
)
def test_parse_retry_after(value, expected):
    parsed = parse_retry_after(value)
    if expected is None:
        assert parsed is None
    else:
        assert parsed == expected


def _canned_server(response: bytes) -> tuple[str, int, threading.Thread]:
    """One-shot TCP server answering any request with a fixed response."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def serve() -> None:
        connection, _addr = listener.accept()
        connection.recv(65536)
        connection.sendall(response)
        connection.close()
        listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return host, port, thread


def _respond(status_line: str, headers: list[str], body: bytes) -> bytes:
    lines = [status_line, f"Content-Length: {len(body)}", "Connection: close", *headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def test_busy_error_with_malformed_retry_after_degrades_to_none():
    body = b'{"error": "too busy"}'
    host, port, thread = _canned_server(
        _respond("HTTP/1.1 429 Too Many Requests", ["Retry-After: soon"], body)
    )
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerBusyError) as excinfo:
        client.search("strings", "x", tau=1)
    assert excinfo.value.retry_after is None
    thread.join(timeout=5)


def test_unavailable_error_with_missing_retry_after_degrades_to_none():
    body = b'{"error": "draining"}'
    host, port, thread = _canned_server(
        _respond("HTTP/1.1 503 Service Unavailable", [], body)
    )
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerUnavailableError) as excinfo:
        client.search("strings", "x", tau=1)
    assert excinfo.value.retry_after is None
    thread.join(timeout=5)


def test_busy_error_with_numeric_retry_after_still_parses():
    body = b'{"error": "too busy"}'
    host, port, thread = _canned_server(
        _respond("HTTP/1.1 429 Too Many Requests", ["Retry-After: 2.5"], body)
    )
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerBusyError) as excinfo:
        client.search("strings", "x", tau=1)
    assert excinfo.value.retry_after == 2.5
    thread.join(timeout=5)
