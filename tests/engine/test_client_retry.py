"""429/503 handling must survive missing or malformed ``Retry-After`` headers."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.engine.client import (
    EngineClient,
    ServerBusyError,
    ServerUnavailableError,
    parse_retry_after,
)


@pytest.mark.parametrize(
    ("value", "expected"),
    [
        (None, None),
        ("", None),
        ("0", 0.0),
        ("1.5", 1.5),
        ("120", 120.0),
        ("soon", None),  # free-text garbage
        ("Wed, 21 Oct 2026 07:28:00 GMT", None),  # the HTTP-date form
        ("-3", None),  # negative hints are meaningless
        ("nan", None),
    ],
)
def test_parse_retry_after(value, expected):
    parsed = parse_retry_after(value)
    if expected is None:
        assert parsed is None
    else:
        assert parsed == expected


def _canned_server(response: bytes) -> tuple[str, int, threading.Thread]:
    """One-shot TCP server answering any request with a fixed response."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def serve() -> None:
        connection, _addr = listener.accept()
        connection.recv(65536)
        connection.sendall(response)
        connection.close()
        listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return host, port, thread


def _respond(status_line: str, headers: list[str], body: bytes) -> bytes:
    lines = [status_line, f"Content-Length: {len(body)}", "Connection: close", *headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def test_busy_error_with_malformed_retry_after_degrades_to_none():
    body = b'{"error": "too busy"}'
    host, port, thread = _canned_server(
        _respond("HTTP/1.1 429 Too Many Requests", ["Retry-After: soon"], body)
    )
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerBusyError) as excinfo:
        client.search("strings", "x", tau=1)
    assert excinfo.value.retry_after is None
    thread.join(timeout=5)


def test_unavailable_error_with_missing_retry_after_degrades_to_none():
    body = b'{"error": "draining"}'
    host, port, thread = _canned_server(
        _respond("HTTP/1.1 503 Service Unavailable", [], body)
    )
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerUnavailableError) as excinfo:
        client.search("strings", "x", tau=1)
    assert excinfo.value.retry_after is None
    thread.join(timeout=5)


def test_busy_error_with_numeric_retry_after_still_parses():
    body = b'{"error": "too busy"}'
    host, port, thread = _canned_server(
        _respond("HTTP/1.1 429 Too Many Requests", ["Retry-After: 2.5"], body)
    )
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerBusyError) as excinfo:
        client.search("strings", "x", tau=1)
    assert excinfo.value.retry_after == 2.5
    thread.join(timeout=5)


# ---------------------------------------------------------------------------
# Automatic retry: a flaky server that fails N times then answers
# ---------------------------------------------------------------------------


def _flaky_server(responses: list[bytes | None]) -> tuple[str, int, threading.Thread]:
    """Serve one canned response per accepted connection, in order.

    ``None`` slams the connection shut without answering (a connection
    reset from the client's point of view).  Each response closes the
    connection, so every attempt reconnects -- the worst case for the
    retry loop.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    host, port = listener.getsockname()

    def serve() -> None:
        for response in responses:
            connection, _addr = listener.accept()
            if response is None:
                connection.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, b"\x01\x00\x00\x00\x00\x00\x00\x00"
                )
                connection.close()
                continue
            connection.recv(65536)
            connection.sendall(response)
            connection.close()
        listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return host, port, thread


_OK_HEALTH = _respond("HTTP/1.1 200 OK", [], b'{"status": "ok"}')
_BUSY = _respond("HTTP/1.1 429 Too Many Requests", ["Retry-After: 0"], b'{"error": "busy"}')
_DOWN = _respond("HTTP/1.1 503 Service Unavailable", ["Retry-After: 0"], b'{"error": "failover"}')
_BAD = _respond("HTTP/1.1 400 Bad Request", [], b'{"error": "nope"}')


def test_retry_budget_absorbs_busy_then_succeeds():
    host, port, thread = _flaky_server([_BUSY, _BUSY, _OK_HEALTH])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0, retries=3, backoff_base=0.001)
    assert client.healthz()["status"] == "ok"
    assert client.retries_used == 2
    thread.join(timeout=5)


def test_retry_budget_absorbs_unavailable_then_succeeds():
    host, port, thread = _flaky_server([_DOWN, _OK_HEALTH])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0, retries=1, backoff_base=0.001)
    assert client.healthz()["status"] == "ok"
    thread.join(timeout=5)


def test_retry_budget_absorbs_connection_reset():
    host, port, thread = _flaky_server([None, None, _OK_HEALTH])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0, retries=2, backoff_base=0.001)
    assert client.healthz()["status"] == "ok"
    assert client.retries_used == 2
    thread.join(timeout=5)


def test_exhausted_retry_budget_raises_the_last_error():
    host, port, thread = _flaky_server([_BUSY, _BUSY, _BUSY])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0, retries=2, backoff_base=0.001)
    with pytest.raises(ServerBusyError):
        client.healthz()
    thread.join(timeout=5)


def test_zero_retries_keeps_fail_fast_behaviour():
    host, port, thread = _flaky_server([_DOWN])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServerUnavailableError):
        client.healthz()
    assert client.retries_used == 0
    thread.join(timeout=5)


def test_permanent_errors_are_never_retried():
    # One canned 400: a second attempt would hang on accept(), so passing
    # fast proves no retry was attempted.
    host, port, thread = _flaky_server([_BAD])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0, retries=5, backoff_base=0.001)
    with pytest.raises(Exception, match="HTTP 400"):
        client.healthz()
    assert client.retries_used == 0
    thread.join(timeout=5)


def test_retry_budget_is_per_call():
    host, port, thread = _flaky_server([_BUSY, _OK_HEALTH, _BUSY, _OK_HEALTH])
    client = EngineClient(f"http://{host}:{port}", timeout=5.0, retries=1, backoff_base=0.001)
    assert client.healthz()["status"] == "ok"
    assert client.healthz()["status"] == "ok"  # the budget reset between calls
    assert client.retries_used == 2
    thread.join(timeout=5)


def test_retry_delay_honours_retry_after_as_a_floor():
    client = EngineClient("http://127.0.0.1:1", retries=1, backoff_base=0.001, backoff_cap=0.5)
    for attempt in range(4):
        assert client._retry_delay(attempt, 0.2) >= 0.2
        assert client._retry_delay(attempt, None) <= 0.5
    # A huge hint is capped so a hostile server cannot stall the client.
    assert client._retry_delay(0, 3600.0) == 0.5


def test_client_rejects_bad_retry_configuration():
    with pytest.raises(ValueError, match="retries"):
        EngineClient("http://127.0.0.1:1", retries=-1)
    with pytest.raises(ValueError, match="backoff"):
        EngineClient("http://127.0.0.1:1", backoff_base=0.0)
