"""Shared fixtures: one small engine serving all four domains."""

from __future__ import annotations

import pytest

from repro.datasets.binary import clustered_binary_workload
from repro.datasets.molecules import aids_like
from repro.datasets.text import name_workload
from repro.datasets.tokens import zipfian_set_workload
from repro.engine import SearchEngine
from repro.graphs import GraphDataset
from repro.hamming import BinaryVectorDataset
from repro.sets import SetDataset
from repro.strings import StringDataset


@pytest.fixture(scope="session")
def workloads():
    return {
        "hamming": clustered_binary_workload(200, 64, 6, seed=5),
        "sets": zipfian_set_workload(150, 8, seed=6),
        "strings": name_workload(120, 6, seed=7),
        "graphs": aids_like(num_graphs=25, num_queries=3, seed=8),
    }


@pytest.fixture(scope="session")
def datasets(workloads):
    return {
        "hamming": BinaryVectorDataset(workloads["hamming"].vectors, num_parts=4),
        "sets": SetDataset(workloads["sets"].records, num_classes=4),
        "strings": StringDataset(workloads["strings"].records, kappa=2),
        "graphs": GraphDataset(workloads["graphs"].graphs),
    }


@pytest.fixture()
def engine(datasets):
    engine = SearchEngine(cache_size=64)
    for name, dataset in datasets.items():
        engine.add_dataset(name, dataset)
    yield engine
    engine.close()


DEFAULT_TAUS = {"hamming": 16, "sets": 0.6, "strings": 2, "graphs": 3}


@pytest.fixture(scope="session")
def taus():
    return dict(DEFAULT_TAUS)


@pytest.fixture(scope="session")
def query_payloads(workloads):
    return {
        "hamming": [row for row in workloads["hamming"].queries],
        "sets": list(workloads["sets"].queries),
        "strings": list(workloads["strings"].queries),
        "graphs": list(workloads["graphs"].queries),
    }
