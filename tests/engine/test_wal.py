"""Write-ahead log durability: acknowledged writes survive any crash.

Two layers under test.  The WAL file itself (`repro.engine.wal`): appends
are length-prefixed and checksummed, recovery reads the longest valid
prefix, and every torn or corrupted tail is discarded -- never a record
after it.  And the engines above it: after a crash (simulated by reopening
the checkpointed container and replaying the log, or by killing a shard
worker outright), threshold and top-k answers are byte-identical to an
index rebuilt from scratch over exactly the acknowledged mutations -- per
domain, plain and 2-shard.
"""

from __future__ import annotations

import os
import random
import signal

import pytest

from repro.engine import Query, SearchEngine
from repro.engine.sharding import ShardedEngine, ShardWorkerError, build_shards
from repro.engine.wal import (
    AutoCompactionPolicy,
    WalCorruptionError,
    WriteAheadLog,
    read_wal,
    wal_summary,
)
from tests.engine.test_mutation import (
    DOMAINS,
    _assert_matches_rebuild,
    _initial_records,
    _record_pool,
    _seed_topk_neighbours,
)


# ---------------------------------------------------------------------------
# WAL file format: append, recover, truncate
# ---------------------------------------------------------------------------


def _ops(*ids: int) -> list[dict]:
    return [{"op": "upsert", "id": obj_id, "record": [obj_id]} for obj_id in ids]


def test_wal_appends_and_rereads_batches(tmp_path):
    path = str(tmp_path / "a.wal")
    wal = WriteAheadLog(path)
    assert wal.append("sets", _ops(0)) == 1
    assert wal.append("sets", _ops(1, 2)) == 2
    wal.close()
    reopened = WriteAheadLog(path)
    assert reopened.tail_discarded is None
    batches = reopened.batches()
    assert [batch.seq for batch in batches] == [1, 2]
    assert list(batches[1].ops) == _ops(1, 2)
    # Sequence numbering resumes after the last valid batch.
    assert reopened.append("sets", _ops(3)) == 3
    reopened.close()


def test_wal_discards_torn_final_record(tmp_path):
    path = str(tmp_path / "torn.wal")
    wal = WriteAheadLog(path)
    wal.append("sets", _ops(0))
    wal.append("sets", _ops(1))
    wal.close()
    # Crash mid-write: the last record loses its final bytes.
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 3)
    batches, valid_end, size, tail_error = read_wal(path)
    assert [batch.seq for batch in batches] == [1]
    assert "torn" in tail_error
    assert valid_end < size
    recovered = WriteAheadLog(path)
    assert recovered.last_seq == 1
    assert "torn" in recovered.tail_discarded
    # The invalid suffix is gone from disk and appends continue cleanly.
    assert os.path.getsize(path) == valid_end
    assert recovered.append("sets", _ops(9)) == 2
    recovered.close()
    with WriteAheadLog(path) as replay:
        assert [batch.seq for batch in replay.batches()] == [1, 2]


def test_wal_torn_header_is_discarded_too(tmp_path):
    path = str(tmp_path / "header.wal")
    wal = WriteAheadLog(path)
    wal.append("sets", _ops(0))
    end = os.path.getsize(path)
    wal.close()
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        handle.write(b"\x09\x00")  # 2 of the 8 header bytes made it to disk
    batches, valid_end, _size, tail_error = read_wal(path)
    assert [batch.seq for batch in batches] == [1]
    assert valid_end == end and "header" in tail_error


def test_wal_checksum_corruption_stops_replay_at_prefix(tmp_path):
    path = str(tmp_path / "crc.wal")
    wal = WriteAheadLog(path)
    wal.append("sets", _ops(0))
    first_end = os.path.getsize(path)
    wal.append("sets", _ops(1))
    wal.append("sets", _ops(2))
    wal.close()
    # Flip one payload byte of the middle record: its CRC no longer matches,
    # so replay must stop there -- batch 3 is unreachable even though its own
    # bytes are intact (its position can no longer be trusted).
    with open(path, "r+b") as handle:
        handle.seek(first_end + 8 + 2)
        byte = handle.read(1)
        handle.seek(first_end + 8 + 2)
        handle.write(bytes([byte[0] ^ 0xFF]))
    batches, valid_end, _size, tail_error = read_wal(path)
    assert [batch.seq for batch in batches] == [1]
    assert valid_end == first_end and "checksum" in tail_error
    recovered = WriteAheadLog(path)
    assert recovered.last_seq == 1 and "checksum" in recovered.tail_discarded
    recovered.close()


def test_wal_empty_file_recovers_to_a_fresh_log(tmp_path):
    path = str(tmp_path / "empty.wal")
    open(path, "wb").close()
    batches, valid_end, _size, tail_error = read_wal(path)
    assert batches == [] and valid_end == 0 and "magic" in tail_error
    wal = WriteAheadLog(path)
    assert wal.last_seq == 0
    assert wal.append("sets", _ops(0)) == 1
    wal.close()
    with WriteAheadLog(path) as replay:
        assert [batch.seq for batch in replay.batches()] == [1]


def test_wal_rejects_foreign_magic(tmp_path):
    path = str(tmp_path / "not-a-wal")
    with open(path, "wb") as handle:
        handle.write(b"NOTAWAL!plus trailing bytes")
    with pytest.raises(WalCorruptionError, match="magic"):
        read_wal(path)
    with pytest.raises(WalCorruptionError, match="magic"):
        WriteAheadLog(path)


def test_wal_truncate_upto_keeps_newer_batches(tmp_path):
    path = str(tmp_path / "rotate.wal")
    wal = WriteAheadLog(path)
    for seq in range(1, 4):
        assert wal.append("sets", _ops(seq)) == seq
    wal.truncate_upto(2)
    assert [batch.seq for batch in wal.batches()] == [3]
    # Numbering is preserved across the rotation.
    assert wal.append("sets", _ops(9)) == 4
    wal.close()
    summary = wal_summary(path)
    assert summary["num_batches"] == 2 and summary["last_seq"] == 4


def test_wal_summary_reports_tail_damage(tmp_path):
    path = str(tmp_path / "sum.wal")
    wal = WriteAheadLog(path)
    wal.append("sets", [{"op": "upsert", "id": 0, "record": [1]}, {"op": "delete", "id": 7}])
    wal.close()
    with open(path, "ab") as handle:
        handle.write(b"\x01")
    summary = wal_summary(path)
    assert summary["num_batches"] == 1
    assert summary["batches"][0]["upserts"] == 1
    assert summary["batches"][0]["deletes"] == 1
    assert summary["discarded_bytes"] == 1
    assert "torn" in summary["tail_error"]


def test_auto_compaction_policy_crossover():
    policy = AutoCompactionPolicy(min_delta_records=4, cost_ratio=0.5, max_delta_records=100)
    assert not policy.should_compact(3, 1.0)  # below the floor: never
    assert policy.should_compact(200, 10_000.0)  # above the cap: always
    assert policy.should_compact(10, 0.0)  # no query signal: fold eagerly
    assert policy.should_compact(50, 60.0)  # 50 >= 0.5 * 60
    assert not policy.should_compact(10, 1000.0)  # delta scan still cheap
    with pytest.raises(ValueError):
        AutoCompactionPolicy(min_delta_records=10, max_delta_records=5)


# ---------------------------------------------------------------------------
# Batched mutation driver (tracks the acknowledged reference state)
# ---------------------------------------------------------------------------


def _apply_batched_mutations(
    target, domain: str, records: dict, rng: random.Random, datasets, num_batches: int = 12
) -> dict:
    """Drive random ``mutate`` batches; returns the surviving records.

    Every acknowledged op is mirrored into ``records``, the reference the
    recovery assertions rebuild from.
    """
    pool = _record_pool(domain, rng, datasets)
    next_id = max(records, default=-1) + 1
    for _ in range(num_batches):
        ops: list[dict] = []
        expected: list[tuple[str, int]] = []
        for _ in range(rng.randint(1, 4)):
            action = rng.random()
            if action < 0.5 or not records:
                record = next(pool)
                ops.append({"op": "upsert", "record": record})
                expected.append(("upsert", next_id))
                records[next_id] = record
                next_id += 1
            elif action < 0.75:
                obj_id = rng.choice(sorted(records))
                record = next(pool)
                ops.append({"op": "upsert", "record": record, "id": obj_id})
                expected.append(("upsert", obj_id))
                records[obj_id] = record
            else:
                obj_id = rng.choice(sorted(records))
                ops.append({"op": "delete", "id": obj_id})
                expected.append(("delete", obj_id))
                del records[obj_id]
        outcome = target.mutate(domain, ops)
        assert outcome["durability"] == "wal"
        for (kind, obj_id), result in zip(expected, outcome["results"]):
            assert result["op"] == kind and result["id"] == obj_id
            if kind == "delete":
                assert result["deleted"] is True
    return records


# ---------------------------------------------------------------------------
# The crash-recovery property: 4 domains x {plain, 2-shard}
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
def test_wal_replay_recovers_plain_engine(domain, datasets, query_payloads, tmp_path):
    """Reopening checkpoint + WAL serves exactly the acknowledged writes."""
    rng = random.Random(31 + len(domain))
    directory = str(tmp_path / "idx")
    wal_path = str(tmp_path / f"{domain}.wal")
    seed = SearchEngine()
    seed.add_dataset(domain, datasets[domain])
    seed.save_index(domain, directory)

    engine = SearchEngine()
    engine.load_index(directory)
    engine.attach_wal(domain, wal_path)
    records = dict(enumerate(_initial_records(domain, datasets)))
    records = _apply_batched_mutations(engine, domain, records, rng, datasets)
    records = _seed_topk_neighbours(engine, domain, query_payloads[domain], records)
    # Crash: the engine is dropped without save_index (close() only drops
    # the file handle, exactly like process death).  Recovery loads the
    # stale checkpoint and replays the log.
    engine.close()
    with SearchEngine() as recovered:
        recovered.load_index(directory)
        info = recovered.attach_wal(domain, wal_path)
        assert info["checkpoint_seq"] == 0 and info["replayed_batches"] > 0
        _assert_matches_rebuild(recovered, None, domain, query_payloads[domain], records)


@pytest.mark.parametrize("domain", DOMAINS)
def test_wal_replay_recovers_sharded_engine(domain, datasets, query_payloads, tmp_path):
    """2-shard: each worker replays its own log on reopen; answers are exact."""
    rng = random.Random(77 + len(domain))
    directory = str(tmp_path / "shards")
    wal_dir = str(tmp_path / "wal")
    build_shards(domain, datasets[domain], directory, 2)
    records = dict(enumerate(_initial_records(domain, datasets)))
    with ShardedEngine(directory, wal_dir=wal_dir) as engine:
        records = _apply_batched_mutations(engine, domain, records, rng, datasets)
        records = _seed_topk_neighbours(engine, domain, query_payloads[domain], records)
        next_id = engine.mutation_info()["next_id"]
        # Crash: workers are torn down without flush.
    with ShardedEngine(directory, wal_dir=wal_dir) as recovered:
        _assert_matches_rebuild(recovered, None, domain, query_payloads[domain], records)
        # The id high-water mark was rebuilt from the replayed overlays.
        assert recovered.upsert(domain, next(_record_pool(domain, rng, datasets))) == next_id


def test_wal_replay_is_idempotent(datasets, query_payloads, tmp_path):
    """Replaying the same log twice yields the same state (explicit ids)."""
    directory = str(tmp_path / "idx")
    wal_path = str(tmp_path / "sets.wal")
    seed = SearchEngine()
    seed.add_dataset("sets", datasets["sets"])
    seed.save_index("sets", directory)
    writer = SearchEngine()
    writer.load_index(directory)
    writer.attach_wal("sets", wal_path)
    writer.mutate("sets", [{"op": "upsert", "record": [1, 2, 3]}, {"op": "delete", "id": 0}])
    writer.mutate("sets", [{"op": "upsert", "record": [4, 5], "id": 1}])

    once = SearchEngine()
    once.load_index(directory)
    once.attach_wal("sets", wal_path)
    twice = SearchEngine()
    twice.load_index(directory)
    twice.attach_wal("sets", wal_path)
    twice.detach_wal("sets")
    twice.attach_wal("sets", wal_path)  # checkpoint still 0: full replay again
    assert once.mutation_info("sets") == twice.mutation_info("sets")
    for payload in query_payloads["sets"]:
        query = Query(backend="sets", payload=payload, tau=0.5)
        assert twice.search(query).ids == once.search(query).ids
    for instance in (writer, once, twice):
        instance.close()


def test_wal_torn_tail_recovers_the_acknowledged_prefix(datasets, query_payloads, tmp_path):
    """A batch whose bytes never fully hit disk is dropped; the prefix serves."""
    rng = random.Random(5)
    directory = str(tmp_path / "idx")
    wal_path = str(tmp_path / "sets.wal")
    seed = SearchEngine()
    seed.add_dataset("sets", datasets["sets"])
    seed.save_index("sets", directory)
    engine = SearchEngine()
    engine.load_index(directory)
    engine.attach_wal("sets", wal_path)
    records = dict(enumerate(_initial_records("sets", datasets)))
    records = _apply_batched_mutations(engine, "sets", records, rng, datasets, num_batches=6)
    prefix_end = os.path.getsize(wal_path)
    prefix_records = dict(records)
    # One more batch, then a crash that tears its tail off mid-write.
    engine.mutate("sets", [{"op": "upsert", "record": [9, 9, 9]}, {"op": "delete", "id": 2}])
    engine.close()
    with open(wal_path, "r+b") as handle:
        handle.truncate(os.path.getsize(wal_path) - 2)
    with SearchEngine() as recovered:
        recovered.load_index(directory)
        info = recovered.attach_wal("sets", wal_path)
        assert info["replayed_batches"] == 6
        assert os.path.getsize(wal_path) == prefix_end
        _assert_matches_rebuild(recovered, None, "sets", query_payloads["sets"], prefix_records)


def test_checkpoint_truncates_wal_and_replay_resumes_after_it(
    datasets, query_payloads, tmp_path
):
    """save_index folds acked batches into the container; only newer ones replay."""
    directory = str(tmp_path / "idx")
    wal_path = str(tmp_path / "strings.wal")
    engine = SearchEngine()
    engine.add_dataset("strings", datasets["strings"])
    engine.save_index("strings", directory)
    engine.attach_wal("strings", wal_path)
    engine.mutate("strings", [{"op": "upsert", "record": "durable"}])
    engine.mutate("strings", [{"op": "delete", "id": 0}])
    manifest = engine.save_index("strings", directory)  # checkpoint at seq 2
    assert manifest["format_version"] == 3 and manifest["wal_seq"] == 2
    assert wal_summary(wal_path)["num_batches"] == 0
    engine.mutate("strings", [{"op": "upsert", "record": "after checkpoint"}])

    with SearchEngine() as recovered:
        recovered.load_index(directory)
        info = recovered.attach_wal("strings", wal_path)
        assert info["checkpoint_seq"] == 2 and info["replayed_batches"] == 1
        assert recovered.mutation_info("strings") == engine.mutation_info("strings")
    engine.close()


def test_sharded_worker_kill_and_respawn_replays_acked_writes(
    datasets, query_payloads, tmp_path
):
    """kill -9 on a shard worker loses nothing that was acknowledged."""
    rng = random.Random(13)
    directory = str(tmp_path / "shards")
    wal_dir = str(tmp_path / "wal")
    build_shards("sets", datasets["sets"], directory, 2)
    records = dict(enumerate(_initial_records("sets", datasets)))
    with ShardedEngine(directory, wal_dir=wal_dir) as engine:
        records = _apply_batched_mutations(engine, "sets", records, rng, datasets)
        victim = 0
        for pid in list(engine._pools[victim]._processes):
            os.kill(pid, signal.SIGKILL)
        with pytest.raises(ShardWorkerError):
            engine.search(Query(backend="sets", payload=[1, 2, 3], tau=2))
        engine.respawn_shard(victim)
        _assert_matches_rebuild(engine, None, "sets", query_payloads["sets"], records)


def test_auto_compaction_checkpoints_without_changing_answers(
    datasets, query_payloads, tmp_path
):
    """Background folding swaps the container atomically and truncates the WAL."""
    rng = random.Random(99)
    directory = str(tmp_path / "idx")
    wal_path = str(tmp_path / "sets.wal")
    engine = SearchEngine()
    engine.add_dataset("sets", datasets["sets"])
    engine.save_index("sets", directory)
    engine.attach_wal("sets", wal_path)
    engine.enable_auto_compaction(
        "sets", AutoCompactionPolicy(min_delta_records=1, cost_ratio=0.001, max_delta_records=8)
    )
    records = dict(enumerate(_initial_records("sets", datasets)))
    records = _apply_batched_mutations(engine, "sets", records, rng, datasets, num_batches=8)
    assert engine.wait_for_compaction("sets", timeout=30.0)
    info = engine.durability_info("sets")
    assert info["auto_compaction"]["compactions"] >= 1
    assert info["auto_compaction"]["last_error"] is None
    _assert_matches_rebuild(engine, None, "sets", query_payloads["sets"], records)
    engine.close()
    # The checkpoint made replay unnecessary for the folded prefix.
    with SearchEngine() as recovered:
        recovered.load_index(directory)
        recovered.attach_wal("sets", wal_path)
        _assert_matches_rebuild(recovered, None, "sets", query_payloads["sets"], records)


def test_crash_mid_rolling_compaction_swap_recovers_exactly(
    datasets, query_payloads, tmp_path
):
    """kill -9 in the swap window loses nothing that was acknowledged.

    The vulnerable instant of a rolling compaction is between the
    container checkpoint landing on disk (the atomic rename) and the
    shared WAL being truncated past it: a crash there leaves a *newer*
    container under an *un-truncated* log.  Replay must skip the folded
    prefix (idempotence via the checkpoint seq) and apply only the tail,
    yielding answers byte-identical to a from-scratch rebuild of exactly
    the acknowledged ops.
    """
    rng = random.Random(23)
    directory = str(tmp_path / "shards")
    wal_dir = str(tmp_path / "wal")
    build_shards("sets", datasets["sets"], directory, 2)
    records = dict(enumerate(_initial_records("sets", datasets)))
    with ShardedEngine(directory, wal_dir=wal_dir, replicas=2) as engine:
        records = _apply_batched_mutations(engine, "sets", records, rng, datasets)
        # Freeze the crash point: the checkpoint rename happens, the WAL
        # truncation never does -- exactly what power loss mid-swap leaves.
        for wal in engine._wals:
            wal.truncate_upto = lambda seq: None
        summaries = engine.compact()
        assert all(summary["rolling"] for summary in summaries)
        # A few more acked batches after the interrupted swap, then the
        # hard crash: every replica of every shard dies mid-flight.
        records = _apply_batched_mutations(
            engine, "sets", records, rng, datasets, num_batches=3
        )
        for entry in engine.replica_status():
            for replica in entry["replicas"]:
                if replica["pid"] is not None:
                    os.kill(replica["pid"], signal.SIGKILL)
    with ShardedEngine(directory, wal_dir=wal_dir, replicas=2) as recovered:
        _assert_matches_rebuild(recovered, None, "sets", query_payloads["sets"], records)
    # Single-replica reopen reads the same lineage: the recovery contract
    # does not depend on the replica count the crash happened under.
    with ShardedEngine(directory, wal_dir=wal_dir) as downgraded:
        _assert_matches_rebuild(downgraded, None, "sets", query_payloads["sets"], records)
