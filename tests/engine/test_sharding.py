"""Sharded serving: shard layout, exact merging, process-pool equality."""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import Query, SearchEngine, build_shards
from repro.engine.persistence import load_container
from repro.engine.sharding import (
    ShardedEngine,
    ShardWorkerError,
    load_shards_manifest,
    merge_threshold,
    merge_topk,
    shard_dirname,
    split_ranges,
)

ALL_DOMAINS = ["hamming", "sets", "strings", "graphs"]


# ---------------------------------------------------------------------------
# Shard layout
# ---------------------------------------------------------------------------


def test_split_ranges_covers_and_balances():
    assert split_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert split_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert split_ranges(5, 1) == [(0, 5)]


def test_split_ranges_caps_shards_at_objects():
    # Every shard must hold at least one object.
    assert split_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]


def test_split_ranges_rejects_bad_arguments():
    with pytest.raises(ValueError, match="empty"):
        split_ranges(0, 2)
    with pytest.raises(ValueError, match="num_shards"):
        split_ranges(5, 0)


# ---------------------------------------------------------------------------
# Merging (pure functions)
# ---------------------------------------------------------------------------


def test_merge_threshold_unions_and_sorts():
    parts = [{"ids": [7, 2]}, {"ids": []}, {"ids": [11, 9]}]
    assert merge_threshold(parts) == [2, 7, 9, 11]


def test_merge_topk_orders_by_score_then_id():
    parts = [
        {"ids": [4, 0], "scores": [1.0, 3.0]},
        {"ids": [10, 12], "scores": [1.0, 1.0]},
    ]
    ids, scores = merge_topk(parts, 3)
    # Score ties (1.0) break by global id: 4 < 10 < 12.
    assert ids == [4, 10, 12]
    assert scores == [1.0, 1.0, 1.0]


def test_merge_topk_tie_break_matches_single_shard_order():
    # Identical scores everywhere: the merge must yield ascending global ids,
    # exactly what sorted(zip(scores, ids)) produces in the unsharded path.
    parts = [
        {"ids": [1, 5], "scores": [2.0, 2.0]},
        {"ids": [0, 3], "scores": [2.0, 2.0]},
    ]
    ids, scores = merge_topk(parts, 4)
    assert ids == [0, 1, 3, 5]
    assert scores == [2.0] * 4


def test_merge_topk_trims_to_k():
    parts = [{"ids": [0, 1, 2], "scores": [0.0, 1.0, 2.0]}]
    ids, scores = merge_topk(parts, 2)
    assert ids == [0, 1]
    assert scores == [0.0, 1.0]


# ---------------------------------------------------------------------------
# Build + persistence round trip
# ---------------------------------------------------------------------------


def test_build_shards_writes_manifest_and_containers(tmp_path, datasets):
    directory = str(tmp_path / "strings-shards")
    manifest = build_shards("strings", datasets["strings"], directory, 3)
    assert manifest["num_shards"] == 3
    assert manifest["num_objects"] == len(datasets["strings"])
    ranges = [(shard["lo"], shard["hi"]) for shard in manifest["shards"]]
    assert ranges == split_ranges(len(datasets["strings"]), 3)

    reloaded = load_shards_manifest(directory)
    assert reloaded == manifest

    # Every shard is a regular, independently loadable index container whose
    # store holds exactly its id range.
    for shard in manifest["shards"]:
        container = load_container(os.path.join(directory, shard["path"]))
        assert container.backend.name == "strings"
        assert len(container.store) == shard["hi"] - shard["lo"]
        assert container.store.records == (datasets["strings"].records[shard["lo"] : shard["hi"]])


def test_build_shards_persists_queries_and_default_tau(tmp_path, datasets):
    directory = str(tmp_path / "sets-shards")
    manifest = build_shards("sets", datasets["sets"], directory, 2, queries=[[1, 2, 3], [4, 5]])
    assert manifest["num_queries"] == 2
    # The sets default tau is a Jaccard float; JSON must keep it a float
    # (an int would silently switch the predicate to overlap counting).
    assert isinstance(load_shards_manifest(directory)["default_tau"], float)
    with ShardedEngine(directory) as engine:
        assert engine.load_queries() == [[1, 2, 3], [4, 5]]
        assert engine.default_tau() == manifest["default_tau"]


def test_loading_a_non_sharded_directory_fails(tmp_path):
    with pytest.raises(FileNotFoundError, match="shards.json"):
        ShardedEngine(str(tmp_path))


def test_unsupported_shards_format_rejected(tmp_path, datasets):
    directory = str(tmp_path / "g")
    build_shards("graphs", datasets["graphs"], directory, 2)
    path = os.path.join(directory, "shards.json")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["format_version"] = 99
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    with pytest.raises(ValueError, match="unsupported shards format"):
        ShardedEngine(directory)


def test_shard_dirnames_are_stable():
    assert shard_dirname(0) == "shard-0000"
    assert shard_dirname(12) == "shard-0012"


# ---------------------------------------------------------------------------
# Sharded serving equals unsharded serving (process pool, all four domains)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_engines(tmp_path_factory, datasets):
    """One 3-shard engine per domain, shared by the equality tests."""
    root = tmp_path_factory.mktemp("sharded")
    engines = {}
    for name in ALL_DOMAINS:
        directory = str(root / name)
        build_shards(name, datasets[name], directory, 3)
        engines[name] = ShardedEngine(directory)
    yield engines
    for engine in engines.values():
        engine.close()


@pytest.mark.parametrize("name", ALL_DOMAINS)
def test_sharded_threshold_equals_unsharded(name, engine, sharded_engines, query_payloads, taus):
    for payload in query_payloads[name]:
        query = Query(backend=name, payload=payload, tau=taus[name])
        unsharded = engine.search(query)
        sharded = sharded_engines[name].search(query)
        assert sharded.ids == sorted(int(obj_id) for obj_id in unsharded.ids)
        assert sharded.scores is None


@pytest.mark.parametrize("name", ["hamming", "sets", "strings"])
def test_sharded_topk_equals_unsharded(name, engine, sharded_engines, query_payloads):
    for payload in query_payloads[name]:
        query = Query(backend=name, payload=payload, k=5)
        unsharded = engine.search(query)
        sharded = sharded_engines[name].search(query)
        assert sharded.ids == [int(obj_id) for obj_id in unsharded.ids]
        assert sharded.scores == pytest.approx(unsharded.scores)


def test_sharded_topk_equals_unsharded_graphs(tmp_path):
    # Every shard escalates its GED ladder until it holds k results, so
    # distant shards of the aids-like fixture would pay exponential
    # verification at high thresholds.  A dataset of small mutually close
    # graphs keeps every shard's ladder shallow while still exercising the
    # cross-shard merge, score ties and id tie-breaks.
    from repro.graphs import Graph, GraphDataset

    labels = ["C", "N", "O", "S"]
    graphs = []
    for index in range(12):
        graph = Graph()
        for vertex in range(4):
            graph.add_vertex(vertex, labels[(index + vertex) % len(labels)])
        for vertex in range(3):
            graph.add_edge(vertex, vertex + 1, "b" if index % 3 else "a")
        graphs.append(graph)
    dataset = GraphDataset(graphs)

    unsharded = SearchEngine(cache_size=0)
    unsharded.add_dataset("graphs", dataset)
    directory = str(tmp_path / "tiny-graphs")
    build_shards("graphs", dataset, directory, 3)
    with ShardedEngine(directory) as sharded_engine:
        for payload in graphs[:3]:
            query = Query(backend="graphs", payload=payload, k=4)
            reference = unsharded.search(query)
            sharded = sharded_engine.search(query)
            assert sharded.ids == [int(obj_id) for obj_id in reference.ids]
            assert sharded.scores == pytest.approx(reference.scores)


def test_search_batch_preserves_order_and_results(engine, sharded_engines, query_payloads, taus):
    queries = [
        Query(backend="sets", payload=payload, tau=taus["sets"])
        for payload in query_payloads["sets"]
    ] * 3
    batch = sharded_engines["sets"].search_batch(queries, chunk_size=2)
    assert len(batch) == len(queries)
    for query, response in zip(queries, batch):
        assert response.query is query
        expected = sorted(int(obj_id) for obj_id in engine.search(query).ids)
        assert response.ids == expected


def test_sharded_stats_observe_shards_and_merge(sharded_engines, query_payloads, taus):
    engine = sharded_engines["hamming"]
    engine.reset_stats()
    queries = [
        Query(backend="hamming", payload=payload, tau=taus["hamming"])
        for payload in query_payloads["hamming"]
    ]
    engine.search_batch(queries)
    snapshot = engine.stats.snapshot()
    assert snapshot["num_queries"] == len(queries)
    assert len(snapshot["per_shard"]) == 3
    assert all(shard["num_queries"] == len(queries) for shard in snapshot["per_shard"])
    assert snapshot["merge_time_s"] >= 0.0
    worker = engine.worker_stats()
    assert len(worker) == 3
    assert all(stats["num_queries"] >= len(queries) for stats in worker)


def test_mismatched_backend_query_rejected(sharded_engines):
    query = Query(backend="strings", payload="abc", tau=1)
    with pytest.raises(ValueError, match="serves backend"):
        sharded_engines["hamming"].search(query)


def test_closed_engine_refuses_queries(tmp_path, datasets):
    directory = str(tmp_path / "s")
    build_shards("strings", datasets["strings"], directory, 2)
    engine = ShardedEngine(directory)
    engine.close()
    with pytest.raises(RuntimeError, match="closed"):
        engine.search(Query(backend="strings", payload="abc", tau=1))


# ---------------------------------------------------------------------------
# Failure paths: dead workers surface structured errors; close is idempotent
# ---------------------------------------------------------------------------


def _kill_shard_worker(engine: ShardedEngine, shard_id: int) -> None:
    import os
    import signal

    victim = next(iter(engine._pools[shard_id]._processes))
    os.kill(victim, signal.SIGKILL)


def test_killed_worker_surfaces_shard_worker_error(tmp_path, datasets, taus):
    directory = str(tmp_path / "kill")
    build_shards("strings", datasets["strings"], directory, 2)
    with ShardedEngine(directory) as engine:
        query = Query(backend="strings", payload=datasets["strings"].record(0), tau=taus["strings"])
        engine.search(query)  # healthy first
        _kill_shard_worker(engine, 1)
        with pytest.raises(ShardWorkerError, match="shard 1") as info:
            engine.search(query)
        assert info.value.shard_id == 1


def test_killed_worker_mid_batch_fails_structured(tmp_path, datasets, taus):
    directory = str(tmp_path / "kill-batch")
    build_shards("strings", datasets["strings"], directory, 2)
    with ShardedEngine(directory) as engine:
        queries = [
            Query(backend="strings", payload=datasets["strings"].record(i), tau=taus["strings"])
            for i in range(4)
        ]
        assert len(engine.search_batch(queries)) == 4
        _kill_shard_worker(engine, 0)
        with pytest.raises(ShardWorkerError, match="shard 0"):
            engine.search_batch(queries, chunk_size=1)
        # The error names the broken shard in worker_stats too.
        with pytest.raises(ShardWorkerError):
            engine.worker_stats()


def test_close_is_idempotent_and_double_exit_safe(tmp_path, datasets):
    directory = str(tmp_path / "close")
    build_shards("strings", datasets["strings"], directory, 2)
    engine = ShardedEngine(directory)
    engine.close()
    engine.close()  # second close is a no-op, not an error
    engine.__exit__(None, None, None)
    engine.__exit__(None, None, None)

    with ShardedEngine(directory) as reopened:
        reopened.close()
    # __exit__ after an explicit close inside the block already ran: fine.
    reopened.close()


def test_close_after_worker_death_is_clean(tmp_path, datasets):
    directory = str(tmp_path / "close-dead")
    build_shards("strings", datasets["strings"], directory, 2)
    engine = ShardedEngine(directory)
    _kill_shard_worker(engine, 0)
    engine.close()
    engine.close()
