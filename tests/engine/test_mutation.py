"""Online mutation: delta/tombstone overlays must be invisible to answers.

The contract under test: after *any* interleaving of upserts and deletes,
threshold and top-k answers are byte-identical (ids and scores) to an index
rebuilt from scratch over the surviving records -- per domain, unsharded and
2-shard, in-process and over HTTP through :class:`EngineClient`.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.datasets.molecules import aids_like
from repro.engine import Query, SearchEngine
from repro.engine.client import EngineClient
from repro.engine.mutation import DeltaStore
from repro.engine.server import ServerThread
from repro.engine.sharding import ShardedEngine, build_shards
from repro.graphs import GraphDataset
from repro.hamming import BinaryVectorDataset
from repro.sets import SetDataset
from repro.strings import StringDataset

DOMAINS = ("hamming", "sets", "strings", "graphs")

#: Threshold / top-k parameters per domain (graphs kept small: exact GED).
PARAMS = {
    "hamming": dict(tau=16, k=5),
    "sets": dict(tau=0.6, k=4),
    "strings": dict(tau=2, k=4),
    "graphs": dict(tau=2, k=3),
}


# ---------------------------------------------------------------------------
# Record generation and reference rebuilds
# ---------------------------------------------------------------------------


def _record_pool(domain: str, rng: random.Random, datasets):
    """An endless stream of fresh records for one domain.

    Graph records are drawn from the same clustered family as the dataset:
    top-k escalation over graphs is exponential in the threshold, so the
    queries must keep near neighbours for the ladder to stop early -- the
    same property the serving workloads have.
    """
    if domain == "hamming":
        while True:
            yield np.array([rng.randint(0, 1) for _ in range(64)], dtype=np.uint8)
    elif domain == "sets":
        while True:
            yield [rng.randint(0, 80) for _ in range(rng.randint(2, 9))]
    elif domain == "strings":
        alphabet = "abcdefghij"
        while True:
            yield "".join(rng.choice(alphabet) for _ in range(rng.randint(3, 12)))
    else:
        graphs = [graph.copy() for graph in datasets["graphs"].graphs]
        graphs += aids_like(num_graphs=12, num_queries=1, seed=909).graphs
        while True:
            yield graphs[rng.randrange(len(graphs))]


def _initial_records(domain: str, datasets) -> list:
    store = datasets[domain]
    if domain == "hamming":
        return [np.array(row, dtype=np.uint8) for row in store.vectors]
    if domain == "sets":
        return [list(record) for record in store.raw_records]
    if domain == "strings":
        return list(store.records)
    return list(store.graphs)


def _rebuild(domain: str, records: dict) -> tuple[SearchEngine, list[int]]:
    """A from-scratch engine over the surviving records, plus the id map.

    The rebuilt dataset is dense (ids ``0..m-1``); ``live`` maps its dense
    ids back to the mutated engine's sparse external ids.  The map is
    monotone, so ``(score, id)`` tie-breaking agrees between the two.
    """
    live = sorted(records)
    rows = [records[obj_id] for obj_id in live]
    if domain == "hamming":
        dataset = BinaryVectorDataset(np.asarray(rows, dtype=np.uint8), num_parts=4)
    elif domain == "sets":
        dataset = SetDataset(rows, num_classes=4)
    elif domain == "strings":
        dataset = StringDataset(rows, kappa=2)
    else:
        dataset = GraphDataset(rows)
    engine = SearchEngine(cache_size=0)
    engine.add_dataset(domain, dataset)
    return engine, live


def _apply_random_mutations(
    target, domain: str, records: dict, rng: random.Random, datasets, steps: int = 55
) -> dict:
    """Drive ``steps`` random upserts/deletes; returns the surviving records.

    ``target`` is anything with the uniform mutation surface -- a
    :class:`SearchEngine`, a :class:`ShardedEngine`, or an
    :class:`EngineClient` (whose methods take the backend name first too).
    """
    pool = _record_pool(domain, rng, datasets)
    next_id = max(records, default=-1) + 1
    for _ in range(steps):
        action = rng.random()
        if action < 0.5 or not records:
            record = next(pool)
            assigned = target.upsert(domain, record)
            assert assigned == next_id
            records[assigned] = record
            next_id += 1
        elif action < 0.75:
            obj_id = rng.choice(sorted(records))
            record = next(pool)
            assert target.upsert(domain, record, obj_id) == obj_id
            records[obj_id] = record
        else:
            obj_id = rng.choice(sorted(records))
            assert target.delete(domain, obj_id) is True
            del records[obj_id]
    return records


def _seed_topk_neighbours(target, domain: str, payloads, records: dict) -> dict:
    """Guarantee every graph query keeps ``k`` near neighbours.

    Exact GED escalation is exponential in the threshold: if the random
    mutations wipe out a query's cluster, top-k walks the ladder to the
    escalation cap and a unit test turns into minutes of branch-and-bound.
    Upserting ``k`` copies of each query pins the ladder to its first rung
    -- and exercises delta/main tie-breaking on equal scores as a bonus.
    In a sharded engine every shard walks its *own* ladder, so the copies
    are spread over the id space: ``k`` overwrites of low (first-shard) ids
    plus ``k`` appends (which route to the last shard).
    """
    if domain != "graphs":
        return records
    k = PARAMS["graphs"]["k"]
    for index, payload in enumerate(payloads):
        for low_id in range(index * k, index * k + k):
            assert target.upsert(domain, payload.copy(), low_id) == low_id
            records[low_id] = payload.copy()
        for _ in range(k):
            assigned = target.upsert(domain, payload.copy())
            records[assigned] = payload.copy()
    return records


def _assert_matches_rebuild(engine, client, domain, payloads, records) -> None:
    """Threshold + top-k answers equal a from-scratch rebuild, both surfaces."""
    reference, live = _rebuild(domain, records)
    tau, k = PARAMS[domain]["tau"], PARAMS[domain]["k"]
    taus = [tau, 2] if domain == "sets" else [tau]  # cover overlap taus too
    for payload in payloads:
        for threshold in taus:
            mutated = engine.search(Query(backend=domain, payload=payload, tau=threshold))
            expected = reference.search(Query(backend=domain, payload=payload, tau=threshold))
            expected_ids = sorted(live[dense] for dense in expected.ids)
            assert mutated.ids == expected_ids
            if client is not None:
                served = client.search(domain, payload, tau=threshold)
                assert served.ids == expected_ids
        mutated = engine.search(Query(backend=domain, payload=payload, k=k))
        expected = reference.search(Query(backend=domain, payload=payload, k=k))
        assert mutated.ids == [live[dense] for dense in expected.ids]
        assert mutated.scores == expected.scores
        if client is not None:
            served = client.search_topk(domain, payload, k=k)
            assert served.ids == mutated.ids
            assert served.scores == mutated.scores


# ---------------------------------------------------------------------------
# The equivalence matrix: 4 domains x {plain, 2-shard} x {in-process, HTTP}
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
def test_mutated_plain_engine_matches_rebuild(domain, datasets, query_payloads):
    """Unsharded: mutations over HTTP, answers checked on both surfaces."""
    rng = random.Random(42)
    engine = SearchEngine(cache_size=64)
    engine.add_dataset(domain, datasets[domain])
    records = dict(enumerate(_initial_records(domain, datasets)))
    with ServerThread(engine) as handle, EngineClient(handle.url) as client:
        # Mutations travel through POST /upsert and /delete for real.
        records = _apply_random_mutations(client, domain, records, rng, datasets)
        records = _seed_topk_neighbours(client, domain, query_payloads[domain], records)
        _assert_matches_rebuild(engine, client, domain, query_payloads[domain], records)
        # Compaction must not change a single answer.
        summary = engine.compact(domain)
        assert summary["compacted"] is True
        assert summary["delta_records"] == 0 and summary["num_tombstones"] == 0
        _assert_matches_rebuild(engine, client, domain, query_payloads[domain], records)


@pytest.mark.parametrize("domain", DOMAINS)
def test_mutated_sharded_engine_matches_rebuild(domain, datasets, query_payloads, tmp_path):
    """2-shard: mutations route to the owning shard; answers on both surfaces."""
    rng = random.Random(1234)
    directory = str(tmp_path / f"{domain}-shards")
    build_shards(domain, datasets[domain], directory, 2)
    records = dict(enumerate(_initial_records(domain, datasets)))
    with ShardedEngine(directory, cache_size=16) as engine:
        records = _apply_random_mutations(engine, domain, records, rng, datasets)
        records = _seed_topk_neighbours(engine, domain, query_payloads[domain], records)
        with ServerThread(engine) as handle, EngineClient(handle.url) as client:
            _assert_matches_rebuild(engine, client, domain, query_payloads[domain], records)
        # Per-shard compaction preserves every answer as well.
        engine.compact(domain)
        _assert_matches_rebuild(engine, None, domain, query_payloads[domain], records)


# ---------------------------------------------------------------------------
# Persistence: delta + tombstones survive save/load and flush/reload
# ---------------------------------------------------------------------------


def test_plain_container_roundtrips_live_delta(engine, query_payloads, tmp_path):
    directory = str(tmp_path / "sets-idx")
    engine.upsert("sets", [1, 2, 3, 4])
    engine.delete("sets", 0)
    manifest = engine.save_index("sets", directory)
    assert manifest["format_version"] == 2
    assert manifest["mutations"]["delta_records"] == 1
    restored = SearchEngine(cache_size=0)
    restored.load_index(directory)
    assert restored.mutation_info("sets") == engine.mutation_info("sets")
    for payload in query_payloads["sets"]:
        query = Query(backend="sets", payload=payload, tau=0.5)
        assert restored.search(query).ids == engine.search(query).ids
    # Ids keep advancing from the persisted high-water mark.
    assert restored.upsert("sets", [9, 9, 1]) == engine.delta("sets").next_id


def test_unmutated_container_stays_format_v1(engine, tmp_path):
    directory = str(tmp_path / "v1-idx")
    manifest = engine.save_index("strings", directory)
    assert manifest["format_version"] == 1
    assert "mutations" not in manifest


def test_sharded_flush_reloads_mutations(datasets, query_payloads, tmp_path):
    directory = str(tmp_path / "strings-shards")
    build_shards("strings", datasets["strings"], directory, 2)
    rng = random.Random(7)
    records = dict(enumerate(_initial_records("strings", datasets)))
    with ShardedEngine(directory) as engine:
        records = _apply_random_mutations(engine, "strings", records, rng, datasets, steps=30)
        manifest = engine.flush()
        assert manifest["format_version"] == 2
        next_id = engine.mutation_info()["next_id"]
    with ShardedEngine(directory) as restored:
        _assert_matches_rebuild(restored, None, "strings", query_payloads["strings"], records)
        assert restored.upsert("strings", "freshly appended") == next_id


# ---------------------------------------------------------------------------
# DeltaStore unit behaviour and validation
# ---------------------------------------------------------------------------


def test_delta_store_upsert_delete_lifecycle():
    delta = DeltaStore.fresh(3)
    assert delta.is_identity and delta.num_live == 3
    delta, assigned = delta.with_upsert("new")
    assert assigned == 3 and delta.num_live == 4 and delta.mutated
    delta, assigned = delta.with_upsert("overwrite", 1)
    assert assigned == 1
    assert 1 in delta.tombstones and delta.records[1] == "overwrite"
    assert delta.num_live == 4  # overwrite does not change the population
    delta, deleted = delta.with_delete(3)
    assert deleted and delta.num_live == 3
    same, deleted = delta.with_delete(3)
    assert not deleted and same is delta  # double delete: no-op, same overlay
    ids, rows = delta.live_records(["a", "b", "c"])
    assert ids == [0, 1, 2] and rows == ["a", "overwrite", "c"]


def test_upsert_rejects_invalid_records(engine):
    with pytest.raises(ValueError, match="dimension"):
        engine.upsert("hamming", np.zeros(7, dtype=np.uint8))
    with pytest.raises(ValueError, match="token"):
        engine.upsert("sets", 17)
    with pytest.raises(ValueError, match="at least one token"):
        engine.upsert("sets", [])
    with pytest.raises(ValueError, match="string"):
        engine.upsert("strings", 42)
    with pytest.raises(ValueError, match="Graph"):
        engine.upsert("graphs", "not a graph")
    with pytest.raises(ValueError, match="non-negative"):
        engine.upsert("strings", "fine", -3)


def test_delete_of_unknown_id_is_false(engine):
    assert engine.delete("strings", 10**6) is False
    assert engine.mutation_info("strings")["mutated"] is False


def test_compact_refuses_to_empty_a_store():
    engine = SearchEngine()
    engine.add_dataset("strings", StringDataset(["solo"], kappa=2))
    engine.delete("strings", 0)
    with pytest.raises(ValueError, match="zero live"):
        engine.compact("strings")
    # The tombstoned store still answers (with nothing) instead of crashing.
    assert engine.search(Query(backend="strings", payload="solo", tau=1)).ids == []


def test_compact_without_mutations_is_a_noop(engine):
    summary = engine.compact("hamming")
    assert summary["compacted"] is False


def test_mutation_requires_a_mutable_backend(engine):
    from repro.engine.backend import Backend, register_backend

    class Immutable(Backend):
        name = "immutable-test"

        def describe(self, store):
            return {"num_objects": 1}

        def default_tau(self, store):
            return 1

        def query_key(self, payload):
            return str(payload)

        def make_searcher(self, store, algorithm, tau, chain_length):
            raise NotImplementedError

        def distance(self, store, payload, obj_id, tau):
            raise NotImplementedError

        def tau_ladder(self, store, payload, start, max_size=None):
            return [1]

        def save_store(self, store, directory):
            raise NotImplementedError

        def load_store(self, directory):
            raise NotImplementedError

        def save_queries(self, queries, directory):
            raise NotImplementedError

        def load_queries(self, directory):
            return None

        def make_workload(self, size, num_queries, seed):
            raise NotImplementedError

    from repro.engine import backend as backend_module

    register_backend(Immutable(), replace=True)
    try:
        engine.add_dataset("immutable-test", object())
        with pytest.raises(NotImplementedError, match="does not support online mutation"):
            engine.upsert("immutable-test", object())
    finally:
        backend_module._REGISTRY.pop("immutable-test", None)
