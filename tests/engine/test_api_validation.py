"""Query parameter validation: fail fast with clear messages, not in backends."""

from __future__ import annotations

import pytest

from repro.engine import Query


def test_query_needs_tau_or_k():
    with pytest.raises(ValueError, match="threshold tau, a result count k"):
        Query(backend="hamming", payload=[0, 1])


@pytest.mark.parametrize("k", [0, -1, -100])
def test_non_positive_k_rejected(k):
    with pytest.raises(ValueError, match="k must be at least 1"):
        Query(backend="hamming", payload=[0, 1], k=k)


@pytest.mark.parametrize("k", [2.0, 2.5, "3", True, [1]])
def test_non_int_k_rejected(k):
    with pytest.raises(ValueError, match="k must be an integer"):
        Query(backend="hamming", payload=[0, 1], k=k)


def test_nan_tau_rejected():
    with pytest.raises(ValueError, match="NaN"):
        Query(backend="hamming", payload=[0, 1], tau=float("nan"))


@pytest.mark.parametrize("tau", [float("inf"), float("-inf")])
def test_infinite_tau_rejected(tau):
    # -inf trips the negativity check, +inf the finiteness check; either
    # way the error is a clear ValueError, not an OverflowError deep in a
    # backend's int(tau).
    with pytest.raises(ValueError, match="finite|non-negative"):
        Query(backend="hamming", payload=[0, 1], tau=tau)


@pytest.mark.parametrize("tau", [-1, -0.5, -1e9])
def test_negative_tau_rejected(tau):
    with pytest.raises(ValueError, match="non-negative"):
        Query(backend="hamming", payload=[0, 1], tau=tau)


@pytest.mark.parametrize("tau", ["0.8", [1], True])
def test_non_numeric_tau_rejected(tau):
    with pytest.raises(ValueError, match="tau must be a number"):
        Query(backend="hamming", payload=[0, 1], tau=tau)


@pytest.mark.parametrize("chain_length", [0, -3])
def test_non_positive_chain_length_rejected(chain_length):
    with pytest.raises(ValueError, match="chain_length must be at least 1"):
        Query(backend="hamming", payload=[0, 1], tau=2, chain_length=chain_length)


@pytest.mark.parametrize("chain_length", [2.5, "2", True])
def test_non_int_chain_length_rejected(chain_length):
    with pytest.raises(ValueError, match="chain_length must be an integer"):
        Query(backend="hamming", payload=[0, 1], tau=2, chain_length=chain_length)


def test_valid_boundary_values_accepted():
    Query(backend="hamming", payload=[0, 1], tau=0)  # exact match search
    Query(backend="hamming", payload=[0, 1], k=1)
    Query(backend="sets", payload=[1, 2], tau=0.8, chain_length=1)


def test_numpy_scalars_accepted():
    import numpy as np

    query = Query(backend="hamming", payload=[0, 1], tau=np.int64(4), k=np.int64(3))
    assert query.tau == 4
    assert query.k == 3


# ---------------------------------------------------------------------------
# Backend-specific threshold validation (engine + wire surfaces)
# ---------------------------------------------------------------------------


def test_sets_zero_overlap_tau_rejected_with_clear_message(engine):
    """``tau=0`` used to fall through to an obscure predicate error.

    (Negative thresholds are already rejected by ``Query`` itself.)
    """
    with pytest.raises(ValueError, match="overlap threshold must be at least 1"):
        engine.search(Query(backend="sets", payload=[1, 2], tau=0))


@pytest.mark.parametrize("tau", [0.0])
def test_sets_zero_jaccard_tau_rejected_with_clear_message(engine, tau):
    with pytest.raises(ValueError, match="Jaccard threshold must be in \\(0, 1\\]"):
        engine.search(Query(backend="sets", payload=[1, 2], tau=tau))


def test_sets_non_integral_overlap_tau_rejected(engine):
    with pytest.raises(ValueError, match="must be integral"):
        engine.search(Query(backend="sets", payload=[1, 2], tau=2.5))


def test_sets_zero_tau_rejected_at_wire_decode_time():
    """The server rejects it as a 400 (WireFormatError), not a 500."""
    from repro.engine.wire import WireFormatError, decode_query

    with pytest.raises(WireFormatError, match="overlap threshold must be at least 1"):
        decode_query({"backend": "sets", "payload": [1, 2], "tau": 0})
    with pytest.raises(WireFormatError, match="Jaccard threshold"):
        decode_query({"backend": "sets", "payload": [1, 2], "tau": 0.0})


@pytest.mark.parametrize("name", ["hamming", "strings", "graphs"])
def test_distance_domains_accept_zero_tau(engine, query_payloads, name):
    """Distance 0 is a legitimate exact-match threshold outside ``sets``."""
    response = engine.search(
        Query(backend=name, payload=query_payloads[name][0], tau=0, algorithm="linear")
    )
    assert response.tau_effective == 0
