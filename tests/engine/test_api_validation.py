"""Query parameter validation: fail fast with clear messages, not in backends."""

from __future__ import annotations

import pytest

from repro.engine import Query


def test_query_needs_tau_or_k():
    with pytest.raises(ValueError, match="threshold tau, a result count k"):
        Query(backend="hamming", payload=[0, 1])


@pytest.mark.parametrize("k", [0, -1, -100])
def test_non_positive_k_rejected(k):
    with pytest.raises(ValueError, match="k must be at least 1"):
        Query(backend="hamming", payload=[0, 1], k=k)


@pytest.mark.parametrize("k", [2.0, 2.5, "3", True, [1]])
def test_non_int_k_rejected(k):
    with pytest.raises(ValueError, match="k must be an integer"):
        Query(backend="hamming", payload=[0, 1], k=k)


def test_nan_tau_rejected():
    with pytest.raises(ValueError, match="NaN"):
        Query(backend="hamming", payload=[0, 1], tau=float("nan"))


@pytest.mark.parametrize("tau", [float("inf"), float("-inf")])
def test_infinite_tau_rejected(tau):
    # -inf trips the negativity check, +inf the finiteness check; either
    # way the error is a clear ValueError, not an OverflowError deep in a
    # backend's int(tau).
    with pytest.raises(ValueError, match="finite|non-negative"):
        Query(backend="hamming", payload=[0, 1], tau=tau)


@pytest.mark.parametrize("tau", [-1, -0.5, -1e9])
def test_negative_tau_rejected(tau):
    with pytest.raises(ValueError, match="non-negative"):
        Query(backend="hamming", payload=[0, 1], tau=tau)


@pytest.mark.parametrize("tau", ["0.8", [1], True])
def test_non_numeric_tau_rejected(tau):
    with pytest.raises(ValueError, match="tau must be a number"):
        Query(backend="hamming", payload=[0, 1], tau=tau)


@pytest.mark.parametrize("chain_length", [0, -3])
def test_non_positive_chain_length_rejected(chain_length):
    with pytest.raises(ValueError, match="chain_length must be at least 1"):
        Query(backend="hamming", payload=[0, 1], tau=2, chain_length=chain_length)


@pytest.mark.parametrize("chain_length", [2.5, "2", True])
def test_non_int_chain_length_rejected(chain_length):
    with pytest.raises(ValueError, match="chain_length must be an integer"):
        Query(backend="hamming", payload=[0, 1], tau=2, chain_length=chain_length)


def test_valid_boundary_values_accepted():
    Query(backend="hamming", payload=[0, 1], tau=0)  # exact match search
    Query(backend="hamming", payload=[0, 1], k=1)
    Query(backend="sets", payload=[1, 2], tau=0.8, chain_length=1)


def test_numpy_scalars_accepted():
    import numpy as np

    query = Query(backend="hamming", payload=[0, 1], tau=np.int64(4), k=np.int64(3))
    assert query.tau == 4
    assert query.k == 3
