"""Replicated shards: failover, self-healing, read-your-writes, rolling compaction.

Every test runs against a real ``ShardedEngine`` with ``replicas > 1`` --
one single-worker process pool per replica sharing the shard's WAL lineage
-- because the properties under test are all about what happens *between*
processes: a SIGKILLed replica must be invisible to readers (transparent
failover), the supervisor must respawn it and readmit it only once its
``applied_seq`` caught up with the WAL, and a rolling compaction must keep
the write path live while each replica drains in turn.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.common import diag
from repro.engine import Query, build_shards
from repro.engine.replication import CATCHING_UP, DEAD, LIVE, REPLICA_STATES, RESPAWNING
from repro.engine.sharding import ShardedEngine, ShardWorkerError
from repro.engine.wire import format_session, merge_session, parse_session
from tests.engine.test_mutation import (
    _assert_matches_rebuild,
    _initial_records,
    _record_pool,
)
from tests.engine.test_wal import _apply_batched_mutations

DOMAIN = "sets"


def _replicated(tmp_path, datasets, replicas: int = 2, shards: int = 2) -> ShardedEngine:
    directory = str(tmp_path / "shards")
    wal_dir = str(tmp_path / "wal")
    build_shards(DOMAIN, datasets[DOMAIN], directory, shards)
    return ShardedEngine(directory, wal_dir=wal_dir, replicas=replicas)


def _replica_pid(engine: ShardedEngine, shard_id: int, replica: int) -> int:
    entry = engine.replica_status()[shard_id]["replicas"][replica]
    assert entry["pid"] is not None
    return entry["pid"]


def _wait_until(predicate, timeout: float = 20.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Construction rules and status surfaces
# ---------------------------------------------------------------------------


def test_replicas_require_a_wal_lineage(tmp_path, datasets):
    directory = str(tmp_path / "shards")
    build_shards(DOMAIN, datasets[DOMAIN], directory, 2)
    with pytest.raises(ValueError, match="wal_dir"):
        ShardedEngine(directory, replicas=2)
    with pytest.raises(ValueError, match="replicas"):
        ShardedEngine(directory, replicas=0)


def test_replica_status_reports_every_replica(tmp_path, datasets):
    with _replicated(tmp_path, datasets) as engine:
        assert engine.num_replicas == 2
        status = engine.replica_status()
        assert [entry["shard_id"] for entry in status] == [0, 1]
        for entry in status:
            assert entry["num_replicas"] == 2
            assert entry["wal_last_seq"] == 0
            assert len(entry["replicas"]) == 2
            for replica in entry["replicas"]:
                assert replica["state"] in REPLICA_STATES
                assert replica["state"] == LIVE
                assert replica["pid"] is not None
                assert replica["applied_seq"] == 0
                assert replica["generation"] == 0


def test_replicated_answers_match_single_replica(tmp_path, datasets, query_payloads, taus):
    directory = str(tmp_path / "shards")
    build_shards(DOMAIN, datasets[DOMAIN], directory, 2)
    with ShardedEngine(directory) as single:
        with ShardedEngine(
            directory, wal_dir=str(tmp_path / "wal"), replicas=2
        ) as replicated:
            for payload in query_payloads[DOMAIN]:
                query = Query(backend=DOMAIN, payload=payload, tau=taus[DOMAIN])
                assert replicated.search(query).ids == single.search(query).ids
                topk = Query(backend=DOMAIN, payload=payload, k=5)
                assert replicated.search(topk).ids == single.search(topk).ids


# ---------------------------------------------------------------------------
# Transparent failover: a SIGKILLed replica is invisible to readers
# ---------------------------------------------------------------------------


def test_search_survives_replica_kill_transparently(tmp_path, datasets, query_payloads, taus):
    with _replicated(tmp_path, datasets) as engine:
        query = Query(
            backend=DOMAIN, payload=query_payloads[DOMAIN][0], tau=taus[DOMAIN]
        )
        healthy = engine.search(query).ids
        os.kill(_replica_pid(engine, 0, 0), signal.SIGKILL)
        # No user-visible error: the routed call retries on the sibling.
        for _ in range(4):
            assert engine.search(query).ids == healthy
        assert engine.stats.snapshot()["per_shard"][0]["failovers"] >= 1


def test_writes_survive_replica_kill(tmp_path, datasets, query_payloads):
    rng = random.Random(3)
    records = dict(enumerate(_initial_records(DOMAIN, datasets)))
    with _replicated(tmp_path, datasets) as engine:
        records = _apply_batched_mutations(engine, DOMAIN, records, rng, datasets, num_batches=4)
        os.kill(_replica_pid(engine, 0, 0), signal.SIGKILL)
        # Writes keep landing: the dead replica is dropped from the fan-out
        # and the batch still reaches the WAL through the survivor.
        records = _apply_batched_mutations(engine, DOMAIN, records, rng, datasets, num_batches=4)
        _assert_matches_rebuild(engine, None, DOMAIN, query_payloads[DOMAIN], records)


def test_supervisor_respawns_and_readmits_at_caught_up_seq(
    tmp_path, datasets, query_payloads
):
    rng = random.Random(29)
    records = dict(enumerate(_initial_records(DOMAIN, datasets)))
    with _replicated(tmp_path, datasets) as engine:
        records = _apply_batched_mutations(engine, DOMAIN, records, rng, datasets, num_batches=6)
        victim = _replica_pid(engine, 0, 0)
        os.kill(victim, signal.SIGKILL)
        # More acked writes while the replica is down: the respawned worker
        # must replay past the container checkpoint to the WAL head.
        records = _apply_batched_mutations(engine, DOMAIN, records, rng, datasets, num_batches=4)

        def healed() -> bool:
            entry = engine.shard_health()[0]
            return entry["live_replicas"] == entry["num_replicas"] == 2

        assert _wait_until(healed), engine.replica_status()
        entry = engine.replica_status()[0]
        for replica in entry["replicas"]:
            assert replica["state"] == LIVE
            assert replica["applied_seq"] == entry["wal_last_seq"]
        # Exactly one replica was respawned (a new generation, a new pid).
        generations = sorted(r["generation"] for r in entry["replicas"])
        assert generations == [0, 1]
        assert victim not in [r["pid"] for r in entry["replicas"]]
        _assert_matches_rebuild(engine, None, DOMAIN, query_payloads[DOMAIN], records)


def test_all_replicas_dead_surfaces_structured_error(tmp_path, datasets, taus, query_payloads):
    with _replicated(tmp_path, datasets) as engine:
        engine._supervisor.stop()  # hold the failure open: no background heal
        for replica in range(2):
            os.kill(_replica_pid(engine, 1, replica), signal.SIGKILL)
        query = Query(
            backend=DOMAIN, payload=query_payloads[DOMAIN][0], tau=taus[DOMAIN]
        )
        with pytest.raises(ShardWorkerError, match="shard 1") as info:
            engine.search(query)
        assert info.value.shard_id == 1


# ---------------------------------------------------------------------------
# Health grading: degraded (some replicas down) vs failing (none left)
# ---------------------------------------------------------------------------


def test_shard_health_grades_degraded_then_failing(tmp_path, datasets):
    with _replicated(tmp_path, datasets) as engine:
        engine._supervisor.stop()
        assert all(e["status"] in ("ok", "idle") for e in engine.shard_health())
        os.kill(_replica_pid(engine, 0, 0), signal.SIGKILL)
        # SIGKILL delivery is asynchronous; poll until the OS reports it.
        assert _wait_until(lambda: engine.shard_health()[0]["status"] == "degraded")
        assert engine.shard_health()[0]["live_replicas"] == 1
        os.kill(_replica_pid(engine, 0, 1), signal.SIGKILL)
        assert _wait_until(lambda: engine.shard_health()[0]["status"] == "failing")
        assert engine.shard_health()[0]["live_replicas"] == 0


# ---------------------------------------------------------------------------
# Read-your-writes: session tokens constrain routing
# ---------------------------------------------------------------------------


def test_session_token_round_trip():
    assert format_session({"0": 5, "1": 3}) == "0:5,1:3"
    assert format_session({"1": 3, "0": 5}) == "0:5,1:3"  # sorted by shard
    assert format_session({"0": None, "1": 7}) == "1:7"
    assert format_session({}) is None
    assert format_session(None) is None
    assert format_session(4) is None
    assert parse_session("0:5,1:3") == {0: 5, 1: 3}
    assert parse_session(None) == {}
    # Tolerance: malformed fragments constrain nothing, they never 400.
    assert parse_session("junk,0:2,:,-1:9,0:x") == {0: 2}
    assert merge_session("0:5,1:3", "0:2,2:9") == "0:5,1:3,2:9"
    assert merge_session(None, "0:1") == "0:1"
    assert merge_session(None, None) is None


def test_mutations_return_a_session_token(tmp_path, datasets):
    with _replicated(tmp_path, datasets) as engine:
        outcome = engine.mutate(
            DOMAIN, [{"op": "upsert", "record": [1, 2, 3]}], "wal"
        )
        token = format_session(outcome["wal_seq"])
        assert token is not None
        floors = parse_session(token)
        assert floors and all(seq >= 1 for seq in floors.values())


def test_routing_skips_replicas_behind_the_session_floor(tmp_path, datasets):
    with _replicated(tmp_path, datasets) as engine:
        engine.mutate(DOMAIN, [{"op": "upsert", "record": [9, 9]}], "wal")
        rset = engine._sets[0]
        ahead, behind = rset.replicas
        behind.applied_seq = 0  # pretend this replica lags the write
        ahead.applied_seq = 5
        for _ in range(8):
            picked = rset._pick(min_seq=5)
            rset._release(picked)
            assert picked is ahead
        # A floor nobody meets degrades to the most-caught-up live replica
        # (serving slightly stale beats refusing to serve).
        picked = rset._pick(min_seq=10)
        rset._release(picked)
        assert picked is ahead


def test_search_accepts_session_tokens(tmp_path, datasets, query_payloads, taus):
    with _replicated(tmp_path, datasets) as engine:
        outcome = engine.mutate(DOMAIN, [{"op": "delete", "id": 0}], "wal")
        token = format_session(outcome["wal_seq"])
        query = Query(
            backend=DOMAIN,
            payload=query_payloads[DOMAIN][0],
            tau=taus[DOMAIN],
            session=token,
        )
        response = engine.search(query)
        assert 0 not in response.ids  # the session query sees its own delete
        # Malformed tokens are advisory, never an error.
        junk = Query(
            backend=DOMAIN,
            payload=query_payloads[DOMAIN][0],
            tau=taus[DOMAIN],
            session="not-a-token",
        )
        assert engine.search(junk).ids == response.ids


# ---------------------------------------------------------------------------
# Zero-downtime rolling compaction
# ---------------------------------------------------------------------------


def test_rolling_compaction_keeps_writes_flowing(tmp_path, datasets, query_payloads):
    rng = random.Random(41)
    records = dict(enumerate(_initial_records(DOMAIN, datasets)))
    with _replicated(tmp_path, datasets) as engine:
        records = _apply_batched_mutations(engine, DOMAIN, records, rng, datasets, num_batches=6)

        stop = threading.Event()
        failures: list[BaseException] = []
        writes_during = [0]
        pool = _record_pool(DOMAIN, rng, datasets)
        lock = threading.Lock()

        def writer() -> None:
            try:
                while not stop.is_set():
                    record = next(pool)
                    with lock:
                        outcome = engine.mutate(DOMAIN, [{"op": "upsert", "record": record}])
                        assigned = outcome["results"][0]["id"]
                        records[assigned] = record
                        writes_during[0] += 1
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        thread = threading.Thread(target=writer, name="compaction-writer")
        thread.start()
        try:
            summaries = engine.compact()
        finally:
            time.sleep(0.1)
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive() and failures == []
        assert writes_during[0] > 0  # the write path never blocked for the duration
        for summary in summaries:
            assert summary["rolling"] is True
            assert summary["replicas_compacted"] == 2
        _assert_matches_rebuild(engine, None, DOMAIN, query_payloads[DOMAIN], records)
        # Both replicas are live and caught up after the rolling swap.
        for entry in engine.replica_status():
            for replica in entry["replicas"]:
                assert replica["state"] == LIVE
                assert replica["applied_seq"] == entry["wal_last_seq"]


def test_concurrent_compactions_of_one_shard_are_refused(tmp_path, datasets):
    with _replicated(tmp_path, datasets) as engine:
        rset = engine._sets[0]
        with rset._lock:
            rset._compacting = True
        try:
            with pytest.raises(RuntimeError, match="already in progress"):
                engine._compact_shard(0)
        finally:
            with rset._lock:
                rset._compacting = False


def test_compaction_checkpoint_truncates_the_shared_wal(
    tmp_path, datasets, query_payloads
):
    rng = random.Random(55)
    records = dict(enumerate(_initial_records(DOMAIN, datasets)))
    with _replicated(tmp_path, datasets) as engine:
        records = _apply_batched_mutations(engine, DOMAIN, records, rng, datasets, num_batches=8)
        before = [entry["wal_last_seq"] for entry in engine.replica_status()]
        engine.compact()
        for wal in engine._wals:
            assert wal is not None
            # Everything acked before the compaction was folded into the
            # swapped container, so the log holds no batch at or below the
            # checkpoint (numbering itself is preserved).
            assert all(batch.seq > 0 for batch in wal.batches())
            assert len(wal.batches()) == 0
        after = [entry["wal_last_seq"] for entry in engine.replica_status()]
        assert after == before  # truncation never rewinds the lineage
        _assert_matches_rebuild(engine, None, DOMAIN, query_payloads[DOMAIN], records)


# ---------------------------------------------------------------------------
# The supervisor primitive itself
# ---------------------------------------------------------------------------


def test_supervisor_ticks_and_records_errors():
    ticks = [0]
    boom = [False]

    def tick() -> None:
        if boom[0]:
            raise RuntimeError("induced")
        ticks[0] += 1

    supervisor = diag.Supervisor(tick, interval_s=0.01, name="test-supervisor")
    supervisor.start()
    supervisor.start()  # idempotent
    assert _wait_until(lambda: supervisor.status()["ticks"] >= 3, timeout=5.0)
    boom[0] = True
    assert _wait_until(lambda: supervisor.status()["errors"] >= 1, timeout=5.0)
    status = supervisor.status()
    assert status["running"] is True
    assert "induced" in status["last_error"]
    supervisor.stop()
    assert supervisor.status()["running"] is False
    supervisor.stop()  # idempotent

    with pytest.raises(ValueError, match="interval"):
        diag.Supervisor(tick, interval_s=0.0)


def test_supervisor_threads_profile_under_their_own_role():
    assert diag.thread_role("replica-supervisor") == "supervisor"
    assert diag.thread_role("supervisor") == "supervisor"


def test_replica_state_constants_are_closed():
    assert set(REPLICA_STATES) == {LIVE, DEAD, RESPAWNING, CATCHING_UP, "draining"}
