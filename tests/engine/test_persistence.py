"""Index containers: build once, save, reload, serve identical results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Query, SearchEngine, load_container
from repro.engine.persistence import save_container


@pytest.mark.parametrize("name", ["hamming", "sets", "strings", "graphs"])
def test_save_load_round_trip_serves_identical_results(
    tmp_path, engine, query_payloads, taus, name
):
    directory = str(tmp_path / name)
    engine.save_index(name, directory, queries=query_payloads[name])

    fresh = SearchEngine()
    container = fresh.load_index(directory)
    assert container.backend.name == name
    assert len(container.queries) == len(query_payloads[name])

    for payload, reloaded_payload in zip(query_payloads[name], container.queries):
        for algorithm in ("ring", "baseline", "linear"):
            built = engine.search(
                Query(backend=name, payload=payload, tau=taus[name], algorithm=algorithm)
            )
            reloaded = fresh.search(
                Query(
                    backend=name,
                    payload=reloaded_payload,
                    tau=taus[name],
                    algorithm=algorithm,
                )
            )
            assert sorted(built.ids) == sorted(reloaded.ids)


def test_hamming_partition_index_is_not_rebuilt(tmp_path, engine, datasets):
    """The persisted partition index reloads bit-identical from the container."""
    directory = str(tmp_path / "hamming")
    engine.save_index("hamming", directory)
    container = load_container(directory)
    original = engine.store("hamming").index
    restored = container.store.index
    for part in range(original.m):
        np.testing.assert_array_equal(original.distinct_codes(part), restored.distinct_codes(part))
        for position in range(len(original.distinct_codes(part))):
            np.testing.assert_array_equal(
                original.postings(part, position), restored.postings(part, position)
            )


def test_manifest_describes_container(tmp_path, engine):
    directory = str(tmp_path / "sets")
    manifest = engine.save_index("sets", directory)
    assert manifest["backend"] == "sets"
    assert manifest["descriptor"]["num_objects"] == len(engine.store("sets"))


def test_loading_a_non_container_fails(tmp_path):
    with pytest.raises(FileNotFoundError, match="manifest"):
        load_container(str(tmp_path))


def test_unsupported_format_version_rejected(tmp_path, engine):
    directory = str(tmp_path / "strings")
    engine.save_index("strings", directory)
    manifest_path = tmp_path / "strings" / "manifest.json"
    manifest_path.write_text(
        manifest_path.read_text().replace('"format_version": 1', '"format_version": 99')
    )
    with pytest.raises(ValueError, match="unsupported container format"):
        load_container(directory)


def test_save_container_without_queries(tmp_path):
    from repro.engine import get_backend
    from repro.strings import StringDataset

    backend = get_backend("strings")
    store = StringDataset(["alpha", "beta", "gamma"])
    save_container(backend, store, str(tmp_path / "s"))
    container = load_container(str(tmp_path / "s"))
    assert container.queries is None
    assert container.store.records == ["alpha", "beta", "gamma"]
