"""The batched mutation API: engine surface, wire schema v2, atomic saves.

`SearchEngine.mutate` applies a whole batch under one writer-lock pass and
acknowledges it with one WAL append; `upsert`/`delete` are one-op shims over
it, on the engine, the sharded engine, the HTTP server and the client alike.
The wire schema bumped to v2 for ``POST /mutate`` and the ``durability``
field; v1 bodies must keep decoding unchanged.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import Query, SearchEngine
from repro.engine.client import EngineClient
from repro.engine.persistence import atomic_write_json
from repro.engine.server import ServerConfig, ServerThread
from repro.engine.wire import (
    SUPPORTED_WIRE_SCHEMA_VERSIONS,
    WIRE_SCHEMA_VERSION,
    WireFormatError,
    decode_mutate,
    decode_query,
    decode_upsert,
    encode_mutate,
)

# ---------------------------------------------------------------------------
# Engine surface
# ---------------------------------------------------------------------------


def test_mutate_applies_a_batch_in_order(engine):
    outcome = engine.mutate(
        "sets",
        [
            {"op": "upsert", "record": [1, 2, 3]},
            {"op": "upsert", "record": [4, 5], "id": 0},
            {"op": "delete", "id": 1},
            {"op": "delete", "id": 10**6},
        ],
    )
    next_id = engine.delta("sets").next_id
    assert outcome["backend"] == "sets"
    assert outcome["results"] == [
        {"op": "upsert", "id": next_id - 1},
        {"op": "upsert", "id": 0},
        {"op": "delete", "id": 1, "deleted": True},
        {"op": "delete", "id": 10**6, "deleted": False},
    ]
    # No WAL attached: the batch is acknowledged at memory durability and
    # carries no log sequence number.
    assert outcome["durability"] == "memory"
    assert outcome["wal_seq"] is None
    info = engine.mutation_info("sets")
    assert info["delta_records"] == 2 and info["num_tombstones"] == 2


def test_mutate_validates_the_whole_batch_before_applying(engine):
    before = engine.mutation_info("sets")
    with pytest.raises(ValueError, match="empty"):
        engine.mutate("sets", [])
    with pytest.raises(ValueError, match="unknown mutation op"):
        engine.mutate("sets", [{"op": "replace", "record": [1]}])
    with pytest.raises(ValueError, match="delete ops require an id"):
        engine.mutate("sets", [{"op": "delete"}])
    with pytest.raises(ValueError, match="token"):
        # First op is fine, second is malformed: nothing may apply.
        engine.mutate("sets", [{"op": "upsert", "record": [1, 2]}, {"op": "upsert", "record": 9}])
    assert engine.mutation_info("sets") == before


def test_mutate_durability_levels(engine, tmp_path):
    with pytest.raises(ValueError, match="unknown durability"):
        engine.mutate("sets", [{"op": "delete", "id": 0}], durability="fsync")
    with pytest.raises(ValueError, match="requires a WAL"):
        engine.mutate("sets", [{"op": "delete", "id": 0}], durability="wal")
    engine.attach_wal("sets", str(tmp_path / "sets.wal"))
    relaxed = engine.mutate("sets", [{"op": "delete", "id": 0}], durability="memory")
    assert relaxed["durability"] == "memory" and relaxed["wal_seq"] == 1
    # With a WAL attached the default hardens to fsync-before-ack.
    strict = engine.mutate("sets", [{"op": "upsert", "record": [7, 8]}])
    assert strict["durability"] == "wal" and strict["wal_seq"] == 2
    info = engine.durability_info("sets")
    assert info["default_durability"] == "wal"
    assert info["wal"]["attached"] and info["wal"]["last_seq"] == 2


def test_upsert_and_delete_are_one_op_batches(engine):
    assigned = engine.upsert("strings", "shimmed")
    assert engine.delete("strings", assigned) is True
    counter = engine.stats.registry.get("engine_mutation_batches_total", backend="strings")
    assert counter is not None and counter.value >= 2


# ---------------------------------------------------------------------------
# Wire schema v2 + v1 back-compat
# ---------------------------------------------------------------------------


def test_mutate_wire_roundtrip():
    body = encode_mutate(
        "sets",
        [{"op": "upsert", "record": [3, 1, 2]}, {"op": "delete", "id": 4}],
        durability="memory",
    )
    assert body["schema_version"] == WIRE_SCHEMA_VERSION
    name, ops, durability = decode_mutate(body)
    assert name == "sets" and durability == "memory"
    assert ops[0]["op"] == "upsert" and ops[0]["id"] is None
    assert ops[1] == {"op": "delete", "id": 4}


def test_v1_bodies_still_decode():
    assert 1 in SUPPORTED_WIRE_SCHEMA_VERSIONS
    query = decode_query(
        {"schema_version": 1, "backend": "sets", "payload": [1, 2], "tau": 1}
    )
    assert query.tau == 1
    name, record, obj_id = decode_upsert(
        {"schema_version": 1, "backend": "sets", "record": [5, 6]}
    )
    assert name == "sets" and record == [5, 6] and obj_id is None
    # v1 predates /mutate, but a v1-stamped mutate body is a subset of v2
    # semantics and decodes the same way.
    name, ops, durability = decode_mutate(
        {"schema_version": 1, "backend": "sets", "ops": [{"op": "delete", "id": 0}]}
    )
    assert name == "sets" and durability is None and len(ops) == 1


def test_unsupported_schema_versions_are_rejected():
    with pytest.raises(WireFormatError, match="schema"):
        decode_query({"schema_version": 99, "backend": "sets", "payload": [1], "tau": 1})
    with pytest.raises(WireFormatError, match="schema"):
        decode_mutate({"schema_version": 99, "backend": "sets", "ops": [{"op": "delete", "id": 0}]})


def test_decode_mutate_names_the_bad_op_position():
    with pytest.raises(WireFormatError, match="non-empty"):
        decode_mutate({"backend": "sets", "ops": []})
    with pytest.raises(WireFormatError, match=r"ops\[1\]"):
        decode_mutate(
            {"backend": "sets", "ops": [{"op": "delete", "id": 0}, {"op": "merge"}]}
        )
    with pytest.raises(WireFormatError, match="durability"):
        decode_mutate(
            {"backend": "sets", "ops": [{"op": "delete", "id": 0}], "durability": "disk"}
        )


# ---------------------------------------------------------------------------
# POST /mutate over HTTP
# ---------------------------------------------------------------------------


def test_mutate_endpoint_and_client_shims(engine, tmp_path):
    engine.attach_wal("sets", str(tmp_path / "sets.wal"))
    with ServerThread(engine) as handle, EngineClient(handle.url) as client:
        outcome = client.mutate(
            "sets",
            # Tokens far outside the workload's vocabulary, so the threshold
            # answer below is exactly the new record.
            [{"op": "upsert", "record": [901, 902, 903]}, {"op": "delete", "id": 0}],
        )
        assert outcome["schema_version"] == WIRE_SCHEMA_VERSION
        assert outcome["durability"] == "wal" and outcome["wal_seq"] == 1
        assert outcome["results"][1] == {"op": "delete", "id": 0, "deleted": True}
        upserted = outcome["results"][0]["id"]
        assert client.search("sets", [901, 902, 903], tau=3).ids == [upserted]
        # One-op shims ride the same batch path end to end.
        assigned = client.upsert("sets", [1, 3, 5], durability="memory")
        assert client.delete("sets", assigned) is True


def test_mutate_endpoint_rejects_malformed_batches(engine):
    with ServerThread(engine) as handle, EngineClient(handle.url) as client:
        with pytest.raises(Exception, match="ops"):
            client.mutate("sets", [])


def test_server_config_sets_the_default_durability(engine, tmp_path):
    engine.attach_wal("sets", str(tmp_path / "sets.wal"))
    config = ServerConfig(durability="memory")
    with ServerThread(engine, config) as handle, EngineClient(handle.url) as client:
        # The request names no level; the server's configured default wins
        # over the engine's (which would harden to "wal").
        relaxed = client.mutate("sets", [{"op": "delete", "id": 1}])
        assert relaxed["durability"] == "memory"
        explicit = client.mutate("sets", [{"op": "delete", "id": 2}], durability="wal")
        assert explicit["durability"] == "wal"


def test_server_config_rejects_bad_durability():
    with pytest.raises(ValueError, match="durability"):
        ServerConfig(durability="disk")


# ---------------------------------------------------------------------------
# Atomic persistence: a failed save never corrupts the old container
# ---------------------------------------------------------------------------


def test_failed_save_leaves_the_old_container_intact(engine, tmp_path, monkeypatch):
    directory = str(tmp_path / "idx")
    engine.upsert("sets", [1, 2, 3])
    engine.save_index("sets", directory)
    before = SearchEngine()
    before.load_index(directory)
    baseline = before.mutation_info("sets")

    engine.upsert("sets", [4, 5, 6])
    import repro.engine.persistence as persistence

    real_replace = os.replace
    calls = {"n": 0}

    def failing_replace(src, dst):
        calls["n"] += 1
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(persistence.os, "replace", failing_replace)
    with pytest.raises(OSError, match="No space left"):
        engine.save_index("sets", directory)
    monkeypatch.setattr(persistence.os, "replace", real_replace)
    assert calls["n"] >= 1
    # Nothing was replaced and no temp files linger: the directory still
    # loads exactly the previously saved state.
    assert not [name for name in os.listdir(directory) if name.endswith(".tmp")]
    after = SearchEngine()
    after.load_index(directory)
    assert after.mutation_info("sets") == baseline


def test_atomic_write_json_cleans_up_its_temp_on_failure(tmp_path, monkeypatch):
    import repro.engine.persistence as persistence

    target = str(tmp_path / "doc.json")
    atomic_write_json(target, {"v": 1})

    def failing_replace(src, dst):
        raise OSError("injected")

    monkeypatch.setattr(persistence.os, "replace", failing_replace)
    with pytest.raises(OSError, match="injected"):
        atomic_write_json(target, {"v": 2})
    monkeypatch.undo()
    assert sorted(os.listdir(tmp_path)) == ["doc.json"]
    import json

    with open(target, encoding="utf-8") as handle:
        assert json.load(handle) == {"v": 1}


def test_search_answers_see_the_batch_immediately(engine):
    engine.mutate(
        "strings",
        [{"op": "upsert", "record": "needle", "id": 0}, {"op": "upsert", "record": "needlf"}],
    )
    response = engine.search(Query(backend="strings", payload="needle", tau=1))
    assert 0 in response.ids and len(response.ids) >= 2
