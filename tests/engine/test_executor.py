"""Query execution: batching, parallelism, the LRU cache, and statistics."""

from __future__ import annotations

import pytest

from repro.engine import Query, SearchEngine


def _workload_queries(query_payloads, taus, name, algorithm="ring"):
    return [
        Query(backend=name, payload=payload, tau=taus[name], algorithm=algorithm)
        for payload in query_payloads[name]
    ]


@pytest.mark.parametrize("name", ["hamming", "sets", "strings", "graphs"])
def test_batch_matches_sequential_execution(engine, query_payloads, taus, name):
    queries = _workload_queries(query_payloads, taus, name)
    sequential = [engine.search(query) for query in queries]
    engine.clear_cache()
    batched = engine.search_batch(queries)
    engine.clear_cache()
    parallel = engine.search_batch(queries, parallel=True, max_workers=4)
    for a, b, c in zip(sequential, batched, parallel):
        assert sorted(a.ids) == sorted(b.ids) == sorted(c.ids)


def test_parallel_batch_preserves_order(engine, query_payloads, taus):
    queries = _workload_queries(query_payloads, taus, "hamming")
    responses = engine.search_batch(queries, parallel=True, max_workers=3)
    for query, response in zip(queries, responses):
        assert response.query.payload is query.payload


def test_mixed_domain_batch(engine, query_payloads, taus):
    queries = [
        _workload_queries(query_payloads, taus, name)[0]
        for name in ("hamming", "sets", "strings", "graphs")
    ]
    responses = engine.search_batch(queries, parallel=True, max_workers=4)
    assert [response.query.backend for response in responses] == [
        "hamming",
        "sets",
        "strings",
        "graphs",
    ]


def test_lru_cache_hit_returns_same_results(engine, query_payloads, taus):
    query = _workload_queries(query_payloads, taus, "strings")[0]
    first = engine.search(query)
    second = engine.search(query)
    assert not first.cached
    assert second.cached
    assert second.ids == first.ids
    assert engine.stats.cache_hits == 1
    assert engine.stats.cache_misses == 1
    # Statistics count served (non-cached) queries only.
    assert engine.stats.num_queries == 1


def test_cache_distinguishes_parameters(engine, query_payloads):
    payload = query_payloads["hamming"][0]
    base = Query(backend="hamming", payload=payload, tau=8)
    engine.search(base)
    for other in (
        Query(backend="hamming", payload=payload, tau=9),
        Query(backend="hamming", payload=payload, tau=8, chain_length=2),
        Query(backend="hamming", payload=payload, tau=8, algorithm="baseline"),
    ):
        assert not engine.search(other).cached
    assert engine.search(base).cached


def test_cache_distinguishes_int_and_float_tau(engine, query_payloads):
    """For sets, tau=1 (overlap) and tau=1.0 (Jaccard) are different queries."""
    payload = query_payloads["sets"][0]
    engine.search(Query(backend="sets", payload=payload, tau=1))
    jacc = engine.search(Query(backend="sets", payload=payload, tau=1.0))
    assert not jacc.cached


def test_lru_eviction(datasets, query_payloads, taus):
    engine = SearchEngine(cache_size=1)
    engine.add_dataset("strings", datasets["strings"])
    queries = _workload_queries(query_payloads, taus, "strings")[:2]
    engine.search(queries[0])
    assert engine.search(queries[0]).cached
    engine.search(queries[1])  # evicts queries[0]
    assert not engine.search(queries[0]).cached


def test_cache_disabled(datasets, query_payloads, taus):
    engine = SearchEngine(cache_size=0)
    engine.add_dataset("strings", datasets["strings"])
    query = _workload_queries(query_payloads, taus, "strings")[0]
    engine.search(query)
    assert not engine.search(query).cached


def test_replacing_a_dataset_invalidates_its_cache(datasets, query_payloads, taus):
    from repro.strings import StringDataset

    engine = SearchEngine()
    engine.add_dataset("strings", datasets["strings"])
    query = _workload_queries(query_payloads, taus, "strings")[0]
    engine.search(query)
    engine.add_dataset("strings", StringDataset(["completely", "different"]))
    assert not engine.search(query).cached


def test_stats_aggregate_per_backend(engine, query_payloads, taus):
    for name in ("hamming", "sets"):
        engine.search_batch(_workload_queries(query_payloads, taus, name))
    stats = engine.stats
    assert set(stats.per_backend) == {"hamming", "sets"}
    hamming = stats.per_backend["hamming"]
    assert hamming.num_queries == len(query_payloads["hamming"])
    assert stats.engine_time > 0.0
    snapshot = stats.snapshot()
    assert snapshot["num_queries"] == stats.num_queries
    assert snapshot["per_backend"]["sets"]["num_queries"] == len(query_payloads["sets"])


def test_engine_results_match_direct_searchers(engine, datasets, query_payloads):
    """The engine is a serving layer: per-domain semantics are unchanged."""
    from repro.hamming import RingHammingSearcher

    searcher = RingHammingSearcher(datasets["hamming"], chain_length=3)
    for payload in query_payloads["hamming"]:
        direct = searcher.search(payload, 16)
        served = engine.search(Query(backend="hamming", payload=payload, tau=16, chain_length=3))
        assert served.ids == list(direct.results)
        assert served.num_candidates == direct.num_candidates


# ---------------------------------------------------------------------------
# Canonical cache keys: semantically equal payloads must share one entry
# ---------------------------------------------------------------------------


def test_cache_key_canonical_for_token_set_payloads(engine, query_payloads, taus):
    """list / set / frozenset / duplicated-token payloads hit one entry."""
    tokens = list(query_payloads["sets"][0])
    first = engine.search(Query(backend="sets", payload=tokens, tau=taus["sets"]))
    for variant in (set(tokens), frozenset(tokens), tokens + tokens[:1], tuple(tokens)):
        response = engine.search(Query(backend="sets", payload=variant, tau=taus["sets"]))
        assert response.cached, f"payload variant {type(variant).__name__} missed the cache"
        assert response.ids == first.ids


def test_cache_key_canonical_for_numpy_vector_payloads(engine, query_payloads, taus):
    import numpy as np

    vector = np.asarray(query_payloads["hamming"][0], dtype=np.uint8)
    first = engine.search(Query(backend="hamming", payload=vector, tau=taus["hamming"]))
    for variant in (
        [int(bit) for bit in vector],
        vector.astype(np.int64),
        vector.astype(bool),
    ):
        response = engine.search(Query(backend="hamming", payload=variant, tau=taus["hamming"]))
        assert response.cached, f"payload dtype {type(variant).__name__} missed the cache"
        assert response.ids == first.ids


def test_cache_key_canonical_for_graph_payloads(engine, query_payloads, taus):
    """The same graph assembled in a different insertion order must hit."""
    from repro.graphs.graph import Graph

    graph = query_payloads["graphs"][0]
    reordered = Graph()
    for vertex in reversed(graph.vertices):
        reordered.add_vertex(vertex, graph.vertex_label(vertex))
    for u, v, label in reversed(graph.edges()):
        reordered.add_edge(v, u, label)  # swapped endpoints: same edge
    first = engine.search(Query(backend="graphs", payload=graph, tau=taus["graphs"]))
    response = engine.search(Query(backend="graphs", payload=reordered, tau=taus["graphs"]))
    assert response.cached
    assert response.ids == first.ids


def test_cache_key_canonical_for_string_payloads(engine, query_payloads, taus):
    payload = query_payloads["strings"][0]
    first = engine.search(Query(backend="strings", payload=payload, tau=taus["strings"]))
    response = engine.search(Query(backend="strings", payload=str(payload), tau=taus["strings"]))
    assert response.cached
    assert response.ids == first.ids


# ---------------------------------------------------------------------------
# Cache invalidation: mutations and store replacement evict stale state
# ---------------------------------------------------------------------------


def test_mutation_evicts_stale_cached_responses(engine, query_payloads, taus):
    payload = query_payloads["strings"][0]
    query = Query(backend="strings", payload=payload, tau=taus["strings"])
    engine.search(query)
    assert engine.search(query).cached
    new_id = engine.upsert("strings", str(payload))  # an exact match, distance 0
    refreshed = engine.search(query)
    assert not refreshed.cached, "a cached Response survived an upsert"
    assert new_id in refreshed.ids
    engine.delete("strings", new_id)
    after_delete = engine.search(query)
    assert not after_delete.cached, "a cached Response survived a delete"
    assert new_id not in after_delete.ids


def test_mutation_keeps_other_backends_cached(engine, query_payloads, taus):
    """Invalidation is per backend, not a global cache wipe."""
    strings_query = Query(
        backend="strings", payload=query_payloads["strings"][0], tau=taus["strings"]
    )
    hamming_query = Query(
        backend="hamming", payload=query_payloads["hamming"][0], tau=taus["hamming"]
    )
    engine.search(strings_query)
    engine.search(hamming_query)
    engine.upsert("strings", "brand new record")
    assert not engine.search(strings_query).cached
    assert engine.search(hamming_query).cached


def test_store_replacement_evicts_responses_and_searchers(query_payloads, taus):
    """Replacing a dataset drops both cached Responses and stale searchers."""
    from repro.strings import StringDataset

    engine = SearchEngine(cache_size=32)
    engine.add_dataset("strings", StringDataset(["alpha", "beta", "gamma"], kappa=2))
    query = Query(backend="strings", payload="alpha", tau=0, algorithm="linear")
    assert engine.search(query).ids == [0]
    assert engine.search(query).cached
    engine.add_dataset("strings", StringDataset(["delta", "alpha"], kappa=2))
    refreshed = engine.search(query)
    # A stale searcher would still scan the old record list; a stale cache
    # entry would replay [0].  Both must be gone.
    assert not refreshed.cached
    assert refreshed.ids == [1]


def test_compaction_evicts_stale_searchers(engine, query_payloads, taus):
    """After compact the main store changed: searchers must be rebuilt."""
    payload = query_payloads["sets"][0]
    query = Query(backend="sets", payload=payload, tau=taus["sets"])
    before = engine.search(query)
    doomed = min(before.ids, default=0)
    engine.delete("sets", doomed)
    engine.compact("sets")
    after = engine.search(query)
    # Compaction shifts main positions: a stale searcher would emit wrong
    # ids, and a stale cache entry would replay the pre-delete answer.
    assert not after.cached
    assert doomed not in after.ids
    assert sorted(after.ids) == sorted(obj_id for obj_id in before.ids if obj_id != doomed)
