"""Top-k by adaptive threshold escalation, verified against brute force."""

from __future__ import annotations

import pytest

from repro.engine import Query
from repro.graphs.ged import graph_edit_distance
from repro.sets.similarity import jaccard
from repro.strings.edit_distance import edit_distance


def _assert_topk(response, brute_scores, k):
    """The returned scores must be exactly the k best brute-force scores."""
    assert len(response.ids) == k
    assert response.scores == sorted(response.scores)
    expected = sorted(brute_scores)[:k]
    assert response.scores == pytest.approx(expected)


@pytest.mark.parametrize("k", [1, 3, 10])
def test_hamming_topk_matches_brute_force(engine, datasets, query_payloads, k):
    payload = query_payloads["hamming"][0]
    response = engine.search(Query(backend="hamming", payload=payload, k=k))
    brute = datasets["hamming"].distances_to(payload).astype(float).tolist()
    _assert_topk(response, brute, k)
    # Every returned id carries its exact distance.
    for obj_id, score in zip(response.ids, response.scores):
        assert brute[obj_id] == score


@pytest.mark.parametrize("k", [1, 5])
def test_strings_topk_matches_brute_force(engine, datasets, query_payloads, k):
    payload = query_payloads["strings"][0]
    response = engine.search(Query(backend="strings", payload=payload, k=k))
    store = datasets["strings"]
    brute = [float(edit_distance(store.record(i), payload)) for i in range(len(store))]
    _assert_topk(response, brute, k)


@pytest.mark.parametrize("k", [1, 4])
def test_sets_topk_matches_brute_force(engine, datasets, query_payloads, k):
    payload = query_payloads["sets"][0]
    response = engine.search(Query(backend="sets", payload=payload, k=k))
    store = datasets["sets"]
    encoded = store.encode_query(payload)
    brute = [-jaccard(store.record(i), encoded) for i in range(len(store))]
    _assert_topk(response, brute, k)


def test_graphs_topk_is_correct_within_escalation_radius(engine, datasets, query_payloads):
    payload = query_payloads["graphs"][0]
    response = engine.search(Query(backend="graphs", payload=payload, k=2))
    store = datasets["graphs"]
    cap = int(response.tau_effective)
    brute = [
        float(graph_edit_distance(store.graph(i), payload, upper_bound=cap))
        for i in range(len(store))
    ]
    within = sorted(score for score in brute if score <= cap)
    assert response.scores == pytest.approx(within[: len(response.scores)])
    for obj_id, score in zip(response.ids, response.scores):
        assert brute[obj_id] == score


def test_topk_starting_tau_is_honoured(engine, query_payloads):
    """A query tau seeds the ladder; results are identical either way."""
    payload = query_payloads["hamming"][1]
    seeded = engine.search(Query(backend="hamming", payload=payload, tau=2, k=3))
    default = engine.search(Query(backend="hamming", payload=payload, k=3))
    assert seeded.scores == default.scores


def test_topk_larger_than_dataset(datasets):
    from repro.engine import SearchEngine

    engine = SearchEngine()
    engine.add_dataset("strings", datasets["strings"])
    n = len(datasets["strings"])
    response = engine.search(
        Query(backend="strings", payload=datasets["strings"].record(0), k=n + 10)
    )
    # The exhaustive final rung returns every record, ranked.
    assert len(response.ids) == n
    assert response.scores[0] == 0.0


def test_topk_responses_are_cached(engine, query_payloads):
    query = Query(backend="hamming", payload=query_payloads["hamming"][2], k=4)
    first = engine.search(query)
    second = engine.search(query)
    assert second.cached
    assert second.ids == first.ids
