"""Observability across the stack: traces, metrics, slow-query log, overhead."""

from __future__ import annotations

import json
import time
import timeit

import pytest

from repro.common import obs
from repro.common.obs import MetricsRegistry, span, span_tree_coverage
from repro.engine import (
    EngineClient,
    Query,
    SearchEngine,
    ServerConfig,
    ServerThread,
    ShardedEngine,
    build_shards,
)


def _find_spans(nodes, name):
    """Every span named ``name`` anywhere in a span forest."""
    found = []
    for node in nodes:
        if node.get("name") == name:
            found.append(node)
        found.extend(_find_spans(node.get("children", ()), name))
    return found


# ---------------------------------------------------------------------------
# in-process engine tracing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["hamming", "sets", "strings", "graphs"])
def test_traced_query_returns_span_tree(name, engine, query_payloads, taus):
    query = Query(
        backend=name, payload=query_payloads[name][0], tau=taus[name], trace_id="t-1"
    )
    response = engine.search(query)
    doc = response.trace
    assert doc is not None and doc["trace_id"] == "t-1"
    searcher = _find_spans(doc["spans"], "searcher")
    assert len(searcher) == 1
    stages = {child["name"] for child in searcher[0]["children"]}
    assert {"candidates", "verify"} <= stages
    # The searcher dominates an in-process query.
    assert searcher[0]["duration_ms"] <= doc["duration_ms"]


def test_untraced_query_has_no_trace(engine, query_payloads, taus):
    query = Query(backend="sets", payload=query_payloads["sets"][0], tau=taus["sets"])
    assert engine.search(query).trace is None


def test_tracing_does_not_change_answers(engine, query_payloads, taus):
    plain = Query(backend="strings", payload=query_payloads["strings"][0], tau=taus["strings"])
    traced = Query(
        backend="strings",
        payload=query_payloads["strings"][0],
        tau=taus["strings"],
        trace_id="t-2",
    )
    a = engine.search(plain)
    b = engine.search(traced)
    assert a.ids == b.ids
    assert a.num_candidates == b.num_candidates


def test_cache_hit_traces_fresh_and_never_serves_stale_timeline(
    engine, query_payloads, taus
):
    payload = query_payloads["sets"][1]
    first = engine.search(
        Query(backend="sets", payload=payload, tau=taus["sets"], trace_id="miss-id")
    )
    assert not first.cached and first.trace["trace_id"] == "miss-id"
    hit = engine.search(
        Query(backend="sets", payload=payload, tau=taus["sets"], trace_id="hit-id")
    )
    assert hit.cached
    # A fresh timeline for the hit, not a replay of the miss's trace.
    assert hit.trace["trace_id"] == "hit-id"
    assert _find_spans(hit.trace["spans"], "cache_hit")
    # An untraced request never inherits the cached response's timeline.
    assert engine.search(Query(backend="sets", payload=payload, tau=taus["sets"])).trace is None


def test_topk_rungs_nest_under_one_trace(engine, query_payloads):
    query = Query(
        backend="hamming", payload=query_payloads["hamming"][0], k=5, trace_id="topk-id"
    )
    response = engine.search(query)
    doc = response.trace
    assert doc["trace_id"] == "topk-id"
    rungs = [node for node in doc["spans"] if node["name"].startswith("rung[")]
    assert rungs, f"no rung spans in {[s['name'] for s in doc['spans']]}"
    # Every escalation rung ran inside this trace, not as nested trace docs.
    assert _find_spans(doc["spans"], "rank")


def test_engine_trace_ring_buffer(engine, query_payloads, taus):
    for i in range(3):
        engine.search(
            Query(
                backend="sets",
                payload=query_payloads["sets"][0],
                tau=taus["sets"],
                trace_id=f"ring-{i}",
            )
        )
    recent = engine.recent_traces(2)
    assert [doc["trace_id"] for doc in recent] == ["ring-2", "ring-1"]


def test_engine_metrics_wire_matches_stats(engine, query_payloads, taus):
    engine.reset_stats()
    for payload in query_payloads["sets"][:3]:
        engine.search(Query(backend="sets", payload=payload, tau=taus["sets"]))
    wire = engine.metrics_wire()
    registry = MetricsRegistry.merged([wire])
    assert registry.get("engine_queries_total").value == engine.stats.num_queries
    hist = registry.get("engine_query_seconds", backend="sets")
    assert hist is not None and hist.count == 3
    # Registry-derived quantiles are what /stats reports (satellite: one
    # bookkeeping path).
    snap = engine.stats.snapshot()
    assert snap["per_backend"]["sets"]["p50_ms"] == pytest.approx(
        engine.stats.per_backend["sets"].latency_quantile_ms(0.5)
    )
    assert hist.quantile(0.5) * 1000.0 == pytest.approx(snap["per_backend"]["sets"]["p50_ms"])


# ---------------------------------------------------------------------------
# sharded engine
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_sets(tmp_path_factory, datasets):
    directory = str(tmp_path_factory.mktemp("obs_shards") / "sets")
    build_shards("sets", datasets["sets"], directory, 2)
    with ShardedEngine(directory) as engine:
        yield engine


def test_sharded_trace_embeds_per_shard_stage_spans(sharded_sets, query_payloads, taus):
    query = Query(
        backend="sets",
        payload=query_payloads["sets"][0],
        tau=taus["sets"],
        trace_id="sh-1",
    )
    response = sharded_sets.search(query)
    doc = response.trace
    assert doc["trace_id"] == "sh-1" and doc["name"] == "sharded"
    fanout = _find_spans(doc["spans"], "fanout")
    assert len(fanout) == 1
    shard_spans = [
        child for child in fanout[0]["children"] if child["name"].startswith("shard[")
    ]
    assert len(shard_spans) == 2
    for shard_span in shard_spans:
        assert _find_spans(shard_span["children"], "candidates")
        assert _find_spans(shard_span["children"], "verify")
    assert _find_spans(doc["spans"], "merge")
    assert doc["trace_id"] == sharded_sets.recent_traces(1)[0]["trace_id"]


def test_sharded_metrics_merge_worker_registries(sharded_sets, query_payloads, taus):
    sharded_sets.reset_stats()
    queries = [
        Query(backend="sets", payload=payload, tau=taus["sets"])
        for payload in query_payloads["sets"][:4]
    ]
    for query in queries:
        sharded_sets.search(query)
    registry = MetricsRegistry.merged([sharded_sets.metrics_wire()])
    assert registry.get("sharded_queries_total").value == len(queries)
    # Every query fans out to both shard workers; the merged histogram saw
    # every worker-side sample (satellite: merged == unsharded observer).
    assert registry.get("engine_queries_total").value >= 2 * len(queries)
    hist = registry.get("engine_query_seconds", backend="sets")
    assert hist.count >= 2 * len(queries)
    assert hist.quantile(0.95) >= hist.quantile(0.5) >= 0.0
    per_shard = sharded_sets.stats.snapshot()["per_shard"]
    assert sum(entry["worker_errors"] for entry in per_shard) == 0


# ---------------------------------------------------------------------------
# served stack
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served(datasets):
    engine = SearchEngine(cache_size=0)
    for name, dataset in datasets.items():
        engine.add_dataset(name, dataset)
    with ServerThread(engine, ServerConfig(max_wait_ms=1.0)) as handle:
        yield handle


@pytest.fixture()
def client(served):
    with EngineClient(served.url) as c:
        yield c


def test_served_trace_spans_cover_request_latency(client, query_payloads, taus):
    """Acceptance: coalesce wait + batch exec account for the e2e latency."""
    best = 0.0
    for payload in query_payloads["sets"][:5]:
        response = client.search("sets", payload, tau=taus["sets"], trace=True)
        doc = response.trace
        assert doc is not None and doc["name"] == "request"
        names = [node["name"] for node in doc["spans"]]
        assert names == ["coalesce_wait", "batch_exec"]
        engine_spans = _find_spans(doc["spans"], "engine")
        assert engine_spans and _find_spans(engine_spans[0]["children"], "searcher")
        best = max(best, span_tree_coverage(doc))
    assert best >= 0.95, f"span coverage {best:.3f} < 0.95"


def test_served_trace_id_header_threads_through(client, query_payloads, taus):
    response = client.search(
        "sets", query_payloads["sets"][0], tau=taus["sets"], trace_id="my-id-42"
    )
    assert response.trace["trace_id"] == "my-id-42"
    # And it is retrievable from the server's debug ring.
    traces = client.traces()["traces"]
    assert "my-id-42" in [doc["trace_id"] for doc in traces]


def test_untraced_served_response_carries_no_trace(client, query_payloads, taus):
    response = client.search("sets", query_payloads["sets"][0], tau=taus["sets"])
    assert response.trace is None
    assert "trace" not in response.raw


def test_metrics_endpoint_is_monotone_prometheus(client, query_payloads, taus):
    def scrape() -> dict[str, float]:
        samples = {}
        for line in client.metrics().splitlines():
            if line.startswith("#") or not line.strip():
                continue
            # Traced histograms may append an OpenMetrics exemplar.
            name, _, value = obs.strip_exemplar(line).rpartition(" ")
            samples[name] = float(value)
        return samples

    before = scrape()
    assert any(key.startswith("http_requests_total") for key in before)
    for payload in query_payloads["sets"][:3]:
        client.search("sets", payload, tau=taus["sets"])
    after = scrape()
    for key, value in before.items():
        if "_total" in key or "_count" in key or "_bucket" in key:
            assert after.get(key, 0.0) >= value, f"{key} went backwards"
    key = 'http_requests_total{route="/search"}'
    assert after[key] >= before.get(key, 0.0) + 3
    # The engine's registry is merged into the same exposition.
    assert any(key.startswith("engine_query_seconds_count") for key in after)


def test_served_2shard_trace_and_error_trace_id(tmp_path, datasets, query_payloads, taus):
    directory = str(tmp_path / "shards")
    build_shards("sets", datasets["sets"], directory, 2)
    engine = ShardedEngine(directory)
    try:
        with ServerThread(engine, ServerConfig(max_wait_ms=1.0)) as handle:
            with EngineClient(handle.url) as client:
                response = client.search(
                    "sets", query_payloads["sets"][0], tau=taus["sets"], trace=True
                )
                doc = response.trace
                shard_spans = _find_spans(doc["spans"], "shard[0]")
                assert shard_spans and _find_spans(doc["spans"], "shard[1]")
                assert _find_spans(doc["spans"], "candidates")
                assert span_tree_coverage(doc) > 0.5
                # Kill the workers underneath the server: the 5xx payload
                # must carry the request's trace id (satellite 2).
                engine.close()
                status, data, _retry = client._raw_request(
                    "POST",
                    "/search",
                    {
                        "backend": "sets",
                        "payload": list(query_payloads["sets"][0]),
                        "tau": taus["sets"],
                    },
                    headers={"X-Trace-Id": "err-id-7"},
                )
                assert status in (500, 503)
                body = json.loads(data.decode("utf-8"))
                assert body["trace_id"] == "err-id-7"
                metrics = client.metrics()
                assert "server_errors_total" in metrics
    finally:
        engine.close()


def test_slow_query_log_records_served_queries(tmp_path, datasets, query_payloads, taus):
    engine = SearchEngine(cache_size=0)
    engine.add_dataset("sets", datasets["sets"])
    log_path = tmp_path / "slow.jsonl"
    config = ServerConfig(max_wait_ms=1.0, slow_query_ms=0.0, slow_query_log=str(log_path))
    with ServerThread(engine, config) as handle:
        with EngineClient(handle.url) as client:
            response = client.search("sets", query_payloads["sets"][0], tau=taus["sets"])
            # slow_query_ms forces tracing even without an X-Trace header.
            assert response.trace is not None
    entries = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert len(entries) == 1
    entry = entries[0]
    assert entry["route"] == "/search" and entry["backend"] == "sets"
    assert entry["trace_id"] == entry["trace"]["trace_id"]
    assert _find_spans(entry["trace"]["spans"], "batch_exec")
    assert entry["num_candidates"] >= entry["num_results"]


# ---------------------------------------------------------------------------
# disabled-path overhead
# ---------------------------------------------------------------------------


def test_disabled_tracing_overhead_is_negligible(datasets, query_payloads, taus):
    """Satellite: tracing off must cost <2% of an uncached query."""
    per_span_s = min(timeit.repeat(lambda: span("x"), number=20000, repeat=5)) / 20000
    engine = SearchEngine(cache_size=0)
    engine.add_dataset("sets", datasets["sets"])
    query = Query(backend="sets", payload=query_payloads["sets"][0], tau=taus["sets"])
    engine.search(query)  # warm
    latencies = []
    for _ in range(7):
        start = time.perf_counter()
        engine.search(query)
        latencies.append(time.perf_counter() - start)
    typical = sorted(latencies)[len(latencies) // 2]
    # Generous bound: far more guard checks per query than the pipeline has.
    assert 16 * per_span_s < 0.02 * typical, (
        f"no-op span costs {per_span_s * 1e9:.0f} ns; 16 of them exceed 2% "
        f"of a {typical * 1e3:.3f} ms query"
    )
