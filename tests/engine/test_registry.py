"""Registry registration/lookup across the four backends."""

from __future__ import annotations

import pytest

from repro.engine import (
    Backend,
    Query,
    SearchEngine,
    available_backends,
    get_backend,
    register_backend,
)


def test_all_four_domains_registered():
    assert available_backends() == ["graphs", "hamming", "sets", "strings"]


@pytest.mark.parametrize("name", ["hamming", "sets", "strings", "graphs"])
def test_lookup_returns_named_backend(name):
    backend = get_backend(name)
    assert isinstance(backend, Backend)
    assert backend.name == name
    assert {"ring", "baseline", "linear"} <= set(backend.algorithms)


def test_unknown_backend_raises_with_known_names():
    with pytest.raises(KeyError, match="hamming"):
        get_backend("vectors")


def test_duplicate_registration_rejected_unless_replaced():
    backend = get_backend("hamming")
    with pytest.raises(ValueError, match="already registered"):
        register_backend(backend)
    assert register_backend(backend, replace=True) is backend


def test_engine_tracks_attached_backends(datasets):
    engine = SearchEngine()
    assert engine.attached_backends() == []
    engine.add_dataset("strings", datasets["strings"])
    assert engine.attached_backends() == ["strings"]
    with pytest.raises(KeyError, match="no dataset attached"):
        engine.store("hamming")


def test_query_without_attached_dataset_fails(query_payloads):
    engine = SearchEngine()
    with pytest.raises(KeyError, match="no dataset attached"):
        engine.search(Query(backend="hamming", payload=query_payloads["hamming"][0], tau=4))


def test_unknown_algorithm_rejected(engine, query_payloads):
    query = Query(backend="hamming", payload=query_payloads["hamming"][0], tau=4, algorithm="faiss")
    with pytest.raises(ValueError, match="does not implement"):
        engine.search(query)


def test_query_validation():
    with pytest.raises(ValueError, match="tau"):
        Query(backend="hamming", payload=None)
    with pytest.raises(ValueError, match="k must be"):
        Query(backend="hamming", payload=None, k=0)


def test_raw_datasets_are_prepared(workloads):
    """Backends wrap raw inputs (arrays, lists of records) into stores."""
    engine = SearchEngine()
    engine.add_dataset("hamming", workloads["hamming"].vectors)
    engine.add_dataset("sets", workloads["sets"].records)
    engine.add_dataset("strings", workloads["strings"].records)
    engine.add_dataset("graphs", workloads["graphs"].graphs)
    assert engine.attached_backends() == ["graphs", "hamming", "sets", "strings"]
    for name in engine.attached_backends():
        descriptor = engine.backend(name).describe(engine.store(name))
        assert descriptor["num_objects"] > 0
