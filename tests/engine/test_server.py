"""The HTTP serving layer: wire equality, batching, backpressure, drain."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.engine import (
    EngineClient,
    Query,
    RequestError,
    Response,
    SearchEngine,
    ServerBusyError,
    ServerConfig,
    ServerThread,
    ServerUnavailableError,
    ShardedEngine,
    asearch,
    build_shards,
)
from repro.engine.wire import WireFormatError, decode_query, encode_query

ALL_DOMAINS = ["hamming", "sets", "strings", "graphs"]


@pytest.fixture(scope="module")
def reference(datasets):
    engine = SearchEngine(cache_size=0)
    for name, dataset in datasets.items():
        engine.add_dataset(name, dataset)
    return engine


@pytest.fixture(scope="module")
def served(datasets):
    """One live HTTP server over all four domains, shared by the module."""
    engine = SearchEngine(cache_size=0)
    for name, dataset in datasets.items():
        engine.add_dataset(name, dataset)
    with ServerThread(engine, ServerConfig(max_wait_ms=1.0)) as handle:
        yield handle


@pytest.fixture()
def client(served):
    with EngineClient(served.url) as c:
        yield c


# ---------------------------------------------------------------------------
# Wire codec round trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_DOMAINS)
def test_wire_query_round_trip(name, query_payloads, taus, reference):
    query = Query(backend=name, payload=query_payloads[name][0], tau=taus[name])
    decoded = decode_query(encode_query(query))
    assert decoded.backend == name
    assert decoded.tau == taus[name]
    # The round-tripped payload answers identically to the original.
    assert reference.search(decoded).ids == reference.search(query).ids


def test_wire_preserves_int_float_tau_distinction():
    body = encode_query(Query(backend="sets", payload=[1, 2], tau=1))
    assert isinstance(decode_query(body).tau, int)
    body = encode_query(Query(backend="sets", payload=[1, 2], tau=1.0))
    assert isinstance(decode_query(body).tau, float)


@pytest.mark.parametrize(
    "body, match",
    [
        ([1, 2, 3], "JSON object"),
        ({"backend": "nope", "payload": [], "tau": 1}, "unknown backend"),
        ({"backend": "sets", "tau": 1}, "missing 'payload'"),
        ({"backend": "sets", "payload": "xyz", "tau": 1}, "payload"),
        ({"backend": "sets", "payload": [1], "tau": 1, "k": "five"}, "k must be"),
        ({"backend": "sets", "payload": [1], "tau": float("nan")}, "NaN"),
        ({"backend": "sets", "payload": [1], "tau": -2}, "non-negative"),
        ({"backend": "sets", "payload": [1]}, "threshold tau"),
        ({"backend": "sets", "payload": [1], "tau": 1, "algorithm": "gph"}, "algorithm"),
        ({"backend": "sets", "payload": [1], "tau": 1, "schema_version": 99}, "schema"),
    ],
)
def test_wire_decode_rejects_malformed_bodies(body, match):
    with pytest.raises(WireFormatError, match=match):
        decode_query(body)


# ---------------------------------------------------------------------------
# Served results are byte-identical to the in-process engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_DOMAINS)
def test_served_threshold_identical_to_in_process(
    name, served, reference, query_payloads, taus
):
    with EngineClient(served.url) as client:
        for payload in query_payloads[name]:
            local = reference.search(Query(backend=name, payload=payload, tau=taus[name]))
            wire = client.search(name, payload, tau=taus[name])
            assert wire.ids == [int(obj_id) for obj_id in local.ids]
            assert wire.scores is None
            assert wire.tau_effective == local.tau_effective
            assert wire.num_candidates == local.num_candidates


@pytest.mark.parametrize("name", ALL_DOMAINS)
def test_served_topk_identical_to_in_process(name, served, reference, query_payloads, taus):
    k = 2 if name == "graphs" else 5
    with EngineClient(served.url) as client:
        for payload in query_payloads[name][:2]:
            local = reference.search(
                Query(backend=name, payload=payload, tau=taus[name], k=k)
            )
            wire = client.search_topk(name, payload, k=k, tau=taus[name])
            assert wire.ids == [int(obj_id) for obj_id in local.ids]
            assert wire.scores == [float(score) for score in local.scores]
            assert wire.tau_effective == local.tau_effective


def test_asearch_matches_blocking_client(served, client, query_payloads, taus):
    payload = query_payloads["strings"][0]
    blocking = client.search("strings", payload, tau=taus["strings"])
    coro = asearch(served.url, "strings", payload, tau=taus["strings"])
    async_response = asyncio.run(coro)
    assert async_response.ids == blocking.ids
    assert async_response.tau_effective == blocking.tau_effective


# ---------------------------------------------------------------------------
# Introspection endpoints
# ---------------------------------------------------------------------------


def test_healthz_reports_ok(client):
    body = client.healthz()
    assert body["status"] == "ok"
    assert body["engine"] == "SearchEngine"


def test_manifest_describes_all_backends(client, datasets):
    body = client.manifest()
    assert set(body["backends"]) == set(ALL_DOMAINS)
    descriptor = body["backends"]["hamming"]["descriptor"]
    assert descriptor["num_objects"] == len(datasets["hamming"])
    assert "default_tau" in body["backends"]["sets"]


def test_stats_counts_requests_and_batches(served, client, query_payloads, taus):
    client.search("sets", query_payloads["sets"][0], tau=taus["sets"])
    body = client.stats()
    assert body["server"]["num_queries"] >= 1
    assert body["server"]["num_batches"] >= 1
    assert body["engine"]["num_queries"] >= 1
    assert body["config"]["max_pending"] == 256


# ---------------------------------------------------------------------------
# HTTP error taxonomy
# ---------------------------------------------------------------------------


def test_unknown_path_is_404(client):
    with pytest.raises(RequestError) as info:
        client._request("GET", "/nope")
    assert info.value.status == 404


def test_wrong_method_is_405(client):
    with pytest.raises(RequestError) as info:
        client._request("POST", "/healthz", {"x": 1})
    assert info.value.status == 405


def test_malformed_query_is_400_with_reason(client):
    with pytest.raises(RequestError, match="unknown backend") as info:
        client.search_wire({"backend": "nope", "payload": [], "tau": 1})
    assert info.value.status == 400


def test_topk_endpoint_requires_k(client, query_payloads, taus):
    body = encode_query(
        Query(backend="sets", payload=query_payloads["sets"][0], tau=taus["sets"])
    )
    with pytest.raises(RequestError, match="requires 'k'"):
        client.search_wire(body, topk=True)


def test_search_endpoint_rejects_k(client, query_payloads):
    body = encode_query(Query(backend="sets", payload=query_payloads["sets"][0], k=3))
    with pytest.raises(RequestError, match="topk"):
        client.search_wire(body)


def test_non_object_body_is_400(client):
    with pytest.raises(RequestError, match="JSON object"):
        client.search_wire([1, 2, 3])


def test_infinite_tau_is_400_not_500(served, client, query_payloads):
    # json.loads accepts the non-standard Infinity literal; the validator
    # must turn it into a 400, not an OverflowError-driven 500.
    body = {"backend": "hamming", "payload": [0, 1], "tau": float("inf")}
    with pytest.raises(RequestError, match="finite") as info:
        client.search_wire(body)
    assert info.value.status == 400
    assert served.server.stats.errors_internal == 0


def _raw_http(served, request: bytes) -> bytes:
    import socket as socket_module

    host, port = served.address
    with socket_module.create_connection((host, port), timeout=5) as sock:
        sock.sendall(request)
        sock.settimeout(5)
        chunks = []
        while True:
            try:
                chunk = sock.recv(4096)
            except TimeoutError:
                break
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def test_negative_content_length_is_400(served):
    reply = _raw_http(
        served,
        b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: -1\r\n"
        b"Connection: close\r\n\r\n",
    )
    assert reply.startswith(b"HTTP/1.1 400")
    assert b"Content-Length" in reply


def test_chunked_transfer_encoding_is_rejected(served):
    reply = _raw_http(
        served,
        b"POST /search HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n"
        b"Connection: close\r\n\r\n7b\r\n",
    )
    assert reply.startswith(b"HTTP/1.1 400")
    assert b"Transfer-Encoding" in reply


def test_unknown_paths_bucket_as_other_in_stats(served, client):
    for path in ("/nope", "/admin", "/x" * 10):
        with pytest.raises(RequestError):
            client._request("GET", path)
    per_endpoint = served.server.stats.snapshot()["per_endpoint"]
    known = {"other", "/search", "/search/topk", "/healthz", "/stats", "/manifest"}
    assert set(per_endpoint) <= known
    assert per_endpoint["other"] >= 3


# ---------------------------------------------------------------------------
# Micro-batch coalescing
# ---------------------------------------------------------------------------


def test_concurrent_queries_coalesce_into_batches(datasets, query_payloads, taus):
    engine = SearchEngine(cache_size=0)
    engine.add_dataset("sets", datasets["sets"])
    config = ServerConfig(max_batch_size=8, max_wait_ms=150.0)
    with ServerThread(engine, config) as handle:
        sizes: list[int] = []
        lock = threading.Lock()

        def one(payload):
            with EngineClient(handle.url) as client:
                response = client.search("sets", payload, tau=taus["sets"])
                with lock:
                    sizes.append(response.batch_size)

        payloads = (query_payloads["sets"] * 2)[:6]
        threads = [threading.Thread(target=one, args=(p,)) for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sizes) == 6
        # The 150 ms window lets concurrent queries ride one search_batch.
        assert max(sizes) >= 2
        snapshot = handle.server.stats.snapshot()
        assert snapshot["num_batches"] < snapshot["num_queries"]
        assert snapshot["max_batch_size"] == max(sizes)


class _BlockingEngine:
    """A stand-in engine whose batches block until released."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0

    def search_batch(self, queries):
        self.calls += 1
        assert self.release.wait(timeout=30.0)
        return [
            Response(query=query, ids=[], tau_effective=query.tau) for query in queries
        ]


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_backpressure_rejects_with_429_and_retry_after():
    engine = _BlockingEngine()
    config = ServerConfig(max_batch_size=1, max_wait_ms=0.0, max_pending=2)
    with ServerThread(engine, config) as handle:
        results = []

        def one():
            with EngineClient(handle.url) as client:
                results.append(client.search("sets", [1, 2], tau=1))

        threads = [threading.Thread(target=one) for _ in range(2)]
        threads[0].start()
        assert _wait_for(lambda: handle.server._in_flight == 1)
        threads[1].start()
        assert _wait_for(lambda: handle.server._in_flight == 2)

        # The admission bound is reached: the next query is turned away
        # immediately with a Retry-After hint, not queued.
        with EngineClient(handle.url) as client:
            with pytest.raises(ServerBusyError) as info:
                client.search("sets", [3], tau=1)
        assert info.value.retry_after is not None
        assert handle.server.stats.rejected_busy == 1

        engine.release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 2
        # Rejected requests never reached the engine.
        assert handle.server.stats.num_queries == 2


def test_graceful_drain_answers_in_flight_queries():
    engine = _BlockingEngine()
    config = ServerConfig(max_wait_ms=0.0)
    handle = ServerThread(engine, config).start()
    url = handle.url
    results = []

    def one():
        with EngineClient(url) as client:
            results.append(client.search("sets", [1], tau=1))

    worker = threading.Thread(target=one)
    worker.start()
    assert _wait_for(lambda: handle.server._in_flight == 1)

    stopper = threading.Thread(target=handle.stop)
    stopper.start()
    time.sleep(0.05)
    engine.release.set()  # the drain must wait for this query, then stop
    stopper.join(timeout=10)
    worker.join(timeout=10)
    assert not stopper.is_alive()
    assert len(results) == 1 and results[0].ids == []
    with pytest.raises((ConnectionError, OSError)):
        EngineClient(url, timeout=1.0).healthz()


def test_draining_server_rejects_new_queries_with_503():
    engine = _BlockingEngine()
    engine.release.set()
    with ServerThread(engine, ServerConfig(max_wait_ms=0.0)) as handle:
        with EngineClient(handle.url) as client:
            client.healthz()
            handle.server._draining = True
            with pytest.raises(ServerUnavailableError, match="draining"):
                client.search("sets", [1], tau=1)
            assert client.healthz()["status"] == "draining"
        handle.server._draining = False


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------


def test_load_bench_closed_and_open_loop(served, query_payloads, taus):
    from repro.engine import run_load_bench, wire_requests

    requests = wire_requests("sets", query_payloads["sets"], tau=taus["sets"], repeat=4)
    closed = run_load_bench(served.url, requests, concurrency=4, mode="closed")
    assert closed.num_ok == len(requests)
    assert closed.num_errors == 0
    assert closed.achieved_qps > 0
    assert closed.p50_ms <= closed.p95_ms <= closed.p99_ms <= closed.max_ms

    opened = run_load_bench(
        served.url, requests[:12], concurrency=4, mode="open", target_qps=300.0
    )
    assert opened.num_ok == 12
    assert opened.mode == "open"
    assert opened.target_qps == 300.0
    assert opened.achieved_qps > 0


def test_load_bench_topk_requests(served, reference, query_payloads):
    from repro.engine import run_load_bench, wire_requests

    payload = query_payloads["hamming"][0]
    requests = wire_requests("hamming", [payload], k=3, repeat=4)
    report = run_load_bench(served.url, requests, concurrency=2, topk=True)
    assert report.num_ok == 4
    local = reference.search(Query(backend="hamming", payload=payload, k=3))
    assert local.num_results == 3


def test_load_bench_rejects_bad_arguments(served):
    from repro.engine import run_load_bench

    with pytest.raises(ValueError, match="at least one request"):
        run_load_bench(served.url, [])
    with pytest.raises(ValueError, match="target_qps"):
        run_load_bench(served.url, [{"backend": "sets"}], mode="open")
    with pytest.raises(ValueError, match="mode"):
        run_load_bench(served.url, [{"backend": "sets"}], mode="looped")


# ---------------------------------------------------------------------------
# Sharded engine behind the server: a dead worker maps to 503
# ---------------------------------------------------------------------------


def test_dead_shard_worker_maps_to_503_without_wedging(tmp_path, datasets, taus):
    directory = str(tmp_path / "strings-shards")
    build_shards("strings", datasets["strings"], directory, 2)
    engine = ShardedEngine(directory)
    with ServerThread(engine, ServerConfig(max_wait_ms=0.0), own_engine=True) as handle:
        with EngineClient(handle.url) as client:
            ok = client.search("strings", datasets["strings"].record(0), tau=taus["strings"])
            assert ok.num_results >= 1  # the record itself matches at tau >= 0

            # Kill one shard's worker process out from under the engine.
            victim = next(iter(engine._pools[0]._processes))
            os.kill(victim, signal.SIGKILL)

            with pytest.raises(ServerUnavailableError, match="shard"):
                client.search("strings", datasets["strings"].record(0), tau=taus["strings"])

            # The batcher survives: health and stats still answer, and the
            # failure is accounted as unavailability, not a crash.  With no
            # replica left for shard 0, /healthz reports "failing" as a 503
            # so load balancers stop routing here.
            with pytest.raises(ServerUnavailableError):
                client.healthz()
            status, data, _retry = client._raw_request("GET", "/healthz")
            assert status == 503
            assert json.loads(data)["status"] == "failing"
            assert handle.server.stats.errors_unavailable >= 1
            with pytest.raises(ServerUnavailableError):
                client.search("strings", datasets["strings"].record(1), tau=taus["strings"])
