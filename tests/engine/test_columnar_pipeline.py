"""Property tests: the columnar pipeline is byte-identical to the scalar
searchers, for threshold and top-k queries, including after mutations.

The columnar searchers (served as algorithm ``ring``) must return exactly
the ids and scores the retained scalar pigeonring searchers (algorithm
``ring-scalar``) return, on randomised datasets across all four domains --
the scalar implementations are the reference oracles of the vectorised
kernels.  Hamming has no separate scalar retained (its ring path was always
vectorised), so it is checked against ``linear`` instead.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.binary import clustered_binary_workload
from repro.datasets.molecules import aids_like
from repro.datasets.text import name_workload
from repro.datasets.tokens import zipfian_set_workload
from repro.engine import Query, SearchEngine
from repro.graphs import ColumnarGraphSearcher, GraphDataset, RingGraphSearcher
from repro.hamming import BinaryVectorDataset
from repro.sets import ColumnarSetSearcher, RingSetSearcher, SetDataset
from repro.sets.similarity import JaccardPredicate, OverlapPredicate
from repro.strings import ColumnarStringSearcher, RingStringSearcher, StringDataset

#: The scalar reference algorithm per domain.
REFERENCE = {
    "hamming": "linear",
    "sets": "ring-scalar",
    "strings": "ring-scalar",
    "graphs": "ring-scalar",
}


@pytest.fixture(scope="module")
def workloads():
    return {
        "hamming": clustered_binary_workload(180, 64, 5, seed=31),
        "sets": zipfian_set_workload(250, 10, seed=32),
        "strings": name_workload(160, 8, seed=33),
        "graphs": aids_like(num_graphs=20, num_queries=3, seed=34),
    }


@pytest.fixture(scope="module")
def datasets(workloads):
    return {
        "hamming": BinaryVectorDataset(workloads["hamming"].vectors, num_parts=4),
        "sets": SetDataset(workloads["sets"].records, num_classes=4),
        "strings": StringDataset(workloads["strings"].records, kappa=2),
        "graphs": GraphDataset(workloads["graphs"].graphs),
    }


@pytest.fixture(scope="module")
def payloads(workloads):
    return {
        "hamming": [row for row in workloads["hamming"].queries],
        "sets": list(workloads["sets"].queries),
        "strings": list(workloads["strings"].queries),
        "graphs": list(workloads["graphs"].queries),
    }


TAUS = {"hamming": 14, "sets": 0.6, "strings": 2, "graphs": 3}
#: Graph top-k escalates an exponential-cost GED radius, so it gets a small
#: ``k`` and a single query to keep the suite fast.
TOPK = {"hamming": 5, "sets": 5, "strings": 5, "graphs": 2}


def topk_payloads(name, payloads):
    return payloads[name][:1] if name == "graphs" else payloads[name]


def fresh_engine(datasets, names=None):
    engine = SearchEngine(cache_size=0)
    for name in names or datasets:
        engine.add_dataset(name, datasets[name])
    return engine


# ---------------------------------------------------------------------------
# Direct searcher equivalence on randomised datasets
# ---------------------------------------------------------------------------


def test_sets_columnar_matches_scalar_on_random_datasets():
    rng = random.Random(91)
    for _ in range(6):
        records = [
            [rng.randint(0, 70) for _ in range(rng.randint(1, 16))]
            for _ in range(rng.randint(20, 150))
        ]
        dataset = SetDataset(records, num_classes=rng.choice([1, 2, 4]))
        for predicate in (
            OverlapPredicate(rng.randint(1, 4)),
            JaccardPredicate(rng.choice([0.4, 0.6, 0.8])),
        ):
            for chain_length in (1, 2, 3):
                scalar = RingSetSearcher(dataset, predicate, chain_length=chain_length)
                columnar = ColumnarSetSearcher(dataset, predicate, chain_length=chain_length)
                for _ in range(6):
                    query = [rng.randint(0, 80) for _ in range(rng.randint(1, 12))]
                    expected = scalar.search(query)
                    got = columnar.search(query)
                    # Identical candidate *set* and identical results; the
                    # columnar searcher emits both ascending.
                    assert got.candidates == sorted(expected.candidates)
                    assert got.results == sorted(expected.results)
                    assert set(got.results) <= set(got.candidates)


def test_strings_columnar_matches_scalar_on_random_datasets():
    rng = random.Random(92)
    alphabet = "abcdef"
    for _ in range(5):
        records = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 18)))
            for _ in range(rng.randint(20, 120))
        ]
        dataset = StringDataset(records, kappa=rng.choice([2, 3]))
        for tau in (1, 2, 3):
            scalar = RingStringSearcher(dataset, tau)
            columnar = ColumnarStringSearcher(dataset, tau)
            for _ in range(6):
                query = "".join(
                    rng.choice(alphabet + "gh") for _ in range(rng.randint(0, 16))
                )
                expected = scalar.search(query)
                got = columnar.search(query)
                # The columnar pipeline adds a complete content prefilter,
                # so its candidates are a subset -- results must be equal.
                assert set(got.candidates) <= set(expected.candidates)
                assert got.results == sorted(expected.results)


def test_graphs_columnar_matches_scalar(datasets, payloads):
    dataset = datasets["graphs"]
    for tau in (2, 3):
        scalar = RingGraphSearcher(dataset, tau)
        columnar = ColumnarGraphSearcher(dataset, tau)
        for query in payloads["graphs"]:
            expected = scalar.search(query)
            got = columnar.search(query)
            assert got.candidates == expected.candidates
            assert got.results == expected.results


# ---------------------------------------------------------------------------
# Engine-level equivalence: threshold and top-k
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_threshold_ids_byte_identical(name, datasets, payloads):
    engine = fresh_engine(datasets, [name])
    for payload in payloads[name]:
        ring = engine.search(Query(backend=name, payload=payload, tau=TAUS[name]))
        reference = engine.search(
            Query(backend=name, payload=payload, tau=TAUS[name], algorithm=REFERENCE[name])
        )
        assert sorted(ring.ids) == sorted(reference.ids)


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_topk_ids_and_scores_byte_identical(name, datasets, payloads):
    engine = fresh_engine(datasets, [name])
    for payload in topk_payloads(name, payloads):
        ring = engine.search(
            Query(backend=name, payload=payload, k=TOPK[name], tau=TAUS[name])
        )
        reference = engine.search(
            Query(
                backend=name,
                payload=payload,
                k=TOPK[name],
                tau=TAUS[name],
                algorithm=REFERENCE[name],
            )
        )
        assert ring.ids == reference.ids
        assert ring.scores == reference.scores


def test_sets_threshold_both_predicates(datasets, payloads):
    engine = fresh_engine(datasets, ["sets"])
    for tau in (0.7, 3):  # Jaccard float and overlap int
        for payload in payloads["sets"]:
            ring = engine.search(Query(backend="sets", payload=payload, tau=tau))
            reference = engine.search(
                Query(backend="sets", payload=payload, tau=tau, algorithm="ring-scalar")
            )
            assert sorted(ring.ids) == sorted(reference.ids)


# ---------------------------------------------------------------------------
# Mutations: delta records flow through the vectorised scan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["sets", "strings", "graphs", "hamming"])
def test_mutated_index_byte_identical_to_rebuild(name, datasets, payloads, workloads):
    engine = fresh_engine(datasets, [name])
    backend = engine.backend(name)
    store = engine.store(name)
    records = list(backend.store_records(store))
    rng = random.Random(77)
    # Upsert recycled records (fresh ids), overwrite one id, delete a few.
    for index in range(8):
        engine.upsert(name, records[rng.randrange(len(records))])
    engine.upsert(name, records[0], obj_id=1)
    for obj_id in (2, 5, len(records) + 2):
        engine.delete(name, obj_id)

    delta = engine.delta(name)
    live_ids, live_records = delta.live_records(backend.store_records(store))
    rebuilt = fresh_engine({}, [])
    rebuilt.add_dataset(name, backend.make_dataset(store, live_records))

    for payload in payloads[name]:
        for algorithm in ("ring", REFERENCE[name]):
            mutated = engine.search(
                Query(backend=name, payload=payload, tau=TAUS[name], algorithm=algorithm)
            )
            fresh = rebuilt.search(
                Query(backend=name, payload=payload, tau=TAUS[name], algorithm=algorithm)
            )
            expected = sorted(live_ids[position] for position in fresh.ids)
            assert mutated.ids == expected, (name, algorithm)
        # And the columnar path agrees with the scalar reference on the
        # mutated index (delta scan included) at threshold ...
        ring = engine.search(Query(backend=name, payload=payload, tau=TAUS[name]))
        reference = engine.search(
            Query(backend=name, payload=payload, tau=TAUS[name], algorithm=REFERENCE[name])
        )
        assert ring.ids == reference.ids
    # ... and for top-k (escalation rungs walk the mutated ladder).
    for payload in topk_payloads(name, payloads):
        ring_topk = engine.search(
            Query(backend=name, payload=payload, k=TOPK[name], tau=TAUS[name])
        )
        reference_topk = engine.search(
            Query(
                backend=name,
                payload=payload,
                k=TOPK[name],
                tau=TAUS[name],
                algorithm=REFERENCE[name],
            )
        )
        assert ring_topk.ids == reference_topk.ids
        assert ring_topk.scores == reference_topk.scores


# ---------------------------------------------------------------------------
# Pipeline stats: the funnel counters surface per backend
# ---------------------------------------------------------------------------


def test_engine_stats_report_filter_funnel(datasets, payloads):
    engine = fresh_engine(datasets, ["sets"])
    for payload in payloads["sets"]:
        engine.search(Query(backend="sets", payload=payload, tau=TAUS["sets"]))
    snapshot = engine.stats.snapshot()["per_backend"]["sets"]
    assert snapshot["avg_generated_candidates"] >= snapshot["avg_candidates"]
    assert snapshot["avg_candidates"] >= snapshot["avg_results"]
    assert snapshot["avg_candidate_time_ms"] >= 0.0
    assert snapshot["avg_verify_time_ms"] >= 0.0
