"""Smoke tests for the experiment harness and the per-figure runners."""

from repro.common.stats import QueryStats, SearchResult
from repro.experiments.figures import (
    figure2_rows,
    figure5_rows,
    figure6_rows,
    figure7_rows,
    figure8_rows,
    figure9_rows,
    figure10_rows,
    figure11_rows,
    figure12_rows,
)
from repro.experiments.harness import (
    ChainLengthRow,
    chain_length_rows,
    comparison_rows,
    format_rows,
    run_workload,
)


class TestHarness:
    def test_run_workload_aggregates(self):
        def fake_search(query):
            return SearchResult(results=[1], candidates=[1, 2, 3], candidate_time=0.01,
                                verify_time=0.02)

        stats = run_workload(fake_search, range(4))
        assert stats.num_queries == 4
        assert stats.avg_candidates == 3.0
        assert stats.avg_results == 1.0
        assert abs(stats.avg_total_time - 0.03) < 1e-9

    def test_query_stats_empty(self):
        stats = QueryStats()
        assert stats.avg_candidates == 0.0
        assert stats.avg_total_time == 0.0

    def test_chain_length_rows(self):
        def make(length):
            return lambda query: SearchResult(
                results=[0], candidates=list(range(10 - length)),
            )

        rows = chain_length_rows("toy", 5, [1, 2, 3], make, queries=[None, None])
        assert [row.chain_length for row in rows] == [1, 2, 3]
        assert rows[0].avg_candidates > rows[-1].avg_candidates

    def test_comparison_rows_and_formatting(self):
        searchers = {
            "a": lambda q: SearchResult(results=[], candidates=[1, 2]),
            "b": lambda q: SearchResult(results=[], candidates=[1]),
        }
        rows = comparison_rows("toy", 0.5, searchers, queries=[None])
        assert {row.algorithm for row in rows} == {"a", "b"}
        text = format_rows(rows)
        assert "algorithm" in text and "toy" in text

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_dataclass(self):
        row = ChainLengthRow("toy", 1.0, 2, 3.0, 1.0, 0.5, 0.9)
        assert "chain_length" in format_rows([row])


class TestFigureRunners:
    """Tiny-scale smoke runs of every figure; shapes and invariants only."""

    def test_figure2(self):
        rows = figure2_rows(chain_lengths=range(1, 4))
        assert len(rows) == 4 * 3
        assert all(row["fp_to_result_ratio"] >= 0 for row in rows)

    def test_figure5_and_9(self):
        rows5 = figure5_rows(taus=(24,), chain_lengths=(1, 2), scale=0.03, seed=3)
        assert len(rows5) == 2
        assert rows5[1].avg_candidates <= rows5[0].avg_candidates
        rows9 = figure9_rows(taus=(24,), chain_length=3, scale=0.03, seed=3)
        assert {row.algorithm for row in rows9} == {"GPH", "Ring"}

    def test_figure6_and_10(self):
        rows6 = figure6_rows(taus=(0.8,), chain_lengths=(1, 2), scale=0.05, seed=3)
        assert len(rows6) == 2
        rows10 = figure10_rows(taus=(0.8,), scale=0.05, seed=3)
        assert {row.algorithm for row in rows10} == {
            "AdaptSearch", "PartAlloc", "pkwise", "Ring",
        }

    def test_figure7_and_11(self):
        rows7 = figure7_rows(taus=(2,), chain_lengths=(1, 2), scale=0.05, seed=3)
        assert len(rows7) == 2
        rows11 = figure11_rows(taus=(2,), scale=0.05, seed=3)
        assert {row.algorithm for row in rows11} == {"Pivotal", "Ring"}

    def test_figure8_and_12(self):
        rows8 = figure8_rows(taus=(2,), chain_lengths=(1, 2), scale=0.2, seed=3)
        assert len(rows8) == 2
        rows12 = figure12_rows(taus=(2,), scale=0.2, seed=3)
        assert {row.algorithm for row in rows12} == {"Pars", "Ring"}
        by_algo = {row.algorithm: row for row in rows12}
        assert by_algo["Ring"].avg_candidates <= by_algo["Pars"].avg_candidates
