"""Tests for set similarity measures, token ordering and prefix computations."""

import pytest
from hypothesis import given, strategies as st

from repro.sets.prefix import class_counts, pkwise_prefix_length, standard_prefix_length
from repro.sets.similarity import JaccardPredicate, OverlapPredicate, jaccard, overlap
from repro.sets.tokens import TokenOrder
from repro.sets.verify import merge_overlap, overlap_at_least


class TestSimilarityFunctions:
    def test_overlap(self):
        assert overlap([1, 2, 3], [2, 3, 4]) == 2

    def test_jaccard(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 4)

    def test_jaccard_of_empty_sets(self):
        assert jaccard([], []) == 1.0

    def test_overlap_ignores_duplicates(self):
        assert overlap([1, 1, 2], [1, 2, 2]) == 2


class TestOverlapPredicate:
    def test_is_result(self):
        predicate = OverlapPredicate(2)
        assert predicate.is_result([1, 2, 3], [2, 3])
        assert not predicate.is_result([1, 2, 3], [3])

    def test_thresholds_are_constant(self):
        predicate = OverlapPredicate(5)
        assert predicate.pair_required_overlap(10, 20) == 5
        assert predicate.index_required_overlap(10) == 5
        assert predicate.query_required_overlap(20) == 5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            OverlapPredicate(0)


class TestJaccardPredicate:
    def test_equivalence_with_overlap(self):
        # J(x, q) >= tau <=> |x & q| >= tau/(1+tau) (|x|+|q|)
        predicate = JaccardPredicate(0.8)
        x = list(range(10))
        q = list(range(2, 12))
        required = predicate.pair_required_overlap(len(x), len(q))
        assert (overlap(x, q) >= required) == (jaccard(x, q) >= 0.8)

    def test_pair_required_overlap_value(self):
        predicate = JaccardPredicate(0.5)
        assert predicate.pair_required_overlap(9, 9) == 6

    def test_index_and_query_bounds_are_loosest(self):
        predicate = JaccardPredicate(0.7)
        for len_x in range(5, 40):
            loosest = predicate.index_required_overlap(len_x)
            low, high = predicate.length_bounds(len_x)
            for len_q in range(low, min(high, 60) + 1):
                assert predicate.pair_required_overlap(len_x, len_q) >= loosest

    def test_length_bounds(self):
        predicate = JaccardPredicate(0.8)
        low, high = predicate.length_bounds(20)
        assert low == 16
        assert high == 25

    def test_is_result_boundary(self):
        predicate = JaccardPredicate(0.5)
        assert predicate.is_result([1, 2], [1, 2, 3, 4])  # J = 0.5 exactly

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            JaccardPredicate(0.0)
        with pytest.raises(ValueError):
            JaccardPredicate(1.5)


class TestTokenOrder:
    RECORDS = [[1, 2, 3], [2, 3], [3], [3, 4]]

    def test_rarest_tokens_rank_first(self):
        order = TokenOrder(self.RECORDS)
        # Frequencies: 3 -> 4, 2 -> 2, 1 -> 1, 4 -> 1.
        assert order.rank(3) == order.universe_size - 1
        assert order.rank(1) < order.rank(2) < order.rank(3)

    def test_encode_sorts_by_rank(self):
        order = TokenOrder(self.RECORDS)
        encoded = order.encode([3, 1, 2])
        assert encoded == sorted(encoded)
        assert len(encoded) == 3

    def test_unseen_tokens_rank_after_universe(self):
        order = TokenOrder(self.RECORDS)
        assert order.rank(999) >= order.universe_size

    def test_classes_round_robin(self):
        order = TokenOrder(self.RECORDS, num_classes=2)
        assert order.token_class(0) == 1
        assert order.token_class(1) == 2
        assert order.token_class(2) == 1

    def test_classes_require_configuration(self):
        order = TokenOrder(self.RECORDS)
        with pytest.raises(ValueError):
            order.token_class(0)

    def test_negative_classes_rejected(self):
        with pytest.raises(ValueError):
            TokenOrder(self.RECORDS, num_classes=-1)


class TestStandardPrefix:
    def test_basic_value(self):
        assert standard_prefix_length(10, 7) == 4

    def test_unreachable_overlap_gives_zero(self):
        assert standard_prefix_length(5, 7) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            standard_prefix_length(-1, 2)
        with pytest.raises(ValueError):
            standard_prefix_length(5, 0)

    def test_prefix_filter_guarantee(self):
        # If two records overlap in >= t tokens, their standard prefixes share
        # at least one token.
        x = list(range(10))
        q = list(range(3, 13))
        t = 7
        px = standard_prefix_length(len(x), t)
        pq = standard_prefix_length(len(q), t)
        assert overlap(x, q) >= t
        assert set(x[:px]) & set(q[:pq])


class TestPkwisePrefix:
    def test_matches_standard_prefix_for_one_class(self):
        # With a single class (k = 1) the pkwise prefix is the standard prefix.
        classes = [1] * 12
        assert pkwise_prefix_length(classes, 1, 9) == standard_prefix_length(12, 9)

    def test_longer_than_standard_prefix(self):
        classes = [1, 2, 1, 2, 1, 2, 1, 2, 1, 2]
        assert pkwise_prefix_length(classes, 2, 8) >= standard_prefix_length(10, 8)

    def test_budget_counts_classes_correctly(self):
        # Classes 1,2: the first class-2 token contributes nothing; the second
        # one starts contributing.
        classes = [2, 2, 2, 1]
        # target = 4 - 2 + 1 = 3: contributions are 0,1,1,1 -> prefix 4.
        assert pkwise_prefix_length(classes, 2, 2) == 4

    def test_stalled_budget_returns_full_length(self):
        # Every class has fewer tokens than its index: budget can never cover.
        classes = [2, 3, 4]
        assert pkwise_prefix_length(classes, 4, 1) == 3

    def test_unreachable_overlap_gives_zero(self):
        assert pkwise_prefix_length([1, 2, 1], 2, 5) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pkwise_prefix_length([1], 0, 1)
        with pytest.raises(ValueError):
            pkwise_prefix_length([1], 1, 0)
        with pytest.raises(ValueError):
            pkwise_prefix_length([3], 2, 1)

    def test_class_counts(self):
        assert class_counts([1, 2, 2, 1], 3, 2) == [0, 1, 2]

    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=30),
    )
    def test_prefix_is_at_least_standard(self, classes, required):
        if required > len(classes):
            return
        pk = pkwise_prefix_length(classes, 4, required)
        std = standard_prefix_length(len(classes), required)
        assert pk >= std


class TestVerification:
    def test_merge_overlap(self):
        assert merge_overlap([1, 3, 5, 7], [3, 4, 5, 6, 7]) == 3

    def test_overlap_at_least_true(self):
        assert overlap_at_least([1, 3, 5, 7], [3, 4, 5], 2)

    def test_overlap_at_least_early_stop(self):
        assert not overlap_at_least([1, 2, 3], [4, 5, 6], 1)
        assert not overlap_at_least([1, 2, 3], [3, 4, 5], 2)

    def test_zero_requirement_is_trivially_true(self):
        assert overlap_at_least([], [], 0)

    @given(
        st.lists(st.integers(0, 50), max_size=30),
        st.lists(st.integers(0, 50), max_size=30),
        st.integers(0, 10),
    )
    def test_overlap_at_least_matches_merge(self, x, q, required):
        x = sorted(set(x))
        q = sorted(set(q))
        assert overlap_at_least(x, q, required) == (merge_overlap(x, q) >= required)
