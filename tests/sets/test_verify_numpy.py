"""The numpy fast path of the set verifiers must agree with the merge."""

import random

import numpy as np

from repro.sets.verify import NUMPY_CROSSOVER, merge_overlap, overlap_at_least


def test_numpy_path_agrees_with_scalar_merge():
    rng = random.Random(9)
    for _ in range(300):
        x = sorted(rng.sample(range(200), rng.randint(0, 80)))
        q = sorted(rng.sample(range(200), rng.randint(0, 80)))
        expected = len(set(x) & set(q))
        arrays = (np.asarray(x, dtype=np.int64), np.asarray(q, dtype=np.int64))
        assert merge_overlap(x, q) == expected
        assert merge_overlap(*arrays) == expected
        for required in (0, 1, expected, expected + 1, 200):
            assert overlap_at_least(x, q, required) == (expected >= required)
            assert overlap_at_least(*arrays, required) == (expected >= required)


def test_short_arrays_stay_on_the_scalar_merge():
    # Below the crossover the scalar merge runs even for ndarray inputs;
    # both paths must of course agree.
    x = np.asarray(range(0, NUMPY_CROSSOVER - 2), dtype=np.int64)
    q = np.asarray(range(5, NUMPY_CROSSOVER + 3), dtype=np.int64)
    expected = len(set(x.tolist()) & set(q.tolist()))
    assert merge_overlap(x, q) == expected
    assert overlap_at_least(x, q, expected)
    assert not overlap_at_least(x, q, expected + 1)
