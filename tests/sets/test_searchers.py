"""Correctness and containment tests for the set similarity searchers."""

import pytest

from repro.datasets.tokens import zipfian_set_workload
from repro.sets.adaptsearch import AdaptSearchSearcher
from repro.sets.dataset import SetDataset
from repro.sets.linear import LinearSetSearcher
from repro.sets.partalloc import PartAllocSearcher
from repro.sets.pkwise import PkwiseSearcher
from repro.sets.ring import RingSetSearcher
from repro.sets.similarity import JaccardPredicate, OverlapPredicate


@pytest.fixture(scope="module")
def workload():
    return zipfian_set_workload(
        num_records=300,
        num_queries=12,
        universe_size=800,
        avg_size=20,
        size_spread=8,
        skew=1.2,
        duplicate_fraction=0.5,
        noise_fraction=0.15,
        seed=7,
    )


@pytest.fixture(scope="module")
def dataset(workload):
    return SetDataset(workload.records, num_classes=4)


JACCARD_TAUS = (0.6, 0.7, 0.8, 0.9)


def ground_truth(dataset, predicate, query):
    return sorted(LinearSetSearcher(dataset, predicate).search(query).results)


class TestExactnessJaccard:
    @pytest.mark.parametrize("tau", JACCARD_TAUS)
    @pytest.mark.parametrize("chain_length", (1, 2, 3, 5))
    def test_ring_matches_linear_scan(self, workload, dataset, tau, chain_length):
        predicate = JaccardPredicate(tau)
        searcher = RingSetSearcher(dataset, predicate, chain_length=chain_length)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, predicate, query
            )

    @pytest.mark.parametrize("tau", JACCARD_TAUS)
    def test_pkwise_matches_linear_scan(self, workload, dataset, tau):
        predicate = JaccardPredicate(tau)
        searcher = PkwiseSearcher(dataset, predicate)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, predicate, query
            )

    @pytest.mark.parametrize("tau", JACCARD_TAUS)
    def test_adaptsearch_matches_linear_scan(self, workload, dataset, tau):
        predicate = JaccardPredicate(tau)
        searcher = AdaptSearchSearcher(dataset, predicate)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, predicate, query
            )

    @pytest.mark.parametrize("tau", JACCARD_TAUS)
    def test_partalloc_matches_linear_scan(self, workload, dataset, tau):
        predicate = JaccardPredicate(tau)
        searcher = PartAllocSearcher(dataset, predicate)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, predicate, query
            )

    def test_queries_have_results(self, workload, dataset):
        # The workload is built so high-similarity queries are not all empty.
        predicate = JaccardPredicate(0.6)
        total = sum(
            len(ground_truth(dataset, predicate, query)) for query in workload.queries
        )
        assert total > 0


class TestExactnessOverlap:
    @pytest.mark.parametrize("tau", (5, 10, 15))
    @pytest.mark.parametrize("chain_length", (1, 2, 3))
    def test_ring_matches_linear_scan(self, workload, dataset, tau, chain_length):
        predicate = OverlapPredicate(tau)
        searcher = RingSetSearcher(dataset, predicate, chain_length=chain_length)
        for query in workload.queries:
            assert sorted(searcher.search(query).results) == ground_truth(
                dataset, predicate, query
            )


class TestCandidateContainment:
    @pytest.mark.parametrize("tau", (0.7, 0.8))
    def test_ring_candidates_subset_of_pkwise(self, workload, dataset, tau):
        predicate = JaccardPredicate(tau)
        pkwise = PkwiseSearcher(dataset, predicate)
        for chain_length in (2, 3):
            ring = RingSetSearcher(dataset, predicate, chain_length=chain_length)
            for query in workload.queries:
                assert set(ring.candidates(query)) <= set(pkwise.candidates(query))

    def test_chain_length_one_equals_pkwise(self, workload, dataset):
        predicate = JaccardPredicate(0.8)
        pkwise = PkwiseSearcher(dataset, predicate)
        ring = RingSetSearcher(dataset, predicate, chain_length=1)
        for query in workload.queries:
            assert set(ring.candidates(query)) == set(pkwise.candidates(query))

    def test_candidates_contain_results(self, workload, dataset):
        predicate = JaccardPredicate(0.7)
        ring = RingSetSearcher(dataset, predicate, chain_length=2)
        for query in workload.queries:
            outcome = ring.search(query)
            assert set(outcome.results) <= set(outcome.candidates)

    def test_ring_reduces_candidates_on_average(self, workload, dataset):
        predicate = JaccardPredicate(0.7)
        pkwise = PkwiseSearcher(dataset, predicate)
        ring = RingSetSearcher(dataset, predicate, chain_length=2)
        pkwise_total = sum(len(pkwise.candidates(q)) for q in workload.queries)
        ring_total = sum(len(ring.candidates(q)) for q in workload.queries)
        assert ring_total <= pkwise_total


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            SetDataset([])

    def test_invalid_num_classes(self, workload):
        with pytest.raises(ValueError):
            SetDataset(workload.records[:5], num_classes=0)

    def test_invalid_chain_length(self, dataset):
        with pytest.raises(ValueError):
            RingSetSearcher(dataset, JaccardPredicate(0.8), chain_length=0)

    def test_invalid_partalloc_parts(self, dataset):
        with pytest.raises(ValueError):
            PartAllocSearcher(dataset, JaccardPredicate(0.8), num_parts=0)

    def test_chain_length_clamped(self, dataset):
        searcher = RingSetSearcher(dataset, JaccardPredicate(0.8), chain_length=50)
        assert searcher.chain_length == dataset.num_classes + 1


class TestTinyRecordsEdgeCases:
    """Small records at low thresholds exercise the stall / fallback paths."""

    RECORDS = [
        [1, 2],
        [1, 2, 3],
        [4, 5, 6, 7],
        [1, 2, 3, 4, 5, 6],
        [8],
        [9, 10, 11],
        [1, 3, 5, 7, 9],
        [2, 4, 6, 8, 10],
    ]

    @pytest.mark.parametrize("tau", (0.3, 0.5, 0.7, 1.0))
    @pytest.mark.parametrize("chain_length", (1, 2, 3))
    def test_exactness_on_tiny_records(self, tau, chain_length):
        dataset = SetDataset(self.RECORDS, num_classes=4)
        predicate = JaccardPredicate(tau)
        ring = RingSetSearcher(dataset, predicate, chain_length=chain_length)
        for query in self.RECORDS + [[1, 2, 3, 4], [7, 8], [12, 13]]:
            expected = ground_truth(dataset, predicate, query)
            assert sorted(ring.search(query).results) == expected

    @pytest.mark.parametrize("tau", (1, 2, 3))
    def test_exactness_on_tiny_records_overlap(self, tau):
        dataset = SetDataset(self.RECORDS, num_classes=3)
        predicate = OverlapPredicate(tau)
        ring = RingSetSearcher(dataset, predicate, chain_length=2)
        for query in self.RECORDS:
            expected = ground_truth(dataset, predicate, query)
            assert sorted(ring.search(query).results) == expected
