"""Cross-domain benchmark suite: all four backends at 1/2/4 shards.

For every domain (Hamming, sets, strings, graphs) this runner

1. builds a synthetic workload with the backend's ``make_workload``,
2. answers it once through an in-process ``SearchEngine`` (the correctness
   reference),
3. builds a sharded index at each shard count and serves the workload
   through a ``ShardedEngine`` (one worker process per shard), measuring
   throughput and p50/p95 latency with ``repro.engine.bench``,
4. checks the sharded answers equal the reference answers exactly,
5. (unless ``--no-served``) starts the HTTP serving layer as a real
   subprocess (``python -m repro.engine serve``) over each domain's index
   and drives it with the closed-loop load generator at concurrency 1 and
   8, recording achieved QPS, p50/p95/p99 latency and the observed
   micro-batch coalescing under a ``served`` section,
6. (unless ``--no-mutation``) replays the query workload while a writer
   interleaves upserts and deletes, recording query latency and
   throughput **under write load** plus compaction cost under a
   ``mutation`` section -- and asserts that compaction changes no answer,
   and
7. (unless ``--no-pipeline``) runs the threshold workload through the
   columnar candidate pipeline (algorithm ``ring``) and the retained
   scalar searchers (``ring-scalar``) back to back on the same engine,
   recording per-algorithm throughput, the filter-vs-verify candidate
   funnel and per-stage timings under a ``pipeline`` section -- asserting
   the two return identical ids.  ``--pipeline-only`` runs just this
   section (the CI kernel micro-bench smoke), and
8. (unless ``--no-durability``) serves each domain with a write-ahead log
   attached and measures durable ingest over HTTP: single-op ``/upsert``
   at ``wal`` durability (one fsync per op) against ``/mutate`` batches at
   ``memory`` and ``wal`` (one fsync per batch), plus query p99 while
   background auto-compaction folds the delta store, under a
   ``durability`` section -- ``check_regression.py`` holds the batched
   ``wal`` path at or above the single-op rate, and
9. (unless ``--no-observability``) replays the threshold workload once
   with tracing off, once with a trace id threaded through every query,
   and once with the full diagnostics stack armed (continuous sampling
   profiler + tail sampler + span->metrics bridge), plus the latency of a
   ``GET /metrics`` scrape against a live server, under an
   ``observability`` section -- ``benchmarks/check_regression.py`` holds
   the tracing-off throughput within 5% of the ``pipeline`` section's
   ring throughput (the span instrumentation's disabled path must stay
   near-free) and the diagnostics-on overhead -- the best pairwise wall
   ratio against the interleaved tracing-on pass -- under 5% (profiling
   + tail sampling must be cheap enough to leave on in production), and
10. (unless ``--no-replication``) serves one representative domain's
    two-shard index through in-process engines at replication factor 1
    and 2, recording read QPS/latency per factor, the single-search
    failover cost and supervisor heal time after a SIGKILLed replica,
    and the writer-observed maximum op stall during a compaction, under
    a ``replication`` section -- ``check_regression.py`` requires the
    replicated answers to match the reference and the rolling-compaction
    stall to stay under half the compaction's own wall clock (the
    zero-downtime claim, measured rather than asserted).

The single schema-versioned report (``benchmarks/BENCH_all.json`` by
default) carries throughput, latency percentiles, merge overhead and
speedup-vs-1-shard per (domain, shard count), plus the hardware it was
measured on -- process-parallel speedups only materialise with more than
one CPU.  CI's ``bench-regression`` job replays the ``ci`` profile and
gates on ``benchmarks/check_regression.py``.

Run with:  PYTHONPATH=src python benchmarks/run_all.py --profile ci
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time

import repro
from repro.common import diag
from repro.common.stats import Timer
from repro.engine import Query, SearchEngine
from repro.engine.backend import get_backend
from repro.engine.bench import BENCH_SCHEMA_VERSION, run_bench, run_load_bench, wire_requests
from repro.engine.persistence import save_container
from repro.engine.sharding import ShardedEngine, build_shards

#: Workload sizes per profile.  ``ci`` is small enough for a pull-request
#: gate; ``full`` is the nightly / local deep-dive configuration.
PROFILES: dict[str, dict[str, dict]] = {
    "ci": {
        "hamming": dict(size=8000, num_queries=12, repeat=5, seed=101),
        "sets": dict(size=12000, num_queries=12, repeat=5, seed=102),
        "strings": dict(size=6000, num_queries=10, repeat=4, seed=103),
        "graphs": dict(size=120, num_queries=6, repeat=2, seed=104),
    },
    "full": {
        "hamming": dict(size=30000, num_queries=20, repeat=5, seed=101),
        "sets": dict(size=40000, num_queries=20, repeat=5, seed=102),
        "strings": dict(size=20000, num_queries=16, repeat=4, seed=103),
        "graphs": dict(size=300, num_queries=10, repeat=2, seed=104),
    },
}

DEFAULT_SHARD_COUNTS = (1, 2, 4)

#: Closed-loop request volume per served concurrency level, by profile.
SERVED_REQUESTS = {"ci": 120, "full": 600}
SERVED_CONCURRENCY = (1, 8)

#: Write rounds of the query-latency-under-write-load profile.  Each round
#: applies one upsert (and, every third round, one delete) and then replays
#: the whole query workload, so the delta store grows as the run proceeds.
MUTATION_ROUNDS = {"ci": 24, "full": 80}

#: Algorithms compared by the ``pipeline`` section; domains that retain no
#: scalar ring (Hamming was always vectorised) report only ``ring``.
PIPELINE_ALGORITHMS = ("ring", "ring-scalar")

#: Write volume of the ``durability`` section, per profile: single-op
#: upserts and ``/mutate`` batches both push this many ops per ack level.
DURABILITY_OPS = {"ci": 96, "full": 480}
DURABILITY_BATCH_SIZE = 16

#: The ``replication`` section measures the replication layer, not the
#: per-domain kernels, so one representative domain keeps the CI wall
#: clock bounded while still exercising the full replica fan-out.
REPLICATION_DOMAINS = ("sets",)
REPLICATION_SHARDS = 2
REPLICATION_FACTOR = 2


def bench_pipeline(name: str, config: dict) -> dict:
    """Columnar vs scalar threshold search on one in-process engine.

    Both algorithms answer the identical workload on the same store, so the
    throughput ratio is a same-hardware measurement of the columnar
    kernels; per-stage timings and the candidate funnel (generated ->
    verified -> results) come from the engine's per-backend stats.
    """
    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    engine = SearchEngine(cache_size=0)
    store = engine.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    algorithms = [
        algorithm for algorithm in PIPELINE_ALGORITHMS if algorithm in backend.algorithms
    ]
    section: dict = {
        "tau": tau,
        "num_objects": backend.store_size(store),
        "num_queries": len(payloads),
        "repeat": config["repeat"],
        "algorithms": {},
    }
    ids_by_algorithm: dict[str, list] = {}
    for algorithm in algorithms:
        queries = [
            Query(backend=name, payload=payload, tau=tau, algorithm=algorithm)
            for payload in payloads
        ]
        engine.search(queries[0])  # searcher construction is not serving
        engine.reset_stats()
        responses: list = []
        timer = Timer()
        for _ in range(config["repeat"]):
            responses = [engine.search(query) for query in queries]
        wall = timer.elapsed()
        stats = engine.stats.snapshot()["per_backend"][name]
        ids_by_algorithm[algorithm] = [
            sorted(int(obj_id) for obj_id in response.ids) for response in responses
        ]
        section["algorithms"][algorithm] = {
            "throughput_qps": config["repeat"] * len(queries) / wall if wall else 0.0,
            "avg_generated_candidates": stats["avg_generated_candidates"],
            "avg_verified_candidates": stats["avg_candidates"],
            "avg_results": stats["avg_results"],
            "avg_candidate_time_ms": stats["avg_candidate_time_ms"],
            "avg_verify_time_ms": stats["avg_verify_time_ms"],
        }
    if len(algorithms) > 1:
        section["results_agree"] = (
            ids_by_algorithm["ring"] == ids_by_algorithm["ring-scalar"]
        )
        scalar_qps = section["algorithms"]["ring-scalar"]["throughput_qps"]
        section["speedup_columnar_vs_scalar"] = (
            section["algorithms"]["ring"]["throughput_qps"] / scalar_qps if scalar_qps else 0.0
        )
    else:
        section["results_agree"] = True
    return section


def bench_observability(name: str, config: dict) -> dict:
    """Tracing-on vs tracing-off serving throughput for one domain.

    Both passes answer the identical workload on the same engine; the
    traced pass threads a trace id through every query, so the ratio is a
    same-hardware measurement of the span instrumentation.  The disabled
    path must stay near-free: ``check_regression.py`` gates
    ``tracing_off_qps`` against ``pipeline_ring_qps`` -- the
    pipeline-profile workload (algorithm pinned to ``ring``, no trace
    plumbing) re-measured *inside this section*, back to back with the
    off/on passes -- at 5%.  An in-section reference is the only way a
    5% throughput gate survives a shared runner: the ``pipeline``
    section proper runs minutes earlier, and sustained load drift
    between sections dwarfs any real instrumentation cost.  Today the
    untraced default dispatch and pinned ``ring`` coincide, so the gate
    is a sentinel; it starts biting when the default path diverges from
    pinned ``ring`` (e.g. a cost-based planner in front of dispatch).
    The hard bound on the disabled span guards themselves (<2% of a
    query) lives in the tier-1 micro-bench (tests/engine/test_obs.py).

    Each pass is timed individually and the best pass wins: a gated
    *ratio* must not inherit one GC pause or scheduler hiccup, which at
    ci scale (graphs: six ~14 ms queries per pass) would otherwise
    dominate the measurement.

    A third measured pass arms the full diagnostics stack -- the
    continuous sampling profiler, a 1%-budget tail sampler offered every
    trace, and the span->metrics bridge folding every span timeline into
    counters -- over the same traced workload, interleaved iteration by
    iteration with the tracing-on pass.  The gated statistic is
    ``diag_overhead_pct``, the best *pairwise* diag/traced wall ratio
    across the interleaved iterations: adjacent passes share the same
    milliseconds of machine state, so the ratio measures the hooks
    rather than runner load drift.  ``check_regression.py`` caps it at
    the same 5%: the always-on diagnostics posture must stay cheap
    enough, relative to the tracing that feeds it, to never turn off.
    """
    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    engine = SearchEngine(cache_size=0)
    store = engine.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    plain = [Query(backend=name, payload=payload, tau=tau) for payload in payloads]
    traced = [
        Query(backend=name, payload=payload, tau=tau, trace_id=f"bench-{index}")
        for index, payload in enumerate(payloads)
    ]
    reference = [
        Query(backend=name, payload=payload, tau=tau, algorithm="ring")
        for payload in payloads
    ]
    for query in plain:  # searcher construction / cold caches are not serving
        engine.search(query)
    # Gated few-percent ratios need more best-of draws than the ungated
    # sections: min-of-3 on a shared runner still carries ~10% of
    # scheduler noise, min-of-7 does not.
    repeat = max(7, config["repeat"])

    def best_pass(queries: list[Query]) -> tuple[float, list]:
        responses: list = []
        walls: list[float] = []
        for _ in range(repeat):
            timer = Timer()
            responses = [engine.search(query) for query in queries]
            walls.append(timer.elapsed())
        return min(walls), responses

    ref_wall, _ = best_pass(reference)
    off_wall, off_responses = best_pass(plain)

    # The tracing-on and diagnostics-on passes interleave inside one loop:
    # the gated diag-vs-traced ratio must come from the same seconds of
    # wall clock, or sustained load drift between two separate best-of
    # blocks (easily 10%+ on a shared runner) swamps the few-percent hook
    # cost being measured.  The profiler arms only around the diag pass so
    # its cost lands on the correct side of the ratio.
    sampler = diag.TailSampler(capacity=128, budget=0.01)
    bridge = diag.SpanMetricsBridge(engine.stats.registry)
    profiler = diag.SamplingProfiler()
    on_walls: list[float] = []
    diag_walls: list[float] = []
    on_responses: list = []
    for _ in range(repeat):
        timer = Timer()
        on_responses = [engine.search(query) for query in traced]
        on_walls.append(timer.elapsed())
        profiler.start()
        timer = Timer()
        for query in traced:
            response = engine.search(query)
            sampler.add(response.trace, e2e_ms=response.engine_time * 1000.0)
            bridge.record(response.trace, backend=name)
        diag_walls.append(timer.elapsed())
        profiler.stop()
    on_wall = min(on_walls)
    diag_wall = min(diag_walls)
    # The gated overhead is the best *pairwise* ratio: each iteration
    # compares two adjacent passes a few ms apart, so a noise spike that
    # lands on one iteration cannot masquerade as instrumentation cost
    # the way it can when two independent best-of minima are divided.
    diag_ratio = min(d / o for d, o in zip(diag_walls, on_walls) if o) if on_wall else 1.0

    num = len(plain)
    agree = all(
        off.ids == on.ids and on.trace is not None
        for off, on in zip(off_responses, on_responses)
    )
    return {
        "tau": tau,
        "num_queries": repeat * num,
        "pipeline_ring_qps": num / ref_wall if ref_wall else 0.0,
        "tracing_off_qps": num / off_wall if off_wall else 0.0,
        "tracing_on_qps": num / on_wall if on_wall else 0.0,
        "tracing_overhead_pct": (
            100.0 * (on_wall - off_wall) / off_wall if off_wall else 0.0
        ),
        "diag_on_qps": num / diag_wall if diag_wall else 0.0,
        "diag_overhead_pct": 100.0 * (diag_ratio - 1.0),
        "tail_sampler_kept": (
            sampler.stats()["kept_slow"]
            + sampler.stats()["kept_error"]
            + sampler.stats()["kept_sampled"]
        ),
        "traced_results_agree": agree,
    }


def bench_metrics_scrape(name: str, config: dict, samples: int = 10) -> dict:
    """Latency of a ``GET /metrics`` scrape against a live, warmed server."""
    from repro.engine import EngineClient, ServerConfig, ServerThread
    from repro.engine.bench import percentile

    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    engine = SearchEngine(cache_size=0)
    store = engine.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    scrape_ms: list[float] = []
    text = ""
    with ServerThread(engine, ServerConfig(max_wait_ms=1.0)) as handle:
        with EngineClient(handle.url) as client:
            for payload in payloads:  # populate every instrument first
                client.search(name, payload, tau=tau)
            for _ in range(samples):
                timer = Timer()
                text = client.metrics()
                scrape_ms.append(timer.elapsed() * 1000.0)
    return {
        "backend": name,
        "num_samples": samples,
        "scrape_p50_ms": percentile(scrape_ms, 0.50),
        "scrape_p95_ms": percentile(scrape_ms, 0.95),
        "num_series": sum(
            1 for line in text.splitlines() if line and not line.startswith("#")
        ),
    }


def bench_domain(name: str, config: dict, shard_counts: tuple[int, ...], workdir: str) -> dict:
    """Measure one domain at every shard count; returns its report section."""
    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    reference = SearchEngine(cache_size=0)
    store = reference.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    queries = [Query(backend=name, payload=payload, tau=tau) for payload in payloads]
    expected = [sorted(int(obj_id) for obj_id in reference.search(query).ids) for query in queries]

    section: dict = {
        "tau": tau,
        "num_objects": backend.store_size(store),
        "num_queries": len(queries),
        "avg_reference_results": sum(len(ids) for ids in expected) / len(expected),
        "shards": {},
    }
    for count in shard_counts:
        directory = os.path.join(workdir, f"{name}-{count}")
        timer = Timer()
        build_shards(name, dataset, directory, count)
        build_seconds = timer.elapsed()
        with ShardedEngine(directory) as engine:
            report, responses = run_bench(engine, queries, repeat=config["repeat"])
            agree = all(response.ids == ids for response, ids in zip(responses, expected))
            stats = engine.stats.snapshot()
        entry = report.to_dict()
        entry["build_seconds"] = build_seconds
        entry["avg_merge_time_ms"] = stats["avg_merge_time_ms"]
        entry["results_agree"] = agree
        section["shards"][str(count)] = entry

    baseline_qps = section["shards"][str(shard_counts[0])]["throughput_qps"]
    for entry in section["shards"].values():
        entry["speedup_vs_1_shard"] = (
            entry["throughput_qps"] / baseline_qps if baseline_qps else 0.0
        )
    return section


def bench_mutation(name: str, config: dict, rounds: int) -> dict:
    """Query latency under write load, plus compaction cost, for one domain.

    A writer interleaves upserts (records recycled from the dataset itself,
    so every domain works unchanged) and deletes with full replays of the
    query workload; the delta store grows round by round, so the recorded
    percentiles include the linear delta-scan cost a freshly-written index
    pays.  Ends with a ``compact()`` and asserts it changes no answer.
    """
    from repro.engine.bench import percentile

    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    engine = SearchEngine(cache_size=0)
    store = engine.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    queries = [Query(backend=name, payload=payload, tau=tau) for payload in payloads]
    recycled = list(backend.store_records(store))
    engine.search(queries[0])  # warmup: searcher construction is not serving

    latencies_ms: list[float] = []
    num_writes = 0
    next_delete = 0
    timer = Timer()
    for round_index in range(rounds):
        engine.upsert(name, recycled[round_index % len(recycled)])
        num_writes += 1
        if round_index % 3 == 2:
            engine.delete(name, next_delete)
            next_delete += 1
            num_writes += 1
        for query in queries:
            query_timer = Timer()
            engine.search(query)
            latencies_ms.append(query_timer.elapsed() * 1000.0)
    wall = timer.elapsed()

    before = [sorted(engine.search(query).ids) for query in queries]
    compact_timer = Timer()
    summary = engine.compact(name)
    compact_seconds = compact_timer.elapsed()
    after = [sorted(engine.search(query).ids) for query in queries]
    return {
        "tau": tau,
        "rounds": rounds,
        "num_queries": len(latencies_ms),
        "num_writes": num_writes,
        "delta_records_at_compact": summary.get("folded_records", 0),
        "queries_per_s_under_writes": len(latencies_ms) / wall if wall else 0.0,
        "writes_per_s": num_writes / wall if wall else 0.0,
        "query_p50_ms": percentile(latencies_ms, 0.50),
        "query_p95_ms": percentile(latencies_ms, 0.95),
        "compact_seconds": compact_seconds,
        "compact_preserves_answers": before == after,
    }


def bench_durability(name: str, config: dict, num_ops: int, workdir: str) -> dict:
    """Durable ingest throughput and auto-compaction pauses for one domain.

    A live HTTP server (in-process ``ServerThread``, real wire format) over
    a WAL-attached engine answers three write profiles with the same op
    volume: single-op ``/upsert`` shims at ``wal`` durability (one fsync
    per op -- the naive path), then ``/mutate`` batches of
    ``DURABILITY_BATCH_SIZE`` at ``memory`` and at ``wal`` (one fsync per
    *batch* -- the group-commit claim; ``check_regression.py`` holds
    batched-wal ops/s at or above the single-op rate).  A final phase arms
    auto-compaction and interleaves writes with the query workload,
    recording query p99 *including* any compaction swap pauses, and
    verifies the background folds completed cleanly.
    """
    from repro.engine import EngineClient, ServerConfig, ServerThread
    from repro.engine.bench import percentile
    from repro.engine.wal import AutoCompactionPolicy

    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    engine = SearchEngine(cache_size=0)
    store = engine.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    engine.attach_wal(name, os.path.join(workdir, f"{name}-durability.wal"))
    recycled = list(backend.store_records(store))
    num_batches = -(-num_ops // DURABILITY_BATCH_SIZE)

    section: dict = {
        "tau": tau,
        "num_ops": num_ops,
        "batch_size": DURABILITY_BATCH_SIZE,
        "levels": {},
    }
    with ServerThread(engine, ServerConfig(max_wait_ms=1.0)) as handle:
        with EngineClient(handle.url) as client:
            timer = Timer()
            for index in range(num_ops):
                client.upsert(name, recycled[index % len(recycled)], durability="wal")
            wall = timer.elapsed()
            section["single_op_wal_qps"] = num_ops / wall if wall else 0.0
            for level in ("memory", "wal"):
                timer = Timer()
                for index in range(num_batches):
                    ops = [
                        {"op": "upsert", "record": recycled[(index + offset) % len(recycled)]}
                        for offset in range(DURABILITY_BATCH_SIZE)
                    ]
                    client.mutate(name, ops, durability=level)
                wall = timer.elapsed()
                total = num_batches * DURABILITY_BATCH_SIZE
                section["levels"][level] = {
                    "batched_ops_per_s": total / wall if wall else 0.0,
                    "batches_per_s": num_batches / wall if wall else 0.0,
                }
            # Auto-compaction phase: queries ride along with the writes, so
            # their p99 absorbs every container-swap pause.
            engine.enable_auto_compaction(
                name,
                AutoCompactionPolicy(
                    min_delta_records=16, cost_ratio=0.05, max_delta_records=512
                ),
            )
            latencies_ms: list[float] = []
            for index in range(num_batches):
                client.mutate(
                    name,
                    [
                        {"op": "upsert", "record": recycled[(index + offset) % len(recycled)]}
                        for offset in range(DURABILITY_BATCH_SIZE)
                    ],
                    durability="wal",
                )
                for payload in payloads:
                    query_timer = Timer()
                    client.search(name, payload, tau=tau)
                    latencies_ms.append(query_timer.elapsed() * 1000.0)
            engine.wait_for_compaction(name, timeout=120.0)
            info = engine.durability_info(name)["auto_compaction"]
    section["auto_compaction"] = {
        "compactions": info["compactions"],
        "completed_cleanly": bool(info["compactions"]) and info["last_error"] is None,
        "query_p50_ms": percentile(latencies_ms, 0.50),
        "query_p99_ms": percentile(latencies_ms, 0.99),
    }
    single = section["single_op_wal_qps"]
    batched = section["levels"]["wal"]["batched_ops_per_s"]
    section["batched_vs_single_op"] = batched / single if single else 0.0
    return section


def bench_replication(name: str, config: dict, workdir: str) -> dict:
    """Replicated vs single-replica serving, failover cost and compaction stall.

    One sharded index is served twice through in-process ``ShardedEngine``
    instances sharing nothing but the checkpoint: once at replication
    factor 1 and once at :data:`REPLICATION_FACTOR`.  Each pass measures

    * read throughput and latency on the identical workload (answers must
      match the unsharded reference exactly -- routing across replicas is
      not allowed to change a single id),
    * the write stall of a compaction: a writer thread applies acked
      upserts while ``compact()`` runs, and the maximum per-op latency it
      observes is the stall.  With one replica the rebuild blocks every
      write behind it; with two, rolling compaction drains one replica at
      a time while the sibling keeps absorbing the fan-out, so the stall
      must collapse (``check_regression.py`` gates the ratio whenever the
      blocking stall is large enough to measure), and
    * (replicated pass only) failover: SIGKILL one live replica and time
      the next search -- the recovery is transparent, so this is the only
      user-visible cost of a replica death -- then wait for the supervisor
      to respawn it and record the heal time.
    """
    import threading

    from repro.engine.bench import run_bench

    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    reference = SearchEngine(cache_size=0)
    store = reference.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    queries = [Query(backend=name, payload=payload, tau=tau) for payload in payloads]
    expected = [sorted(int(obj_id) for obj_id in reference.search(query).ids) for query in queries]
    recycled = list(backend.store_records(store))
    num_objects = backend.store_size(store)

    section: dict = {
        "tau": tau,
        "num_objects": num_objects,
        "num_queries": len(queries),
        "num_shards": REPLICATION_SHARDS,
        "replicas": {},
    }
    agree = True
    for factor in (1, REPLICATION_FACTOR):
        # Each pass gets its own checkpoint: compaction persists the
        # rebuilt (written-to) containers back into the index directory,
        # which must not leak into the other pass's reference comparison.
        directory = os.path.join(workdir, f"{name}-replication-{factor}")
        build_shards(name, dataset, directory, REPLICATION_SHARDS)
        wal_dir = os.path.join(workdir, f"{name}-replication-wal-{factor}")
        with ShardedEngine(directory, wal_dir=wal_dir, replicas=factor) as engine:
            report, responses = run_bench(engine, queries, repeat=config["repeat"])
            agree = agree and all(
                sorted(int(obj_id) for obj_id in response.ids) == ids
                for response, ids in zip(responses, expected)
            )
            entry = report.to_dict()

            if factor > 1:
                # Failover: the kill is invisible except as one slow search.
                victim = engine.replica_status()[0]["replicas"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                failover_timer = Timer()
                response = engine.search(queries[0])
                entry["failover_search_ms"] = failover_timer.elapsed() * 1000.0
                agree = agree and sorted(int(i) for i in response.ids) == expected[0]
                heal_timer = Timer()
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    health = engine.shard_health()[0]
                    if health["live_replicas"] == health["num_replicas"]:
                        break
                    time.sleep(0.05)
                else:
                    raise RuntimeError(f"replication {name}: replica did not heal")
                entry["heal_seconds"] = heal_timer.elapsed()
                entry["failovers"] = sum(
                    shard.failovers for shard in engine.stats.per_shard
                )

            # Compaction write stall: the writer's worst op latency while
            # the rebuild runs.  Writes use explicit ids so both passes
            # leave the store in the same state.
            stall_ms: list[float] = []
            writer_errors: list[BaseException] = []
            stop = threading.Event()

            def write_through_compaction() -> None:
                index = 0
                try:
                    while not stop.is_set():
                        op_timer = Timer()
                        engine.upsert(
                            name,
                            recycled[index % len(recycled)],
                            obj_id=num_objects + index,
                            durability="wal",
                        )
                        stall_ms.append(op_timer.elapsed() * 1000.0)
                        index += 1
                except BaseException as exc:
                    writer_errors.append(exc)

            writer = threading.Thread(target=write_through_compaction)
            writer.start()
            try:
                time.sleep(0.2)  # establish a write baseline before the rebuild
                compact_timer = Timer()
                engine.compact(name)
                entry["compact_seconds"] = compact_timer.elapsed()
            finally:
                stop.set()
                writer.join(timeout=120.0)
            if writer_errors:
                raise RuntimeError(
                    f"replication {name} r{factor}: writer failed during "
                    f"compaction: {writer_errors[0]!r}"
                )
            entry["writes_through_compaction"] = len(stall_ms)
            entry["max_write_stall_ms"] = max(stall_ms) if stall_ms else 0.0
            section["replicas"][str(factor)] = entry

    section["results_agree"] = agree
    blocking = section["replicas"]["1"]["max_write_stall_ms"]
    rolling = section["replicas"][str(REPLICATION_FACTOR)]["max_write_stall_ms"]
    section["rolling_vs_blocking_stall"] = rolling / blocking if blocking else 0.0
    return section


def _spawn_server(index_dir: str, ready_file: str) -> subprocess.Popen:
    """Start ``python -m repro.engine serve`` with this checkout importable."""
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine",
            "serve",
            "--index",
            index_dir,
            "--port",
            "0",
            "--ready-file",
            ready_file,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _await_ready(ready_file: str, process: subprocess.Popen, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"serve exited early with code {process.returncode}")
        if os.path.exists(ready_file):
            with open(ready_file, encoding="utf-8") as handle:
                host, port = handle.read().split()
            return f"http://{host}:{port}"
        time.sleep(0.05)
    raise RuntimeError("serve did not become ready in time")


def bench_served(name: str, config: dict, num_requests: int, workdir: str) -> dict:
    """Serve one domain over HTTP in a subprocess and drive it with load."""
    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    store = backend.prepare(dataset)
    tau = backend.default_tau(store)
    index_dir = os.path.join(workdir, f"{name}-served")
    save_container(backend, store, index_dir)
    requests = wire_requests(
        name, payloads, tau=tau, repeat=-(-num_requests // len(payloads))
    )[:num_requests]

    ready_file = os.path.join(workdir, f"{name}-ready")
    process = _spawn_server(index_dir, ready_file)
    section: dict = {"tau": tau, "num_requests": num_requests, "concurrency": {}}
    try:
        url = _await_ready(ready_file, process)
        for concurrency in SERVED_CONCURRENCY:
            report = run_load_bench(url, requests, concurrency=concurrency, mode="closed")
            if report.num_ok != num_requests:
                raise RuntimeError(
                    f"served {name} c={concurrency}: only {report.num_ok}/"
                    f"{num_requests} requests succeeded"
                )
            section["concurrency"][str(concurrency)] = report.to_dict()
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
    base = section["concurrency"][str(SERVED_CONCURRENCY[0])]["achieved_qps"]
    peak = section["concurrency"][str(SERVED_CONCURRENCY[-1])]["achieved_qps"]
    section["speedup_peak_vs_c1"] = peak / base if base else 0.0
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "BENCH_all.json")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="ci")
    parser.add_argument("--out", default=default_out)
    parser.add_argument(
        "--shards",
        default=",".join(str(count) for count in DEFAULT_SHARD_COUNTS),
        help="comma-separated shard counts (first one is the speedup baseline)",
    )
    parser.add_argument(
        "--domains",
        default=None,
        help="comma-separated subset of domains (default: all four)",
    )
    parser.add_argument(
        "--no-served",
        action="store_true",
        help="skip the HTTP served-profile benchmarks",
    )
    parser.add_argument(
        "--no-mutation",
        action="store_true",
        help="skip the query-latency-under-write-load benchmarks",
    )
    parser.add_argument(
        "--no-pipeline",
        action="store_true",
        help="skip the columnar-vs-scalar pipeline benchmarks",
    )
    parser.add_argument(
        "--no-durability",
        action="store_true",
        help="skip the WAL ingest-throughput + auto-compaction benchmarks",
    )
    parser.add_argument(
        "--no-observability",
        action="store_true",
        help="skip the tracing-overhead + /metrics scrape benchmarks",
    )
    parser.add_argument(
        "--no-replication",
        action="store_true",
        help="skip the replicated-serving + failover + compaction-stall benchmarks",
    )
    parser.add_argument(
        "--pipeline-only",
        action="store_true",
        help="run only the pipeline section (the CI kernel micro-bench smoke)",
    )
    args = parser.parse_args(argv)
    if args.pipeline_only and args.no_pipeline:
        parser.error("--pipeline-only and --no-pipeline are mutually exclusive")

    shard_counts = tuple(int(part) for part in args.shards.split(","))
    profile = PROFILES[args.profile]
    domains = list(profile) if args.domains is None else args.domains.split(",")

    report: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "profile": args.profile,
        "shard_counts": list(shard_counts),
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "domains": {},
    }
    ok = True
    with tempfile.TemporaryDirectory(prefix="bench-shards-") as workdir:
        for name in domains:
            if args.pipeline_only:
                break
            section = bench_domain(name, profile[name], shard_counts, workdir)
            report["domains"][name] = section
            for count, entry in section["shards"].items():
                ok = ok and entry["results_agree"]
                print(
                    f"[{name:>8} x{count}] {entry['throughput_qps']:>8.1f} q/s  "
                    f"p50 {entry['p50_ms']:>7.2f} ms  p95 {entry['p95_ms']:>7.2f} ms  "
                    f"speedup {entry['speedup_vs_1_shard']:.2f}x  "
                    f"agree={entry['results_agree']}"
                )
        if not args.no_pipeline:
            report["pipeline"] = {"algorithms": list(PIPELINE_ALGORITHMS), "domains": {}}
            for name in domains:
                section = bench_pipeline(name, profile[name])
                report["pipeline"]["domains"][name] = section
                ok = ok and section["results_agree"]
                for algorithm, entry in section["algorithms"].items():
                    print(
                        f"[{name:>8} pipeline {algorithm:<11}] "
                        f"{entry['throughput_qps']:>8.1f} q/s  "
                        f"funnel {entry['avg_generated_candidates']:>8.1f} -> "
                        f"{entry['avg_verified_candidates']:>7.1f} -> "
                        f"{entry['avg_results']:>6.1f}  "
                        f"cand {entry['avg_candidate_time_ms']:>6.2f} ms  "
                        f"verify {entry['avg_verify_time_ms']:>6.2f} ms"
                    )
                if "speedup_columnar_vs_scalar" in section:
                    print(
                        f"[{name:>8} pipeline] columnar speedup "
                        f"{section['speedup_columnar_vs_scalar']:.2f}x  "
                        f"agree={section['results_agree']}"
                    )
        if args.pipeline_only:
            report.pop("domains", None)
        if not args.no_mutation and not args.pipeline_only:
            report["mutation"] = {"rounds": MUTATION_ROUNDS[args.profile], "domains": {}}
            for name in domains:
                section = bench_mutation(name, profile[name], MUTATION_ROUNDS[args.profile])
                report["mutation"]["domains"][name] = section
                ok = ok and section["compact_preserves_answers"]
                print(
                    f"[{name:>8} mutation] {section['queries_per_s_under_writes']:>8.1f} q/s "
                    f"under {section['writes_per_s']:.1f} w/s  "
                    f"p50 {section['query_p50_ms']:>7.2f} ms  "
                    f"p95 {section['query_p95_ms']:>7.2f} ms  "
                    f"compact {section['compact_seconds']:.2f}s  "
                    f"stable={section['compact_preserves_answers']}"
                )
        if not args.no_durability and not args.pipeline_only:
            report["durability"] = {
                "ops": DURABILITY_OPS[args.profile],
                "batch_size": DURABILITY_BATCH_SIZE,
                "domains": {},
            }
            for name in domains:
                section = bench_durability(
                    name, profile[name], DURABILITY_OPS[args.profile], workdir
                )
                report["durability"]["domains"][name] = section
                ok = ok and section["auto_compaction"]["completed_cleanly"]
                print(
                    f"[{name:>8} durability] single-op wal "
                    f"{section['single_op_wal_qps']:>7.1f} op/s  "
                    f"batched wal {section['levels']['wal']['batched_ops_per_s']:>8.1f} op/s "
                    f"({section['batched_vs_single_op']:.1f}x)  "
                    f"memory {section['levels']['memory']['batched_ops_per_s']:>8.1f} op/s  "
                    f"compactions {section['auto_compaction']['compactions']}  "
                    f"q p99 {section['auto_compaction']['query_p99_ms']:.2f} ms"
                )
        if not args.no_observability and not args.pipeline_only:
            report["observability"] = {"domains": {}}
            for name in domains:
                section = bench_observability(name, profile[name])
                report["observability"]["domains"][name] = section
                ok = ok and section["traced_results_agree"]
                print(
                    f"[{name:>8} obs] ring ref {section['pipeline_ring_qps']:>8.1f} q/s  "
                    f"tracing off {section['tracing_off_qps']:>8.1f} q/s  "
                    f"on {section['tracing_on_qps']:>8.1f} q/s  "
                    f"overhead {section['tracing_overhead_pct']:+.1f}%  "
                    f"diag on {section['diag_on_qps']:>8.1f} q/s "
                    f"({section['diag_overhead_pct']:+.1f}%)  "
                    f"agree={section['traced_results_agree']}"
                )
            scrape = bench_metrics_scrape(domains[0], profile[domains[0]])
            report["observability"]["metrics_scrape"] = scrape
            print(
                f"[{domains[0]:>8} obs] /metrics scrape p50 {scrape['scrape_p50_ms']:.2f} ms  "
                f"p95 {scrape['scrape_p95_ms']:.2f} ms  ({scrape['num_series']} series)"
            )
        if not args.no_replication and not args.pipeline_only:
            report["replication"] = {
                "num_shards": REPLICATION_SHARDS,
                "factor": REPLICATION_FACTOR,
                "domains": {},
            }
            for name in REPLICATION_DOMAINS:
                if name not in domains:
                    continue
                section = bench_replication(name, profile[name], workdir)
                report["replication"]["domains"][name] = section
                ok = ok and section["results_agree"]
                for factor, entry in section["replicas"].items():
                    extra = (
                        f"failover {entry['failover_search_ms']:>6.1f} ms  "
                        f"heal {entry['heal_seconds']:.1f}s  "
                        if "failover_search_ms" in entry
                        else ""
                    )
                    print(
                        f"[{name:>8} replication r={factor}] "
                        f"{entry['throughput_qps']:>8.1f} q/s  "
                        f"p50 {entry['p50_ms']:>7.2f} ms  "
                        f"p95 {entry['p95_ms']:>7.2f} ms  "
                        f"{extra}"
                        f"write stall {entry['max_write_stall_ms']:>7.1f} ms "
                        f"(compact {entry['compact_seconds']:.2f}s)"
                    )
                print(
                    f"[{name:>8} replication] rolling/blocking stall "
                    f"{section['rolling_vs_blocking_stall']:.3f}  "
                    f"agree={section['results_agree']}"
                )
        if not args.no_served and not args.pipeline_only:
            report["served"] = {
                "levels": list(SERVED_CONCURRENCY),
                "domains": {},
            }
            for name in domains:
                section = bench_served(
                    name, profile[name], SERVED_REQUESTS[args.profile], workdir
                )
                report["served"]["domains"][name] = section
                for level, entry in section["concurrency"].items():
                    print(
                        f"[{name:>8} served c={level:<2}] "
                        f"{entry['achieved_qps']:>8.1f} q/s  "
                        f"p50 {entry['p50_ms']:>7.2f} ms  "
                        f"p99 {entry['p99_ms']:>7.2f} ms  "
                        f"batch {entry['avg_batch_size']:.2f}"
                    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if not ok:
        print(
            "FAIL: results diverged (sharded vs reference, columnar vs "
            "scalar, or across a compaction)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
