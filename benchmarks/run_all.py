"""Cross-domain benchmark suite: all four backends at 1/2/4 shards.

For every domain (Hamming, sets, strings, graphs) this runner

1. builds a synthetic workload with the backend's ``make_workload``,
2. answers it once through an in-process ``SearchEngine`` (the correctness
   reference),
3. builds a sharded index at each shard count and serves the workload
   through a ``ShardedEngine`` (one worker process per shard), measuring
   throughput and p50/p95 latency with ``repro.engine.bench``, and
4. checks the sharded answers equal the reference answers exactly.

The single schema-versioned report (``benchmarks/BENCH_all.json`` by
default) carries throughput, latency percentiles, merge overhead and
speedup-vs-1-shard per (domain, shard count), plus the hardware it was
measured on -- process-parallel speedups only materialise with more than
one CPU.  CI's ``bench-regression`` job replays the ``ci`` profile and
gates on ``benchmarks/check_regression.py``.

Run with:  PYTHONPATH=src python benchmarks/run_all.py --profile ci
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro.common.stats import Timer
from repro.engine import Query, SearchEngine
from repro.engine.backend import get_backend
from repro.engine.bench import BENCH_SCHEMA_VERSION, run_bench
from repro.engine.sharding import ShardedEngine, build_shards

#: Workload sizes per profile.  ``ci`` is small enough for a pull-request
#: gate; ``full`` is the nightly / local deep-dive configuration.
PROFILES: dict[str, dict[str, dict]] = {
    "ci": {
        "hamming": dict(size=8000, num_queries=12, repeat=5, seed=101),
        "sets": dict(size=12000, num_queries=12, repeat=5, seed=102),
        "strings": dict(size=6000, num_queries=10, repeat=4, seed=103),
        "graphs": dict(size=120, num_queries=6, repeat=2, seed=104),
    },
    "full": {
        "hamming": dict(size=30000, num_queries=20, repeat=5, seed=101),
        "sets": dict(size=40000, num_queries=20, repeat=5, seed=102),
        "strings": dict(size=20000, num_queries=16, repeat=4, seed=103),
        "graphs": dict(size=300, num_queries=10, repeat=2, seed=104),
    },
}

DEFAULT_SHARD_COUNTS = (1, 2, 4)


def bench_domain(name: str, config: dict, shard_counts: tuple[int, ...], workdir: str) -> dict:
    """Measure one domain at every shard count; returns its report section."""
    backend = get_backend(name)
    dataset, payloads = backend.make_workload(config["size"], config["num_queries"], config["seed"])
    reference = SearchEngine(cache_size=0)
    store = reference.add_dataset(name, dataset)
    tau = backend.default_tau(store)
    queries = [Query(backend=name, payload=payload, tau=tau) for payload in payloads]
    expected = [sorted(int(obj_id) for obj_id in reference.search(query).ids) for query in queries]

    section: dict = {
        "tau": tau,
        "num_objects": backend.store_size(store),
        "num_queries": len(queries),
        "avg_reference_results": sum(len(ids) for ids in expected) / len(expected),
        "shards": {},
    }
    for count in shard_counts:
        directory = os.path.join(workdir, f"{name}-{count}")
        timer = Timer()
        build_shards(name, dataset, directory, count)
        build_seconds = timer.elapsed()
        with ShardedEngine(directory) as engine:
            report, responses = run_bench(engine, queries, repeat=config["repeat"])
            agree = all(response.ids == ids for response, ids in zip(responses, expected))
            stats = engine.stats.snapshot()
        entry = report.to_dict()
        entry["build_seconds"] = build_seconds
        entry["avg_merge_time_ms"] = stats["avg_merge_time_ms"]
        entry["results_agree"] = agree
        section["shards"][str(count)] = entry

    baseline_qps = section["shards"][str(shard_counts[0])]["throughput_qps"]
    for entry in section["shards"].values():
        entry["speedup_vs_1_shard"] = (
            entry["throughput_qps"] / baseline_qps if baseline_qps else 0.0
        )
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "BENCH_all.json")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="ci")
    parser.add_argument("--out", default=default_out)
    parser.add_argument(
        "--shards",
        default=",".join(str(count) for count in DEFAULT_SHARD_COUNTS),
        help="comma-separated shard counts (first one is the speedup baseline)",
    )
    parser.add_argument(
        "--domains",
        default=None,
        help="comma-separated subset of domains (default: all four)",
    )
    args = parser.parse_args(argv)

    shard_counts = tuple(int(part) for part in args.shards.split(","))
    profile = PROFILES[args.profile]
    domains = list(profile) if args.domains is None else args.domains.split(",")

    report: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "profile": args.profile,
        "shard_counts": list(shard_counts),
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "domains": {},
    }
    ok = True
    with tempfile.TemporaryDirectory(prefix="bench-shards-") as workdir:
        for name in domains:
            section = bench_domain(name, profile[name], shard_counts, workdir)
            report["domains"][name] = section
            for count, entry in section["shards"].items():
                ok = ok and entry["results_agree"]
                print(
                    f"[{name:>8} x{count}] {entry['throughput_qps']:>8.1f} q/s  "
                    f"p50 {entry['p50_ms']:>7.2f} ms  p95 {entry['p95_ms']:>7.2f} ms  "
                    f"speedup {entry['speedup_vs_1_shard']:.2f}x  "
                    f"agree={entry['results_agree']}"
                )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if not ok:
        print("FAIL: sharded results diverged from the unsharded reference")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
