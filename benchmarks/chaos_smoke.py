"""Chaos smoke: SIGKILL replicas under live load; nothing user-visible breaks.

The replication layer's contract is that a replica death is an *internal*
event:
while any sibling lives, searches fail over transparently, acknowledged
writes survive, and the supervisor respawns the victim from the shared WAL
lineage in the background.  This driver attacks that contract directly:

1. builds a two-shard index and starts the real HTTP serving layer as a
   subprocess (``python -m repro.engine serve --replicas 2 --wal-dir ...``),
2. runs sustained concurrent load against it -- searcher threads replaying
   the query workload and one writer streaming acked ``wal``-durability
   mutations with explicit ids -- with **zero client retries**, so any
   surfaced 503 or connection reset is a gate failure,
3. meanwhile a chaos thread repeatedly picks a random live replica from the
   ``/stats`` replica table and SIGKILLs it, then waits for the supervisor
   to respawn and readmit it (every shard back to full redundancy),
4. after the last heal, asserts the gates:

   * **no request errors** -- not one search or mutation surfaced a failure
     while at least one replica per shard was alive,
   * **respawn observed** -- every kill healed within the timeout and the
     replica generation counters advanced past the victims,
   * **tail latency bounded** -- search p99 over the whole run (including
     every failover and catch-up window) stays under ``--p99-ms``, a
     deliberately generous absolute bound that catches wedged-seconds
     regressions rather than scheduler noise, and
   * **answers converge** -- post-chaos threshold and top-k answers (read
     through the writer's read-your-writes session token) are identical,
     ids and scores, to a from-scratch in-process rebuild of exactly the
     acknowledged ops.

Exit code 0 means every gate held.  CI's ``chaos`` job runs this after the
tier-1 suite.

Run with:  PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

import repro
from repro.engine import Query, SearchEngine
from repro.engine.backend import get_backend
from repro.engine.bench import percentile
from repro.engine.client import EngineClient
from repro.engine.sharding import build_shards

DOMAIN = "sets"
WORKLOAD = dict(size=3000, num_queries=6, seed=31)
NUM_SHARDS = 2
REPLICAS = 2
TOPK = 4

SEARCH_THREADS = 2
#: Replica kills per run; each must heal before the next fires.
KILLS = 3
HEAL_TIMEOUT = 60.0
#: Writer op script length; the writer cycles through it until chaos ends.
SCRIPT_OPS = 4000


def _mutation_script(num_objects: int) -> list[dict]:
    """Deterministic single-op batches with explicit ids (cf. crash_smoke).

    Explicit ids make the acknowledged prefix a pure function of its
    length, so the post-chaos reference rebuild replays exactly what the
    server acked without trusting server-side id assignment.
    """
    backend = get_backend(DOMAIN)
    dataset, _payloads = backend.make_workload(
        WORKLOAD["size"], WORKLOAD["num_queries"], WORKLOAD["seed"] + 1
    )
    donors = list(backend.store_records(backend.prepare(dataset)))
    ops: list[dict] = []
    for index in range(SCRIPT_OPS):
        if index % 4 == 3:
            ops.append({"op": "delete", "id": (index * 7) % num_objects})
        else:
            ops.append(
                {
                    "op": "upsert",
                    "record": donors[index % len(donors)],
                    "id": num_objects + index,
                }
            )
    return ops


def _spawn_server(index_dir: str, wal_dir: str, ready_file: str) -> subprocess.Popen:
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine",
            "serve",
            "--index",
            index_dir,
            "--wal-dir",
            wal_dir,
            "--replicas",
            str(REPLICAS),
            "--port",
            "0",
            "--ready-file",
            ready_file,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _await_ready(ready_file: str, process: subprocess.Popen, timeout: float = 60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"serve exited early with code {process.returncode}")
        if os.path.exists(ready_file):
            with open(ready_file, encoding="utf-8") as handle:
                host, port = handle.read().split()
            return f"http://{host}:{port}"
        time.sleep(0.05)
    raise RuntimeError("serve did not become ready in time")


def _replica_table(client: EngineClient) -> list[dict]:
    return client.stats().get("replicas", [])


def _all_live(table: list[dict]) -> bool:
    return all(
        sum(1 for replica in entry["replicas"] if replica["state"] == "live")
        == entry["num_replicas"]
        for entry in table
    )


class ChaosRun:
    """Shared state between the load threads and the chaos thread."""

    def __init__(self, url: str, payloads: list, tau) -> None:
        self.url = url
        self.payloads = payloads
        self.tau = tau
        self.stop = threading.Event()
        self.failures: list[str] = []
        self._lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.acked_ops = 0
        self.searches = 0
        self.heal_seconds: list[float] = []
        self.killed_pids: list[int] = []

    def fail(self, message: str) -> None:
        with self._lock:
            self.failures.append(message)
        self.stop.set()

    def searcher(self, seed: int) -> None:
        rnd = random.Random(seed)
        with EngineClient(self.url, timeout=60.0) as client:
            while not self.stop.is_set():
                payload = self.payloads[rnd.randrange(len(self.payloads))]
                timer = time.monotonic()
                try:
                    if rnd.random() < 0.5:
                        client.search(DOMAIN, payload, tau=self.tau)
                    else:
                        client.search_topk(DOMAIN, payload, k=TOPK)
                except Exception as exc:
                    self.fail(f"search failed during chaos: {exc!r}")
                    return
                with self._lock:
                    self.latencies_ms.append((time.monotonic() - timer) * 1000.0)
                    self.searches += 1

    def writer(self, ops: list[dict]) -> None:
        with EngineClient(self.url, timeout=60.0) as client:
            for op in ops:
                if self.stop.is_set():
                    break
                try:
                    outcome = client.mutate(DOMAIN, [op], durability="wal")
                except Exception as exc:
                    self.fail(f"acked write failed during chaos: {exc!r}")
                    return
                if outcome.get("durability") != "wal":
                    self.fail(f"write acked below wal durability: {outcome!r}")
                    return
                with self._lock:
                    self.acked_ops += 1
            self.session = client.session

    def chaos(self, process: subprocess.Popen) -> None:
        rnd = random.Random(97)
        with EngineClient(self.url, timeout=60.0) as client:
            for _ in range(KILLS):
                if self.stop.is_set():
                    return
                time.sleep(0.5)  # let load re-establish between kills
                try:
                    table = _replica_table(client)
                    victims = [
                        replica["pid"]
                        for entry in table
                        for replica in entry["replicas"]
                        if replica["state"] == "live" and replica["pid"]
                    ]
                    if not victims:
                        self.fail("chaos found no live replica to kill")
                        return
                    victim = rnd.choice(victims)
                    os.kill(victim, signal.SIGKILL)
                    self.killed_pids.append(victim)
                    started = time.monotonic()
                    healed = False
                    while time.monotonic() - started < HEAL_TIMEOUT:
                        if process.poll() is not None:
                            self.fail("server process died during chaos")
                            return
                        table = _replica_table(client)
                        pids = {
                            replica["pid"]
                            for entry in table
                            for replica in entry["replicas"]
                        }
                        if _all_live(table) and victim not in pids:
                            healed = True
                            break
                        time.sleep(0.1)
                    if not healed:
                        self.fail(
                            f"replica pid {victim} was not respawned within "
                            f"{HEAL_TIMEOUT:.0f}s"
                        )
                        return
                    self.heal_seconds.append(time.monotonic() - started)
                except Exception as exc:
                    self.fail(f"chaos controller request failed: {exc!r}")
                    return


def _reference_answers(dataset, payloads, tau, prefix: list[dict]) -> list[tuple]:
    engine = SearchEngine(cache_size=0)
    engine.add_dataset(DOMAIN, dataset)
    if prefix:
        engine.mutate(DOMAIN, prefix)
    rows = []
    for payload in payloads:
        threshold = engine.search(Query(backend=DOMAIN, payload=payload, tau=tau))
        topk = engine.search(Query(backend=DOMAIN, payload=payload, k=TOPK))
        rows.append(
            (
                [int(i) for i in threshold.ids],
                [int(i) for i in topk.ids],
                [float(s) for s in topk.scores],
            )
        )
    return rows


def _served_answers(client: EngineClient, payloads, tau) -> list[tuple]:
    rows = []
    for payload in payloads:
        threshold = client.search(DOMAIN, payload, tau=tau)
        topk = client.search_topk(DOMAIN, payload, k=TOPK)
        rows.append(
            (
                [int(i) for i in threshold.ids],
                [int(i) for i in topk.ids],
                [float(s) for s in topk.scores],
            )
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--p99-ms",
        type=float,
        default=2000.0,
        help=(
            "absolute bound on search p99 across the whole run, failover "
            "windows included (default 2000 ms -- catches wedged seconds, "
            "not scheduler noise)"
        ),
    )
    args = parser.parse_args(argv)

    backend = get_backend(DOMAIN)
    dataset, payloads = backend.make_workload(
        WORKLOAD["size"], WORKLOAD["num_queries"], WORKLOAD["seed"]
    )
    store = backend.prepare(dataset)
    num_objects = backend.store_size(store)
    tau = backend.default_tau(store)
    ops = _mutation_script(num_objects)

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        index_dir = os.path.join(workdir, "index")
        wal_dir = os.path.join(workdir, "wal")
        build_shards(DOMAIN, dataset, index_dir, NUM_SHARDS)
        ready_file = os.path.join(workdir, "ready")
        process = _spawn_server(index_dir, wal_dir, ready_file)
        try:
            url = _await_ready(ready_file, process)
            run = ChaosRun(url, payloads, tau)
            threads = [
                threading.Thread(target=run.searcher, args=(41 + i,), daemon=True)
                for i in range(SEARCH_THREADS)
            ]
            writer = threading.Thread(target=run.writer, args=(ops,), daemon=True)
            chaos = threading.Thread(target=run.chaos, args=(process,), daemon=True)
            for thread in threads:
                thread.start()
            writer.start()
            chaos.start()
            chaos.join(timeout=KILLS * (HEAL_TIMEOUT + 5.0))
            run.stop.set()
            writer.join(timeout=120.0)
            for thread in threads:
                thread.join(timeout=120.0)

            failures = list(run.failures)
            if chaos.is_alive():
                failures.append("chaos controller wedged")
            if writer.is_alive() or any(t.is_alive() for t in threads):
                failures.append("a load thread failed to stop")
            if len(run.heal_seconds) != KILLS and not failures:
                failures.append(
                    f"only {len(run.heal_seconds)}/{KILLS} kills healed"
                )
            p99 = percentile(run.latencies_ms, 0.99) if run.latencies_ms else 0.0
            if not run.latencies_ms:
                failures.append("no searches completed during chaos")
            elif p99 > args.p99_ms:
                failures.append(
                    f"search p99 {p99:.1f} ms breached the {args.p99_ms:.0f} ms "
                    f"chaos bound"
                )

            answers_ok = None
            if not failures:
                # The writer's session token forces reads past every ack,
                # so convergence is checked, not raced.
                with EngineClient(url, timeout=60.0) as verify:
                    verify._session = getattr(run, "session", None)
                    observed = _served_answers(verify, payloads, tau)
                expected = _reference_answers(
                    dataset, payloads, tau, ops[: run.acked_ops]
                )
                answers_ok = observed == expected
                if not answers_ok:
                    failures.append(
                        "post-chaos answers diverged from the from-scratch "
                        "rebuild of the acked ops"
                    )

            print(
                f"[chaos {DOMAIN} x{NUM_SHARDS} r{REPLICAS}] "
                f"kills {len(run.killed_pids)}/{KILLS}  "
                f"searches {run.searches}  acked writes {run.acked_ops}  "
                f"p99 {p99:.1f} ms (bound {args.p99_ms:.0f})  "
                f"heal " + (
                    "/".join(f"{s:.1f}s" for s in run.heal_seconds)
                    if run.heal_seconds
                    else "none"
                ) + f"  answers={'ok' if answers_ok else answers_ok}"
            )
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()

    if failures:
        print(f"FAIL: chaos gate violated ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("chaos gate held: kills stayed invisible, answers converged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
