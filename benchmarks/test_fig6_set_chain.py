"""Figure 6: effect of chain length on set similarity search (Enron / DBLP stand-ins)."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure6_rows


def _check(rows):
    for tau in {row.tau for row in rows}:
        series = [row.avg_candidates for row in rows if row.tau == tau]
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))


def test_fig6_enron_like(benchmark):
    rows = run_once(
        benchmark, figure6_rows,
        dataset_name="enron", taus=(0.7, 0.8), chain_lengths=(1, 2, 3),
        scale=0.5, seed=0,
    )
    show("Figure 6 (Enron-like)", format_rows(rows))
    _check(rows)


def test_fig6_dblp_like(benchmark):
    rows = run_once(
        benchmark, figure6_rows,
        dataset_name="dblp", taus=(0.7, 0.8), chain_lengths=(1, 2, 3),
        scale=0.5, seed=1,
    )
    show("Figure 6 (DBLP-like)", format_rows(rows))
    _check(rows)
