"""Figure 2: analytical #false-positives / #results ratio versus chain length."""

from conftest import run_once, show

from repro.experiments.figures import figure2_rows


def test_fig2_filtering_power_analysis(benchmark):
    rows = run_once(benchmark, figure2_rows, range(1, 8))
    lines = [
        f"tau={row['tau']:>3} m={row['m']:>2} l={row['chain_length']} "
        f"ratio={row['fp_to_result_ratio']:.3e}"
        for row in rows
    ]
    show("Figure 2 (analytical model)", "\n".join(lines))
    # The ratio must decrease monotonically with the chain length for every
    # (tau, m) curve, the paper's central qualitative claim for Figure 2.
    for key in {(row["tau"], row["m"]) for row in rows}:
        series = [r["fp_to_result_ratio"] for r in rows if (r["tau"], r["m"]) == key]
        assert all(b <= a * 1.0001 for a, b in zip(series, series[1:]))
