"""Figure 8: effect of chain length on graph edit distance search (AIDS / Protein stand-ins)."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure8_rows


def _check(rows):
    for tau in {row.tau for row in rows}:
        series = [row.avg_candidates for row in rows if row.tau == tau]
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))


def test_fig8_aids_like(benchmark):
    rows = run_once(
        benchmark, figure8_rows,
        dataset_name="aids", taus=(3, 4), chain_lengths=(1, 2, 3, 4),
        scale=0.5, seed=0,
    )
    show("Figure 8 (AIDS-like)", format_rows(rows))
    _check(rows)


def test_fig8_protein_like(benchmark):
    rows = run_once(
        benchmark, figure8_rows,
        dataset_name="protein", taus=(3,), chain_lengths=(1, 2, 3, 4),
        scale=0.5, seed=1,
    )
    show("Figure 8 (Protein-like)", format_rows(rows))
    _check(rows)
