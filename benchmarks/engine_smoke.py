"""Engine smoke benchmark: batch-query throughput across all four backends.

Builds a small workload per domain, serves it through one
:class:`repro.engine.SearchEngine` sequentially and on a thread pool, checks
that both paths return identical result sets, and records throughput to
``BENCH_engine.json`` next to this script (or to ``--out``).

Run with:  PYTHONPATH=src python benchmarks/engine_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback

from repro.common.stats import Timer
from repro.datasets.binary import clustered_binary_workload
from repro.datasets.molecules import aids_like
from repro.datasets.text import name_workload
from repro.datasets.tokens import zipfian_set_workload
from repro.engine import Query, SearchEngine
from repro.graphs import GraphDataset
from repro.hamming import BinaryVectorDataset
from repro.sets import SetDataset
from repro.strings import StringDataset

WORKERS = 4
REPEAT = 5  # replay each tiny workload a few times for stabler timing


def build_engine() -> tuple[SearchEngine, dict[str, list[Query]]]:
    engine = SearchEngine(cache_size=0)  # measure serving, not cache hits
    queries: dict[str, list[Query]] = {}

    binary = clustered_binary_workload(2000, 128, 10, seed=1)
    engine.add_dataset("hamming", BinaryVectorDataset(binary.vectors, num_parts=8))
    queries["hamming"] = [Query(backend="hamming", payload=row, tau=20) for row in binary.queries]

    sets = zipfian_set_workload(1500, 10, seed=2)
    engine.add_dataset("sets", SetDataset(sets.records, num_classes=4))
    queries["sets"] = [Query(backend="sets", payload=record, tau=0.8) for record in sets.queries]

    strings = name_workload(1000, 10, seed=3)
    engine.add_dataset("strings", StringDataset(strings.records, kappa=2))
    queries["strings"] = [Query(backend="strings", payload=text, tau=2) for text in strings.queries]

    graphs = aids_like(num_graphs=60, num_queries=4, seed=4)
    engine.add_dataset("graphs", GraphDataset(graphs.graphs))
    queries["graphs"] = [Query(backend="graphs", payload=graph, tau=2) for graph in graphs.queries]
    return engine, queries


def bench_backend(engine: SearchEngine, batch: list[Query]) -> dict:
    batch = batch * REPEAT
    engine.search(batch[0])  # warm the searcher cache
    timer = Timer()
    sequential = engine.search_batch(batch)
    sequential_s = timer.restart()
    parallel = engine.search_batch(batch, parallel=True, max_workers=WORKERS)
    parallel_s = timer.elapsed()
    agree = all(sorted(a.ids) == sorted(b.ids) for a, b in zip(sequential, parallel))
    return {
        "num_queries": len(batch),
        "sequential_qps": len(batch) / sequential_s if sequential_s else 0.0,
        "parallel_qps": len(batch) / parallel_s if parallel_s else 0.0,
        "workers": WORKERS,
        "results_agree": agree,
        "avg_results": sum(r.num_results for r in sequential) / len(batch),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")
    parser.add_argument("--out", default=default_out)
    args = parser.parse_args(argv)

    engine, queries = build_engine()
    report: dict[str, dict] = {}
    ok = True
    for name, batch in queries.items():
        # A failing backend must fail the whole smoke run (CI gates on the
        # exit code), but still let the other backends report -- a partial
        # report with an explicit error beats an empty artifact.
        try:
            report[name] = bench_backend(engine, batch)
        except Exception as error:
            traceback.print_exc()
            report[name] = {"error": f"{type(error).__name__}: {error}"}
            ok = False
            print(f"[{name:>8}] ERROR: {report[name]['error']}")
            continue
        ok = ok and report[name]["results_agree"]
        print(
            f"[{name:>8}] {report[name]['num_queries']:>3} queries  "
            f"sequential {report[name]['sequential_qps']:>8.1f} q/s  "
            f"parallel({WORKERS}) {report[name]['parallel_qps']:>8.1f} q/s  "
            f"agree={report[name]['results_agree']}"
        )
    report["engine_stats"] = engine.stats.snapshot()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.out}")
    if not ok:
        print("FAIL: at least one backend errored or disagreed", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
