"""Figure 5: effect of chain length on Hamming distance search (GIST / SIFT stand-ins)."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure5_rows


def _check(rows):
    # Candidates shrink monotonically with the chain length for every tau.
    for tau in {row.tau for row in rows}:
        series = [row.avg_candidates for row in rows if row.tau == tau]
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
        results = [row.avg_results for row in rows if row.tau == tau]
        candidates = [row.avg_candidates for row in rows if row.tau == tau]
        assert all(c >= r - 1e-9 for c, r in zip(candidates, results))


def test_fig5_gist_like(benchmark):
    rows = run_once(
        benchmark, figure5_rows,
        dataset_name="gist", taus=(32, 48), chain_lengths=(1, 2, 3, 4, 6, 8),
        scale=0.4, seed=0,
    )
    show("Figure 5 (GIST-like)", format_rows(rows))
    _check(rows)


def test_fig5_sift_like(benchmark):
    rows = run_once(
        benchmark, figure5_rows,
        dataset_name="sift", taus=(64, 96), chain_lengths=(1, 2, 4, 6, 8),
        scale=0.25, seed=1,
    )
    show("Figure 5 (SIFT-like)", format_rows(rows))
    _check(rows)
