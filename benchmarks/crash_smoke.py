"""Crash-recovery smoke: kill -9 a durable server mid-write-burst, lose nothing.

For every domain (Hamming, sets, strings, graphs) at 1 and 2 shards this
driver

1. builds a small index on disk and starts the real HTTP serving layer as a
   subprocess (``python -m repro.engine serve --wal-dir ...``),
2. streams a deterministic sequence of one-op ``POST /mutate`` batches at
   ``wal`` durability (sequential, at most one request in flight) while a
   killer thread SIGKILLs the server partway through the burst,
3. recovers by reopening the checkpoint + write-ahead log(s) in process,
4. derives the recovered prefix length ``L`` from the logs and checks the
   crash contract: ``acked <= L <= acked + 1`` -- every acknowledged batch
   survived, and at most the single in-flight batch may additionally have
   reached disk before the kill, and
5. replays exactly ``ops[:L]`` onto a fresh in-process engine and asserts
   threshold and top-k answers are identical, ids and scores, for every
   stored query.

Exit code 0 means every (domain, shard count) cell held the contract.  CI's
``crash-recovery`` job runs this after the tier-1 suite.

Run with:  PYTHONPATH=src python benchmarks/crash_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

import repro
from repro.engine import Query, SearchEngine
from repro.engine.backend import get_backend
from repro.engine.client import EngineClient
from repro.engine.persistence import save_container
from repro.engine.sharding import ShardedEngine, build_shards
from repro.engine.wal import wal_summary

#: Small workloads: the point is the crash protocol, not throughput.
WORKLOADS = {
    "hamming": dict(size=400, num_queries=4, seed=11),
    "sets": dict(size=400, num_queries=4, seed=12),
    "strings": dict(size=300, num_queries=4, seed=13),
    "graphs": dict(size=60, num_queries=3, seed=14),
}

#: Top-k sizes kept small (graphs: exact GED escalation).
TOPK = {"hamming": 5, "sets": 4, "strings": 4, "graphs": 3}

SHARD_COUNTS = (1, 2)

#: Batches the writer attempts; the killer fires mid-burst.
BURST_BATCHES = 40
KILL_AFTER_ACKS = 25


def _mutation_script(name: str, num_objects: int) -> list[dict]:
    """The deterministic op sequence, one op per batch.

    Upserts carry explicit ids so the acknowledged prefix is a pure function
    of its length -- recovery and the reference replay agree on every id
    without trusting server-side assignment.
    """
    backend = get_backend(name)
    dataset, _payloads = backend.make_workload(
        WORKLOADS[name]["size"], WORKLOADS[name]["num_queries"], WORKLOADS[name]["seed"] + 1
    )
    donors = list(backend.store_records(backend.prepare(dataset)))
    ops: list[dict] = []
    for index in range(BURST_BATCHES):
        if index % 4 == 3:
            ops.append({"op": "delete", "id": (index * 7) % num_objects})
        else:
            ops.append(
                {
                    "op": "upsert",
                    "record": donors[index % len(donors)],
                    "id": num_objects + index,
                }
            )
    return ops


def _spawn_server(index_dir: str, wal_dir: str, ready_file: str) -> subprocess.Popen:
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine",
            "serve",
            "--index",
            index_dir,
            "--wal-dir",
            wal_dir,
            "--port",
            "0",
            "--ready-file",
            ready_file,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _await_ready(ready_file: str, process: subprocess.Popen, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"serve exited early with code {process.returncode}")
        if os.path.exists(ready_file):
            with open(ready_file, encoding="utf-8") as handle:
                host, port = handle.read().split()
            return f"http://{host}:{port}"
        time.sleep(0.05)
    raise RuntimeError("serve did not become ready in time")


def _write_burst_until_killed(url: str, name: str, ops: list[dict], process) -> int:
    """Sequential acked one-op batches; a killer SIGKILLs the server mid-burst.

    Returns the number of acknowledged batches.  The writer keeps at most
    one request in flight, so at the moment of death the unacknowledged
    suffix is at most one batch long -- the crash contract's ``+1``.
    """
    acked = 0
    acked_lock = threading.Event()

    def killer() -> None:
        acked_lock.wait(timeout=60.0)
        process.send_signal(signal.SIGKILL)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    with EngineClient(url, timeout=30.0) as client:
        for op in ops:
            try:
                outcome = client.mutate(name, [op], durability="wal")
            except Exception:
                break  # the kill landed mid-request (reset, half-close, 503)
            assert outcome["durability"] == "wal"
            acked += 1
            if acked == KILL_AFTER_ACKS:
                acked_lock.set()  # arm the killer; keep writing meanwhile
    thread.join(timeout=60.0)
    process.wait(timeout=60.0)
    return acked


def _recovered_prefix_length(wal_dir: str, num_shards: int) -> int:
    """Total ops across the recovered logs = the global prefix length L.

    The writer is sequential and every batch holds exactly one op, so each
    shard's log is the sub-sequence of ops routed to it and the global
    recovered history is the union -- a prefix of the op script of length
    equal to the total op count.
    """
    total = 0
    for entry in sorted(os.listdir(wal_dir)):
        summary = wal_summary(os.path.join(wal_dir, entry))
        total += sum(batch["num_ops"] for batch in summary["batches"])
    return total


def _reference_engine(name: str, dataset, prefix: list[dict]) -> SearchEngine:
    """A fresh in-process engine with exactly the prefix applied."""
    engine = SearchEngine(cache_size=0)
    engine.add_dataset(name, dataset)
    if prefix:
        engine.mutate(name, prefix)
    return engine


def _answers(engine, name: str, payloads, tau, k) -> list[tuple]:
    rows = []
    for payload in payloads:
        threshold = engine.search(Query(backend=name, payload=payload, tau=tau))
        topk = engine.search(Query(backend=name, payload=payload, k=k))
        rows.append((threshold.ids, topk.ids, topk.scores))
    return rows


def run_cell(name: str, num_shards: int, workdir: str) -> dict:
    """One (domain, shard count) crash cell; returns its report entry."""
    backend = get_backend(name)
    config = WORKLOADS[name]
    dataset, payloads = backend.make_workload(
        config["size"], config["num_queries"], config["seed"]
    )
    store = backend.prepare(dataset)
    num_objects = backend.store_size(store)
    tau = backend.default_tau(store)
    ops = _mutation_script(name, num_objects)

    cell_dir = os.path.join(workdir, f"{name}-{num_shards}")
    index_dir = os.path.join(cell_dir, "index")
    wal_dir = os.path.join(cell_dir, "wal")
    if num_shards == 1:
        save_container(backend, store, index_dir)
    else:
        build_shards(name, dataset, index_dir, num_shards)

    ready_file = os.path.join(cell_dir, "ready")
    process = _spawn_server(index_dir, wal_dir, ready_file)
    try:
        url = _await_ready(ready_file, process)
        acked = _write_burst_until_killed(url, name, ops, process)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    recovered_len = _recovered_prefix_length(wal_dir, num_shards)
    contract_ok = acked <= recovered_len <= acked + 1

    reference = _reference_engine(name, dataset, ops[:recovered_len])
    expected = _answers(reference, name, payloads, tau, TOPK[name])
    if num_shards == 1:
        recovered = SearchEngine(cache_size=0)
        recovered.load_index(index_dir)
        recovered.attach_wal(name, os.path.join(wal_dir, f"{name}.wal"))
        observed = _answers(recovered, name, payloads, tau, TOPK[name])
    else:
        with ShardedEngine(index_dir, wal_dir=wal_dir) as recovered:
            observed = _answers(recovered, name, payloads, tau, TOPK[name])
    answers_ok = observed == expected

    return {
        "acked_batches": acked,
        "recovered_ops": recovered_len,
        "contract_ok": contract_ok,
        "answers_ok": answers_ok,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--domains",
        default=None,
        help="comma-separated subset of domains (default: all four)",
    )
    args = parser.parse_args(argv)
    domains = list(WORKLOADS) if args.domains is None else args.domains.split(",")

    ok = True
    with tempfile.TemporaryDirectory(prefix="crash-smoke-") as workdir:
        for name in domains:
            for num_shards in SHARD_COUNTS:
                entry = run_cell(name, num_shards, workdir)
                cell_ok = entry["contract_ok"] and entry["answers_ok"]
                ok = ok and cell_ok
                print(
                    f"[{name:>8} x{num_shards}] acked {entry['acked_batches']:>3}  "
                    f"recovered {entry['recovered_ops']:>3}  "
                    f"contract={'ok' if entry['contract_ok'] else 'VIOLATED'}  "
                    f"answers={'ok' if entry['answers_ok'] else 'DIVERGED'}"
                )
    if not ok:
        print("FAIL: a kill -9 lost acknowledged writes or changed answers")
    else:
        print("crash-recovery contract held on every (domain, shard count) cell")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
