#!/usr/bin/env bash
# CI server smoke: build an index, start the HTTP serving layer for real,
# drive it with the load generator, mutate the live index over HTTP
# (upsert -> query it back -> delete -> verify it is gone -> compact), and
# require non-zero QPS plus a clean graceful shutdown on SIGTERM.  Run from
# the repo root with the package importable (PYTHONPATH=src or an
# installed checkout):
#
#   PYTHONPATH=src timeout 300 bash benchmarks/server_smoke.sh
set -euo pipefail

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

python -m repro.engine build-index --backend sets --out "$workdir/idx" \
    --size 4000 --queries 12 --seed 42

python -m repro.engine serve --index "$workdir/idx" --port 0 \
    --ready-file "$workdir/ready" &
server_pid=$!

for _ in $(seq 1 100); do
  [ -f "$workdir/ready" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died during startup"; exit 1; }
  sleep 0.1
done
[ -f "$workdir/ready" ] || { echo "server never became ready"; exit 1; }

read -r host port < "$workdir/ready"
url="http://$host:$port"
echo "server ready at $url"

# load-bench exits non-zero on request errors or zero successful requests.
python -m repro.engine load-bench --url "$url" --index "$workdir/idx" \
    --profile ci --out "$workdir/LOAD.json"

python - "$workdir/LOAD.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
qps = {level: entry["achieved_qps"] for level, entry in report["concurrency"].items()}
assert all(value > 0 for value in qps.values()), f"zero QPS: {qps}"
print("smoke QPS:", {level: round(value, 1) for level, value in qps.items()})
EOF

# Mutate the live index over HTTP: a fresh record must be servable
# immediately, and must vanish the moment it is deleted.
python - "$url" <<'EOF'
import sys

from repro.engine.client import EngineClient

url = sys.argv[1]
doomed = [70001, 70002, 70003]  # tokens no synthetic record uses
keeper = [80001, 80002, 80003]
with EngineClient(url) as client:
    doomed_id = client.upsert("sets", doomed)
    keeper_id = client.upsert("sets", keeper)
    hits = client.search("sets", doomed, tau=1.0)  # Jaccard 1.0: exact match
    assert doomed_id in hits.ids, f"upserted id {doomed_id} not served: {hits.ids}"
    assert client.delete("sets", doomed_id) is True
    hits = client.search("sets", doomed, tau=1.0)
    assert doomed_id not in hits.ids, f"deleted id {doomed_id} still served: {hits.ids}"
    assert client.delete("sets", doomed_id) is False  # idempotent
    summary = client.compact()
    assert summary["compacted"] is True, summary
    hits = client.search("sets", keeper, tau=1.0)
    assert keeper_id in hits.ids, f"id {keeper_id} lost by compaction: {hits.ids}"
    print(f"mutation smoke: upsert/delete/compact OK (ids {doomed_id}/{keeper_id})")
EOF

kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
  echo "server did not shut down cleanly (exit $status)"
  exit 1
fi
echo "server shut down cleanly"
