#!/usr/bin/env bash
# CI server smoke: build an index, start the HTTP serving layer for real,
# drive it with the load generator, mutate the live index over HTTP
# (upsert -> query it back -> delete -> verify it is gone -> compact), and
# require non-zero QPS plus a clean graceful shutdown on SIGTERM.  The
# server runs with a 1 ms slow-query threshold, so the smoke also asserts
# that /metrics parses as Prometheus text with monotone counters and that
# the served queries landed in the slow-query log with their span
# timelines.  Run from the repo root with the package importable
# (PYTHONPATH=src or an installed checkout):
#
#   PYTHONPATH=src timeout 300 bash benchmarks/server_smoke.sh
set -euo pipefail

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

python -m repro.engine build-index --backend sets --out "$workdir/idx" \
    --size 4000 --queries 12 --seed 42

python -m repro.engine serve --index "$workdir/idx" --port 0 \
    --ready-file "$workdir/ready" \
    --slow-query-ms 1 --slow-query-log "$workdir/slow.jsonl" \
    --profile-hz 67 &
server_pid=$!

for _ in $(seq 1 100); do
  [ -f "$workdir/ready" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died during startup"; exit 1; }
  sleep 0.1
done
[ -f "$workdir/ready" ] || { echo "server never became ready"; exit 1; }

read -r host port < "$workdir/ready"
url="http://$host:$port"
echo "server ready at $url"

# load-bench exits non-zero on request errors or zero successful requests.
python -m repro.engine load-bench --url "$url" --index "$workdir/idx" \
    --profile ci --out "$workdir/LOAD.json"

python - "$workdir/LOAD.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
qps = {level: entry["achieved_qps"] for level, entry in report["concurrency"].items()}
assert all(value > 0 for value in qps.values()), f"zero QPS: {qps}"
print("smoke QPS:", {level: round(value, 1) for level, value in qps.items()})
EOF

# /metrics must parse as Prometheus text (0.0.4: HELP/TYPE metadata,
# name{label="value"} samples, optional OpenMetrics exemplars on traced
# histogram buckets) and its counters must only ever go up.  Because the
# server runs with a 1 ms slow-query threshold every query is traced, so
# the latency histogram must carry at least one exemplar -- and its trace
# id must resolve to a span timeline under /debug/traces.
python - "$url" <<'EOF'
import json
import re
import sys
import urllib.request

url = sys.argv[1]

EXEMPLAR = r'( # \{trace_id="(?:[^"\\]|\\.)*"\} [0-9.eE+-]+( [0-9.eE+-]+)?)?'
SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?([0-9.eE+-]+|\+Inf|-Inf|NaN)" + EXEMPLAR + r"$"
)
META = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def scrape():
    text = urllib.request.urlopen(f"{url}/metrics").read().decode("utf-8")
    samples = {}
    exemplar_ids = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert META.match(line), f"bad metadata line: {line!r}"
            continue
        assert SAMPLE.match(line), f"bad sample line: {line!r}"
        marker = line.find(" # {")
        if marker >= 0:
            exemplar_ids.add(re.search(r'trace_id="([^"]+)"', line).group(1))
            line = line[:marker]
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples, exemplar_ids


before, exemplar_ids = scrape()
for family in ("server_queries_total", "engine_query_seconds_bucket", "http_requests_total"):
    assert any(key.startswith(family) for key in before), f"no {family} samples"
assert exemplar_ids, "traced histograms carried no exemplars"
traces = json.load(urllib.request.urlopen(f"{url}/debug/traces"))
known = {doc.get("trace_id") for doc in traces["traces"]}
resolved = exemplar_ids & known
assert resolved, f"no exemplar resolves in /debug/traces: {sorted(exemplar_ids)[:3]}"
urllib.request.urlopen(f"{url}/healthz").read()  # traffic between scrapes
after, _ = scrape()
monotone = 0
for key, value in before.items():
    if "_total" in key or "_count" in key or "_bucket" in key:
        assert key in after and after[key] >= value, f"{key} went backwards"
        monotone += 1
assert monotone > 0
print(
    f"metrics smoke: {len(before)} samples parsed, {monotone} monotone counters, "
    f"{len(resolved)} exemplar(s) resolved OK"
)
EOF

# The continuous profiler (--profile-hz 67) must attribute the load it just
# served: non-empty folded stacks, with the lion's share of self time on
# named engine roles rather than unattributed threads.
python - "$url" <<'EOF'
import json
import sys
import urllib.request

url = sys.argv[1]
payload = json.load(urllib.request.urlopen(f"{url}/debug/profile?seconds=1"))
profile = payload["profile"]
assert profile["roles"], "profiler returned no samples"
assert payload["folded"], "no folded stacks"
for line in payload["folded"]:
    head, _, count = line.rpartition(" ")
    assert ";" in head and int(count) > 0, f"bad folded line: {line!r}"
attribution = payload["attribution"]
named = sum(share for role, share in attribution.items() if role != "other")
assert named >= 0.9, f"only {named:.0%} of self time on named roles: {attribution}"
slo = json.load(urllib.request.urlopen(f"{url}/debug/slo"))
assert slo["slo"]["windows"]["fast"]["requests"] > 0, slo
assert slo["slo"]["breaching"] is False, slo
print(
    f"profile smoke: {sum(r['samples'] for r in profile['roles'].values())} samples, "
    f"{len(payload['folded'])} stacks, {named:.0%} attributed OK"
)
EOF

# Mutate the live index over HTTP: a fresh record must be servable
# immediately, and must vanish the moment it is deleted.
python - "$url" <<'EOF'
import sys

from repro.engine.client import EngineClient

url = sys.argv[1]
doomed = [70001, 70002, 70003]  # tokens no synthetic record uses
keeper = [80001, 80002, 80003]
with EngineClient(url) as client:
    doomed_id = client.upsert("sets", doomed)
    keeper_id = client.upsert("sets", keeper)
    hits = client.search("sets", doomed, tau=1.0)  # Jaccard 1.0: exact match
    assert doomed_id in hits.ids, f"upserted id {doomed_id} not served: {hits.ids}"
    assert client.delete("sets", doomed_id) is True
    hits = client.search("sets", doomed, tau=1.0)
    assert doomed_id not in hits.ids, f"deleted id {doomed_id} still served: {hits.ids}"
    assert client.delete("sets", doomed_id) is False  # idempotent
    summary = client.compact()
    assert summary["compacted"] is True, summary
    hits = client.search("sets", keeper, tau=1.0)
    assert keeper_id in hits.ids, f"id {keeper_id} lost by compaction: {hits.ids}"
    print(f"mutation smoke: upsert/delete/compact OK (ids {doomed_id}/{keeper_id})")
EOF

# Every served query took over the 1 ms threshold (the micro-batch window
# alone is 2 ms), so the slow-query log must hold them with span timelines.
python - "$workdir/slow.jsonl" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    entries = [json.loads(line) for line in handle]
assert entries, "slow-query log is empty"
entry = entries[0]
assert entry["e2e_ms"] >= 1.0, entry
assert entry["trace_id"], entry
names = [span["name"] for span in entry["trace"]["spans"]]
assert names == ["coalesce_wait", "batch_exec"], names
assert entry["backend"] == "sets" and entry["route"].startswith("/search"), entry
print(f"slow-query log: {len(entries)} entries, first {entry['e2e_ms']:.2f} ms OK")
EOF

kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
  echo "server did not shut down cleanly (exit $status)"
  exit 1
fi
echo "server shut down cleanly"

# A clean shutdown must also be a *complete* one: run the full server
# lifecycle in-process (with the continuous profiler armed, the same
# thread population the subprocess above had) and require that stop()
# leaves no non-daemon thread behind -- and none of the named engine
# roles (executor / batcher / compaction) still running, daemon or not,
# as classified by the profiler's role registry (diag.thread_role).
python - <<'EOF'
import threading
import time

from repro.common.diag import thread_role
from repro.datasets.tokens import zipfian_set_workload
from repro.engine import SearchEngine
from repro.engine.client import EngineClient
from repro.engine.server import ServerConfig, ServerThread
from repro.sets import SetDataset

workload = zipfian_set_workload(200, 8, seed=3)
engine = SearchEngine(cache_size=16)
engine.add_dataset("sets", SetDataset(workload.records, num_classes=4))

baseline = {t.ident for t in threading.enumerate()}
with ServerThread(engine, ServerConfig(max_wait_ms=1.0, profile_hz=50)) as handle:
    with EngineClient(handle.url) as client:
        client.search("sets", list(workload.queries[0]), tau=0.6)

leaked = []
deadline = time.monotonic() + 10.0
while time.monotonic() < deadline:
    leaked = [t for t in threading.enumerate() if t.ident not in baseline and t.is_alive()]
    if not leaked:
        break
    time.sleep(0.05)
roles = {t.name: thread_role(t.name) for t in leaked}
nondaemon = [t.name for t in leaked if not t.daemon]
assert not nondaemon, f"non-daemon threads survived shutdown: {nondaemon} (roles: {roles})"
engine_roles = {name: role for name, role in roles.items() if role != "other"}
assert not engine_roles, f"engine threads survived shutdown: {engine_roles}"
print(f"shutdown leak check: no surviving threads OK (transient: {roles or 'none'})")
EOF
