#!/usr/bin/env bash
# CI server smoke: build an index, start the HTTP serving layer for real,
# drive it with the load generator, and require non-zero QPS plus a clean
# graceful shutdown on SIGTERM.  Run from the repo root with the package
# importable (PYTHONPATH=src or an installed checkout):
#
#   PYTHONPATH=src timeout 300 bash benchmarks/server_smoke.sh
set -euo pipefail

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

python -m repro.engine build-index --backend sets --out "$workdir/idx" \
    --size 4000 --queries 12 --seed 42

python -m repro.engine serve --index "$workdir/idx" --port 0 \
    --ready-file "$workdir/ready" &
server_pid=$!

for _ in $(seq 1 100); do
  [ -f "$workdir/ready" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died during startup"; exit 1; }
  sleep 0.1
done
[ -f "$workdir/ready" ] || { echo "server never became ready"; exit 1; }

read -r host port < "$workdir/ready"
url="http://$host:$port"
echo "server ready at $url"

# load-bench exits non-zero on request errors or zero successful requests.
python -m repro.engine load-bench --url "$url" --index "$workdir/idx" \
    --profile ci --out "$workdir/LOAD.json"

python - "$workdir/LOAD.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
qps = {level: entry["achieved_qps"] for level, entry in report["concurrency"].items()}
assert all(value > 0 for value in qps.values()), f"zero QPS: {qps}"
print("smoke QPS:", {level: round(value, 1) for level, value in qps.items()})
EOF

kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
  echo "server did not shut down cleanly (exit $status)"
  exit 1
fi
echo "server shut down cleanly"
