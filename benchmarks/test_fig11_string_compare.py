"""Figure 11: Pivotal versus Ring on string edit distance search."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure11_rows


def _check(rows):
    for tau in {row.tau for row in rows}:
        by_algo = {row.algorithm: row for row in rows if row.tau == tau}
        assert abs(by_algo["Ring"].avg_results - by_algo["Pivotal"].avg_results) < 1e-9


def test_fig11_imdb_like(benchmark):
    rows = run_once(
        benchmark, figure11_rows,
        dataset_name="imdb", taus=(1, 2, 3, 4), scale=0.5, seed=0,
    )
    show("Figure 11 (IMDB-like)", format_rows(rows))
    _check(rows)


def test_fig11_pubmed_like(benchmark):
    rows = run_once(
        benchmark, figure11_rows,
        dataset_name="pubmed", taus=(4, 6), scale=0.4, seed=1,
    )
    show("Figure 11 (PubMed-like)", format_rows(rows))
    _check(rows)
