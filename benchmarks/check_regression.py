"""CI regression gate: diff a fresh BENCH_all.json against the baseline.

Compares every (domain, shard count) present in the committed baseline
against the candidate report produced by ``benchmarks/run_all.py``:

* the candidate must use the same benchmark schema version,
* sharded results must still agree with the unsharded reference,
* throughput must not drop more than ``--tolerance`` (default 30%)
  relative to the baseline,
* the HTTP ``served`` profile (when both reports carry one) must not lose
  more than ``--tolerance`` of its achieved QPS at any concurrency level,
* the ``replication`` profile: replicated answers must equal the unsharded
  reference, a failover must have been measured, and -- gated *within the
  candidate report*, so it is hardware-independent -- the writer's worst
  op latency during a rolling compaction must stay under half the
  compaction's own wall clock (writes ride the sibling replica while one
  drains and rebuilds; a blocking rebuild pins the stall at ~100%);
  replicated throughput is additionally gated against the baseline at
  ``--tolerance`` when both reports carry the section,
* the ``mutation`` profile (when both reports carry one) must keep
  compaction answer-preserving and must not lose more than ``--tolerance``
  of its query throughput under write load, and
* the ``pipeline`` profile (when both reports carry one) must keep the
  columnar ids identical to the scalar reference, must not lose more than
  ``--tolerance`` of the columnar (``ring``) throughput, and -- on the
  sets and strings domains, whose kernels are the point of the columnar
  rewrite -- must keep the same-hardware columnar-vs-scalar speedup above
  ``--speedup-floor`` (a scalar-loop regression in the kernels drags that
  ratio towards 1x and fails the build even when absolute throughput
  noise would mask it), and
* the ``durability`` profile (checked *within the candidate report*, so
  it is hardware-independent): batched ``/mutate`` ingest at ``wal``
  durability must at least match the single-op upsert rate measured
  seconds earlier on the same server (group commit cannot be slower than
  one fsync per op), and background auto-compaction must have completed
  without error; batched-wal ops/s is additionally gated against the
  baseline at ``--tolerance`` when both reports carry the section, and
* the ``observability`` profile: traced answers must equal untraced ones,
  and -- gated *within the candidate report*, so it is hardware-
  independent -- the tracing-disabled throughput must stay within
  ``--observability-tolerance`` (default 5%) of the pipeline-ring
  reference measured back to back in the same section: the span
  instrumentation's disabled path is supposed to be a guard check, not a
  cost.  The same tolerance caps ``diag_overhead_pct`` -- the best
  pairwise wall ratio of the diagnostics-on pass (continuous profiler +
  tail sampler + span->metrics bridge) over its interleaved tracing-on
  twin: always-on diagnostics must stay cheap enough to never turn off.
  Tracing-off throughput is additionally gated against the baseline at
  ``--tolerance`` when both reports carry the section.

``--pipeline-only`` gates just the ``pipeline`` section and only its
hardware-independent checks (agreement + speedup ratio, not absolute
QPS -- the committed baseline was measured on different hardware than
the CI runner); CI's kernel micro-bench smoke pairs it with
``run_all.py --pipeline-only``.

Throughput is hardware-dependent; each report's ``hardware`` block records
the ``cpu_count`` it was measured on, and the tolerance absorbs
runner-to-runner noise.  Speedup-vs-1-shard additionally depends on the
CPU count (process-parallel serving cannot beat one core), so speedup
comparisons are *skipped entirely* when the baseline and candidate were
measured on different core counts -- a baseline from a 1-CPU container
says nothing about scaling on a multi-core runner -- and reported (never
gated) when the counts match.

Run with:
  python benchmarks/check_regression.py benchmarks/BENCH_all.json /tmp/BENCH_all.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare(
    baseline: dict,
    candidate: dict,
    tolerance: float,
    speedup_floor: float = 0.0,
    pipeline_only: bool = False,
    observability_tolerance: float = 0.05,
) -> list[str]:
    """All gate violations, as human-readable messages (empty means pass)."""
    failures: list[str] = []
    base_schema = baseline.get("schema_version")
    cand_schema = candidate.get("schema_version")
    if base_schema != cand_schema:
        return [
            f"schema mismatch: baseline v{base_schema} vs candidate v{cand_schema}; "
            f"regenerate the baseline with benchmarks/run_all.py"
        ]
    if pipeline_only:
        # The kernel-smoke gate runs on arbitrary CI hardware against the
        # committed baseline, so only the hardware-independent checks apply:
        # columnar/scalar agreement and the same-machine speedup ratio.
        # Absolute pipeline throughput is gated by the full compare, which
        # CI pairs with a runner-measured baseline.
        return compare_pipeline(
            baseline, candidate, tolerance, speedup_floor, gate_throughput=False
        )
    for domain, base_section in baseline.get("domains", {}).items():
        cand_section = candidate.get("domains", {}).get(domain)
        if cand_section is None:
            failures.append(f"{domain}: missing from the candidate report")
            continue
        for count, base_entry in base_section.get("shards", {}).items():
            cand_entry = cand_section.get("shards", {}).get(count)
            if cand_entry is None:
                failures.append(f"{domain} x{count}: missing from the candidate report")
                continue
            if not cand_entry.get("results_agree", False):
                failures.append(
                    f"{domain} x{count}: sharded results no longer match the "
                    f"unsharded reference"
                )
            base_qps = base_entry.get("throughput_qps", 0.0)
            cand_qps = cand_entry.get("throughput_qps", 0.0)
            floor = base_qps * (1.0 - tolerance)
            if cand_qps < floor:
                drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
                failures.append(
                    f"{domain} x{count}: throughput dropped {drop:.0%} "
                    f"({base_qps:.1f} -> {cand_qps:.1f} q/s, floor {floor:.1f})"
                )
    failures.extend(compare_served(baseline, candidate, tolerance))
    failures.extend(compare_replication(baseline, candidate, tolerance))
    failures.extend(compare_mutation(baseline, candidate, tolerance))
    failures.extend(compare_durability(baseline, candidate, tolerance))
    failures.extend(compare_pipeline(baseline, candidate, tolerance, speedup_floor))
    failures.extend(
        compare_observability(baseline, candidate, tolerance, observability_tolerance)
    )
    return failures


#: Domains whose columnar-vs-scalar speedup is gated (the acceptance target
#: of the columnar rewrite); graphs' hot loop is the per-pair isomorphism,
#: so its ratio is reported but not gated.
SPEEDUP_GATED_DOMAINS = ("sets", "strings")


def compare_pipeline(
    baseline: dict,
    candidate: dict,
    tolerance: float,
    speedup_floor: float,
    gate_throughput: bool = True,
) -> list[str]:
    """Gate the columnar pipeline: agreement, throughput, kernel speedup."""
    base_pipeline = baseline.get("pipeline", {}).get("domains", {})
    if not base_pipeline:
        return []  # old baseline without a pipeline profile: nothing to gate
    failures: list[str] = []
    cand_pipeline = candidate.get("pipeline", {}).get("domains", {})
    for domain, base_entry in base_pipeline.items():
        cand_entry = cand_pipeline.get(domain)
        if cand_entry is None:
            failures.append(f"pipeline {domain}: missing from the candidate report")
            continue
        if not cand_entry.get("results_agree", False):
            failures.append(
                f"pipeline {domain}: columnar ids diverged from the scalar reference"
            )
        base_qps = base_entry.get("algorithms", {}).get("ring", {}).get("throughput_qps", 0.0)
        cand_qps = cand_entry.get("algorithms", {}).get("ring", {}).get("throughput_qps", 0.0)
        floor = base_qps * (1.0 - tolerance)
        if gate_throughput and cand_qps < floor:
            drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
            failures.append(
                f"pipeline {domain}: columnar throughput dropped {drop:.0%} "
                f"({base_qps:.1f} -> {cand_qps:.1f} q/s, floor {floor:.1f})"
            )
        if (
            speedup_floor > 0.0
            and domain in SPEEDUP_GATED_DOMAINS
            and base_entry.get("speedup_columnar_vs_scalar") is not None
        ):
            speedup = cand_entry.get("speedup_columnar_vs_scalar", 0.0)
            if speedup < speedup_floor:
                failures.append(
                    f"pipeline {domain}: columnar-vs-scalar speedup fell to "
                    f"{speedup:.2f}x (floor {speedup_floor:.2f}x) -- a scalar-loop "
                    f"regression in the kernels"
                )
    return failures


def compare_observability(
    baseline: dict, candidate: dict, tolerance: float, observability_tolerance: float
) -> list[str]:
    """Gate the observability profile: traced answers + disabled-path cost.

    The disabled-path check is candidate-internal: tracing-off throughput
    vs ``pipeline_ring_qps``, the pipeline-profile workload re-measured
    back to back in the same section (same engine, seconds apart), so the
    5% floor gates on any hardware instead of inheriting the load drift
    between report sections.  The diagnostics-on check is candidate-internal
    for the same reason: ``diag_overhead_pct`` is the best pairwise
    diag-vs-traced wall ratio over interleaved passes (continuous
    profiler + tail sampler + span->metrics bridge, all armed), so it
    measures the hooks rather than the runner, and it must stay within
    the observability tolerance.  The baseline comparison follows the
    usual skip-when-absent pattern.
    """
    failures: list[str] = []
    cand_obs = candidate.get("observability", {}).get("domains", {})
    for domain, entry in cand_obs.items():
        if not entry.get("traced_results_agree", False):
            failures.append(
                f"observability {domain}: traced answers diverged from untraced ones"
            )
        pipeline_qps = entry.get("pipeline_ring_qps", 0.0)
        off_qps = entry.get("tracing_off_qps", 0.0)
        floor = pipeline_qps * (1.0 - observability_tolerance)
        if pipeline_qps and off_qps < floor:
            drop = 1.0 - off_qps / pipeline_qps
            failures.append(
                f"observability {domain}: tracing-disabled throughput is {drop:.1%} "
                f"below the in-section pipeline-ring reference ({pipeline_qps:.1f} -> "
                f"{off_qps:.1f} q/s, floor {floor:.1f}) -- the untraced serving path "
                f"got more expensive"
            )
        diag_overhead = entry.get("diag_overhead_pct")
        if diag_overhead is not None:  # reports predating the diag pass skip
            cap = 100.0 * observability_tolerance
            if diag_overhead > cap:
                failures.append(
                    f"observability {domain}: diagnostics-on overhead is "
                    f"{diag_overhead:+.1f}% over the interleaved tracing-on "
                    f"reference (cap {cap:.0f}%) -- the always-on "
                    f"profiler/tail-sampler/bridge stack got too expensive"
                )
    base_obs = baseline.get("observability", {}).get("domains", {})
    for domain, base_entry in base_obs.items():
        cand_entry = cand_obs.get(domain)
        if cand_entry is None:
            failures.append(f"observability {domain}: missing from the candidate report")
            continue
        base_qps = base_entry.get("tracing_off_qps", 0.0)
        cand_qps = cand_entry.get("tracing_off_qps", 0.0)
        floor = base_qps * (1.0 - tolerance)
        if cand_qps < floor:
            drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
            failures.append(
                f"observability {domain}: tracing-off throughput dropped {drop:.0%} "
                f"({base_qps:.1f} -> {cand_qps:.1f} q/s, floor {floor:.1f})"
            )
    return failures


def compare_mutation(baseline: dict, candidate: dict, tolerance: float) -> list[str]:
    """Gate the write-load profile: query QPS under writes + compact safety."""
    base_mutation = baseline.get("mutation", {}).get("domains", {})
    if not base_mutation:
        return []  # old baseline without a mutation profile: nothing to gate
    failures: list[str] = []
    cand_mutation = candidate.get("mutation", {}).get("domains", {})
    for domain, base_entry in base_mutation.items():
        cand_entry = cand_mutation.get(domain)
        if cand_entry is None:
            failures.append(f"mutation {domain}: missing from the candidate report")
            continue
        if not cand_entry.get("compact_preserves_answers", False):
            failures.append(f"mutation {domain}: compaction changed query answers")
        base_qps = base_entry.get("queries_per_s_under_writes", 0.0)
        cand_qps = cand_entry.get("queries_per_s_under_writes", 0.0)
        floor = base_qps * (1.0 - tolerance)
        if cand_qps < floor:
            drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
            failures.append(
                f"mutation {domain}: query throughput under writes dropped "
                f"{drop:.0%} ({base_qps:.1f} -> {cand_qps:.1f} q/s, floor {floor:.1f})"
            )
    return failures


def compare_durability(baseline: dict, candidate: dict, tolerance: float) -> list[str]:
    """Gate the durable-ingest profile: group commit + clean auto-compaction.

    The batched-vs-single-op check is candidate-internal (both rates come
    from the same server seconds apart), so it gates on any hardware; the
    baseline comparison follows the usual skip-when-absent pattern.
    """
    failures: list[str] = []
    cand_durability = candidate.get("durability", {}).get("domains", {})
    for domain, entry in cand_durability.items():
        single = entry.get("single_op_wal_qps", 0.0)
        batched = entry.get("levels", {}).get("wal", {}).get("batched_ops_per_s", 0.0)
        if single and batched < single:
            failures.append(
                f"durability {domain}: batched /mutate at wal durability moves "
                f"{batched:.1f} op/s, below the single-op upsert rate "
                f"({single:.1f} op/s) -- group commit stopped amortising the fsync"
            )
        compaction = entry.get("auto_compaction", {})
        if not compaction.get("completed_cleanly", False):
            failures.append(
                f"durability {domain}: background auto-compaction did not "
                f"complete cleanly (ran {compaction.get('compactions', 0)} "
                f"fold(s))"
            )
    base_durability = baseline.get("durability", {}).get("domains", {})
    for domain, base_entry in base_durability.items():
        cand_entry = cand_durability.get(domain)
        if cand_entry is None:
            failures.append(f"durability {domain}: missing from the candidate report")
            continue
        base_qps = base_entry.get("levels", {}).get("wal", {}).get("batched_ops_per_s", 0.0)
        cand_qps = cand_entry.get("levels", {}).get("wal", {}).get("batched_ops_per_s", 0.0)
        floor = base_qps * (1.0 - tolerance)
        if cand_qps < floor:
            drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
            failures.append(
                f"durability {domain}: batched wal ingest dropped {drop:.0%} "
                f"({base_qps:.1f} -> {cand_qps:.1f} op/s, floor {floor:.1f})"
            )
    return failures


def compare_replication(baseline: dict, candidate: dict, tolerance: float) -> list[str]:
    """Gate the replication profile: agreement, failover, rolling write stall.

    The rolling-compaction check is candidate-internal, so it gates on any
    hardware: with more than one replica the writer's worst op latency
    during a compaction must stay under half the compaction's own wall
    clock (writes ride the sibling while one replica drains and rebuilds;
    a blocking rebuild pins the stall at ~100% of the wall).  The check is
    skipped when the rebuild finished too fast to measure a stall against.
    Replicated throughput is additionally gated against the baseline at
    ``--tolerance`` when both reports carry the section.
    """
    failures: list[str] = []
    cand_replication = candidate.get("replication", {}).get("domains", {})
    for domain, entry in cand_replication.items():
        if not entry.get("results_agree", False):
            failures.append(
                f"replication {domain}: replicated answers diverged from the "
                f"unsharded reference (routing or failover changed results)"
            )
        for factor, replicas_entry in entry.get("replicas", {}).items():
            if factor == "1":
                continue
            if "failover_search_ms" not in replicas_entry:
                failures.append(
                    f"replication {domain} r={factor}: no failover was measured"
                )
            compact_ms = replicas_entry.get("compact_seconds", 0.0) * 1000.0
            stall_ms = replicas_entry.get("max_write_stall_ms", 0.0)
            if compact_ms >= 200.0 and stall_ms > 0.5 * compact_ms:
                failures.append(
                    f"replication {domain} r={factor}: writes stalled "
                    f"{stall_ms:.0f} ms during a {compact_ms:.0f} ms rolling "
                    f"compaction -- the rebuild is blocking the write path"
                )
    base_replication = baseline.get("replication", {}).get("domains", {})
    for domain, base_entry in base_replication.items():
        cand_entry = cand_replication.get(domain)
        if cand_entry is None:
            failures.append(f"replication {domain}: missing from the candidate report")
            continue
        for factor, base_replicas in base_entry.get("replicas", {}).items():
            cand_replicas = cand_entry.get("replicas", {}).get(factor)
            if cand_replicas is None:
                failures.append(
                    f"replication {domain} r={factor}: missing from the candidate"
                )
                continue
            base_qps = base_replicas.get("throughput_qps", 0.0)
            cand_qps = cand_replicas.get("throughput_qps", 0.0)
            floor = base_qps * (1.0 - tolerance)
            if cand_qps < floor:
                drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
                failures.append(
                    f"replication {domain} r={factor}: throughput dropped "
                    f"{drop:.0%} ({base_qps:.1f} -> {cand_qps:.1f} q/s, "
                    f"floor {floor:.1f})"
                )
    return failures


def compare_served(baseline: dict, candidate: dict, tolerance: float) -> list[str]:
    """Gate the HTTP served profile: achieved QPS per (domain, concurrency)."""
    base_served = baseline.get("served", {}).get("domains", {})
    if not base_served:
        return []  # old baseline without a served profile: nothing to gate
    failures: list[str] = []
    cand_served = candidate.get("served", {}).get("domains", {})
    for domain, base_section in base_served.items():
        cand_section = cand_served.get(domain)
        if cand_section is None:
            failures.append(f"served {domain}: missing from the candidate report")
            continue
        for level, base_entry in base_section.get("concurrency", {}).items():
            cand_entry = cand_section.get("concurrency", {}).get(level)
            if cand_entry is None:
                failures.append(f"served {domain} c={level}: missing from the candidate")
                continue
            if cand_entry.get("num_errors", 0):
                failures.append(
                    f"served {domain} c={level}: {cand_entry['num_errors']} request error(s)"
                )
            base_qps = base_entry.get("achieved_qps", 0.0)
            cand_qps = cand_entry.get("achieved_qps", 0.0)
            floor = base_qps * (1.0 - tolerance)
            if cand_qps < floor:
                drop = 1.0 - cand_qps / base_qps if base_qps else 1.0
                failures.append(
                    f"served {domain} c={level}: QPS dropped {drop:.0%} "
                    f"({base_qps:.1f} -> {cand_qps:.1f} q/s, floor {floor:.1f})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed benchmarks/BENCH_all.json")
    parser.add_argument("candidate", help="freshly generated report to validate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=1.5,
        help=(
            "minimum columnar-vs-scalar pipeline speedup on sets/strings "
            "(default 1.5; 0 disables the gate)"
        ),
    )
    parser.add_argument(
        "--pipeline-only",
        action="store_true",
        help="gate only the pipeline section (CI kernel micro-bench smoke)",
    )
    parser.add_argument(
        "--observability-tolerance",
        type=float,
        default=0.05,
        help=(
            "maximum tolerated drop of tracing-disabled throughput below the "
            "candidate's own pipeline throughput, and cap on diagnostics-on "
            "overhead vs the interleaved traced pass (default 0.05)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be within [0, 1)")
    if args.speedup_floor < 0.0:
        parser.error("--speedup-floor must be non-negative")
    if not 0.0 <= args.observability_tolerance < 1.0:
        parser.error("--observability-tolerance must be within [0, 1)")

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    failures = compare(
        baseline,
        candidate,
        args.tolerance,
        speedup_floor=args.speedup_floor,
        pipeline_only=args.pipeline_only,
        observability_tolerance=args.observability_tolerance,
    )

    base_cpus = baseline.get("hardware", {}).get("cpu_count")
    cand_cpus = candidate.get("hardware", {}).get("cpu_count")
    same_cores = base_cpus is not None and base_cpus == cand_cpus
    for domain, section in sorted(candidate.get("domains", {}).items()):
        for count, entry in sorted(section.get("shards", {}).items(), key=lambda kv: int(kv[0])):
            base = baseline.get("domains", {}).get(domain, {}).get("shards", {}).get(count, {})
            base_qps = base.get("throughput_qps")
            delta = (
                f"{entry['throughput_qps'] / base_qps - 1.0:+.0%} vs baseline"
                if base_qps
                else "no baseline"
            )
            if same_cores and base.get("speedup_vs_1_shard"):
                speedup = (
                    f"speedup {entry.get('speedup_vs_1_shard', 0.0):.2f}x "
                    f"(baseline {base['speedup_vs_1_shard']:.2f}x)"
                )
            else:
                speedup = f"speedup {entry.get('speedup_vs_1_shard', 0.0):.2f}x"
            print(
                f"[{domain:>8} x{count}] {entry['throughput_qps']:>8.1f} q/s "
                f"({delta})  {speedup}  "
                f"agree={entry.get('results_agree')}"
            )
    for domain, section in sorted(candidate.get("served", {}).get("domains", {}).items()):
        for level, entry in sorted(
            section.get("concurrency", {}).items(), key=lambda kv: int(kv[0])
        ):
            base = (
                baseline.get("served", {})
                .get("domains", {})
                .get(domain, {})
                .get("concurrency", {})
                .get(level, {})
            )
            base_qps = base.get("achieved_qps")
            delta = (
                f"{entry['achieved_qps'] / base_qps - 1.0:+.0%} vs baseline"
                if base_qps
                else "no baseline"
            )
            print(
                f"[{domain:>8} served c={level:<2}] {entry['achieved_qps']:>8.1f} q/s "
                f"({delta})  p99 {entry.get('p99_ms', 0.0):.2f} ms  "
                f"batch {entry.get('avg_batch_size', 0.0):.2f}"
            )
    for domain, entry in sorted(
        candidate.get("replication", {}).get("domains", {}).items()
    ):
        base = baseline.get("replication", {}).get("domains", {}).get(domain, {})
        for factor, replicas_entry in sorted(entry.get("replicas", {}).items()):
            base_qps = (
                base.get("replicas", {}).get(factor, {}).get("throughput_qps")
            )
            delta = (
                f"{replicas_entry['throughput_qps'] / base_qps - 1.0:+.0%} vs baseline"
                if base_qps
                else "no baseline"
            )
            extra = (
                f"  failover {replicas_entry['failover_search_ms']:.1f} ms "
                f"heal {replicas_entry.get('heal_seconds', 0.0):.1f}s"
                if "failover_search_ms" in replicas_entry
                else ""
            )
            print(
                f"[{domain:>8} replication r={factor}] "
                f"{replicas_entry.get('throughput_qps', 0.0):>8.1f} q/s ({delta})  "
                f"write stall {replicas_entry.get('max_write_stall_ms', 0.0):.1f} ms "
                f"of {replicas_entry.get('compact_seconds', 0.0) * 1000.0:.0f} ms "
                f"compaction{extra}"
            )
    for domain, entry in sorted(candidate.get("pipeline", {}).get("domains", {}).items()):
        base = baseline.get("pipeline", {}).get("domains", {}).get(domain, {})
        ring = entry.get("algorithms", {}).get("ring", {})
        base_qps = base.get("algorithms", {}).get("ring", {}).get("throughput_qps")
        delta = (
            f"{ring.get('throughput_qps', 0.0) / base_qps - 1.0:+.0%} vs baseline"
            if base_qps
            else "no baseline"
        )
        speedup = entry.get("speedup_columnar_vs_scalar")
        speedup_text = f"columnar {speedup:.2f}x vs scalar  " if speedup is not None else ""
        print(
            f"[{domain:>8} pipeline] {ring.get('throughput_qps', 0.0):>8.1f} q/s "
            f"({delta})  {speedup_text}"
            f"funnel {ring.get('avg_generated_candidates', 0.0):.1f} -> "
            f"{ring.get('avg_verified_candidates', 0.0):.1f} -> "
            f"{ring.get('avg_results', 0.0):.1f}  "
            f"agree={entry.get('results_agree')}"
        )
    for domain, entry in sorted(
        candidate.get("observability", {}).get("domains", {}).items()
    ):
        base = baseline.get("observability", {}).get("domains", {}).get(domain, {})
        base_qps = base.get("tracing_off_qps")
        delta = (
            f"{entry['tracing_off_qps'] / base_qps - 1.0:+.0%} vs baseline"
            if base_qps
            else "no baseline"
        )
        print(
            f"[{domain:>8} obs] tracing off {entry.get('tracing_off_qps', 0.0):>8.1f} q/s "
            f"({delta})  on {entry.get('tracing_on_qps', 0.0):>8.1f} q/s  "
            f"overhead {entry.get('tracing_overhead_pct', 0.0):+.1f}%  "
            f"agree={entry.get('traced_results_agree')}"
        )
    for domain, entry in sorted(candidate.get("mutation", {}).get("domains", {}).items()):
        base = baseline.get("mutation", {}).get("domains", {}).get(domain, {})
        base_qps = base.get("queries_per_s_under_writes")
        delta = (
            f"{entry['queries_per_s_under_writes'] / base_qps - 1.0:+.0%} vs baseline"
            if base_qps
            else "no baseline"
        )
        print(
            f"[{domain:>8} mutation] {entry['queries_per_s_under_writes']:>8.1f} q/s "
            f"under {entry.get('writes_per_s', 0.0):.1f} w/s ({delta})  "
            f"compact {entry.get('compact_seconds', 0.0):.2f}s  "
            f"stable={entry.get('compact_preserves_answers')}"
        )
    for domain, entry in sorted(candidate.get("durability", {}).get("domains", {}).items()):
        base = baseline.get("durability", {}).get("domains", {}).get(domain, {})
        wal_level = entry.get("levels", {}).get("wal", {})
        base_qps = base.get("levels", {}).get("wal", {}).get("batched_ops_per_s")
        delta = (
            f"{wal_level.get('batched_ops_per_s', 0.0) / base_qps - 1.0:+.0%} vs baseline"
            if base_qps
            else "no baseline"
        )
        compaction = entry.get("auto_compaction", {})
        print(
            f"[{domain:>8} durable] batched wal "
            f"{wal_level.get('batched_ops_per_s', 0.0):>8.1f} op/s ({delta})  "
            f"{entry.get('batched_vs_single_op', 0.0):.2f}x vs single-op  "
            f"compactions {compaction.get('compactions', 0)} "
            f"(query p99 {compaction.get('query_p99_ms', 0.0):.2f} ms)  "
            f"clean={compaction.get('completed_cleanly')}"
        )
    print(
        f"hardware: baseline {base_cpus} cpu(s), candidate {cand_cpus} cpu(s); "
        f"tolerance {args.tolerance:.0%}"
    )
    if not same_cores:
        print(
            "shard-speedup comparison skipped: baseline and candidate were "
            "measured on different core counts, so speedup-vs-1-shard is not "
            "comparable across these hosts"
        )

    if failures:
        print(f"\nREGRESSION GATE FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
