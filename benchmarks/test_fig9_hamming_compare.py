"""Figure 9: GPH versus Ring on Hamming distance search."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure9_rows


def _check(rows):
    # Ring never produces more candidates than GPH at the same threshold.
    for tau in {row.tau for row in rows}:
        by_algo = {row.algorithm: row for row in rows if row.tau == tau}
        assert by_algo["Ring"].avg_candidates <= by_algo["GPH"].avg_candidates + 1e-9
        assert abs(by_algo["Ring"].avg_results - by_algo["GPH"].avg_results) < 1e-9


def test_fig9_gist_like(benchmark):
    rows = run_once(
        benchmark, figure9_rows,
        dataset_name="gist", taus=(16, 32, 48), chain_length=5, scale=0.4, seed=0,
    )
    show("Figure 9 (GIST-like)", format_rows(rows))
    _check(rows)


def test_fig9_sift_like(benchmark):
    rows = run_once(
        benchmark, figure9_rows,
        dataset_name="sift", taus=(32, 64, 96), chain_length=6, scale=0.25, seed=1,
    )
    show("Figure 9 (SIFT-like)", format_rows(rows))
    _check(rows)
