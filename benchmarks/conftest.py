"""Shared helpers for the per-figure benchmark modules.

Every benchmark regenerates one figure of the paper at a reduced scale (the
``scale`` arguments below) so the whole suite completes in minutes on a
laptop.  Pass ``--benchmark-only`` to run them; each benchmark prints the
regenerated series so the numbers can be compared against EXPERIMENTS.md.
"""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(title: str, text: str) -> None:
    print(f"\n=== {title} ===\n{text}")
