"""Figure 10: AdaptSearch / PartAlloc / pkwise / Ring on set similarity search."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure10_rows


def _check(rows):
    for tau in {row.tau for row in rows}:
        by_algo = {row.algorithm: row for row in rows if row.tau == tau}
        # All four algorithms are exact: identical result counts.
        results = {round(row.avg_results, 6) for row in by_algo.values()}
        assert len(results) == 1
        # Ring candidates never exceed pkwise candidates.
        assert by_algo["Ring"].avg_candidates <= by_algo["pkwise"].avg_candidates + 1e-9


def test_fig10_enron_like(benchmark):
    rows = run_once(
        benchmark, figure10_rows,
        dataset_name="enron", taus=(0.7, 0.8, 0.9), scale=0.5, seed=0,
    )
    show("Figure 10 (Enron-like)", format_rows(rows))
    _check(rows)


def test_fig10_dblp_like(benchmark):
    rows = run_once(
        benchmark, figure10_rows,
        dataset_name="dblp", taus=(0.7, 0.8, 0.9), scale=0.5, seed=1,
    )
    show("Figure 10 (DBLP-like)", format_rows(rows))
    _check(rows)
