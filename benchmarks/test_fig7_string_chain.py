"""Figure 7: effect of chain length on string edit distance search (IMDB / PubMed stand-ins)."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure7_rows


def _check(rows):
    for tau in {row.tau for row in rows}:
        series = [row.avg_candidates for row in rows if row.tau == tau]
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))


def test_fig7_imdb_like(benchmark):
    rows = run_once(
        benchmark, figure7_rows,
        dataset_name="imdb", taus=(2, 4), chain_lengths=(1, 2, 3, 4),
        scale=0.5, seed=0,
    )
    show("Figure 7 (IMDB-like)", format_rows(rows))
    _check(rows)


def test_fig7_pubmed_like(benchmark):
    rows = run_once(
        benchmark, figure7_rows,
        dataset_name="pubmed", taus=(6,), chain_lengths=(1, 2, 3, 4),
        scale=0.4, seed=1,
    )
    show("Figure 7 (PubMed-like)", format_rows(rows))
    _check(rows)
