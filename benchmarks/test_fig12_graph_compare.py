"""Figure 12: Pars versus Ring on graph edit distance search."""

from conftest import run_once, show

from repro.experiments.harness import format_rows
from repro.experiments.figures import figure12_rows


def _check(rows):
    for tau in {row.tau for row in rows}:
        by_algo = {row.algorithm: row for row in rows if row.tau == tau}
        assert by_algo["Ring"].avg_candidates <= by_algo["Pars"].avg_candidates + 1e-9
        assert abs(by_algo["Ring"].avg_results - by_algo["Pars"].avg_results) < 1e-9


def test_fig12_aids_like(benchmark):
    rows = run_once(
        benchmark, figure12_rows,
        dataset_name="aids", taus=(1, 2, 3, 4), scale=0.5, seed=0,
    )
    show("Figure 12 (AIDS-like)", format_rows(rows))
    _check(rows)


def test_fig12_protein_like(benchmark):
    rows = run_once(
        benchmark, figure12_rows,
        dataset_name="protein", taus=(1, 2, 3), scale=0.5, seed=1,
    )
    show("Figure 12 (Protein-like)", format_rows(rows))
    _check(rows)
