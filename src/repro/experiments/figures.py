"""Per-figure experiment runners.

Each ``figure_*`` function reproduces one figure of the paper's evaluation on
a laptop-scale synthetic workload and returns the rows the paper plots.  The
``scale`` parameter multiplies the default dataset / query sizes so the same
code serves quick benchmark runs (``scale < 1``) and more faithful overnight
runs (``scale > 1``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.analysis import hamming_uniform_analysis
from repro.datasets.binary import clustered_binary_workload
from repro.datasets.molecules import molecule_workload
from repro.datasets.text import name_workload, title_workload
from repro.datasets.tokens import zipfian_set_workload
from repro.experiments.harness import (
    ChainLengthRow,
    ComparisonRow,
    chain_length_rows,
    comparison_rows,
)
from repro.graphs.dataset import GraphDataset
from repro.graphs.pars import ParsSearcher
from repro.graphs.ring import RingGraphSearcher
from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.gph import GPHSearcher
from repro.hamming.ring import RingHammingSearcher
from repro.sets.adaptsearch import AdaptSearchSearcher
from repro.sets.dataset import SetDataset
from repro.sets.partalloc import PartAllocSearcher
from repro.sets.pkwise import PkwiseSearcher
from repro.sets.ring import RingSetSearcher
from repro.sets.similarity import JaccardPredicate
from repro.strings.dataset import StringDataset
from repro.strings.pivotal import PivotalSearcher
from repro.strings.ring import RingStringSearcher


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


# ---------------------------------------------------------------------------
# Figure 2 -- analytical filtering-power model.
# ---------------------------------------------------------------------------

def figure2_rows(chain_lengths: Sequence[int] = range(1, 8)) -> list[dict]:
    """The four analytical curves of Figure 2 (d = 256, uniform data)."""
    settings = [
        {"tau": 96, "m": 16},
        {"tau": 64, "m": 16},
        {"tau": 48, "m": 8},
        {"tau": 32, "m": 8},
    ]
    rows = []
    for setting in settings:
        analysis = hamming_uniform_analysis(d=256, m=setting["m"], tau=setting["tau"])
        for point in analysis.sweep(list(chain_lengths)):
            rows.append(
                {
                    "tau": setting["tau"],
                    "m": setting["m"],
                    "chain_length": point.chain_length,
                    "fp_to_result_ratio": point.candidate_to_result_ratio,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 5 and 9 -- Hamming distance search.
# ---------------------------------------------------------------------------

def _hamming_setup(name: str, scale: float, seed: int):
    d = 256 if name == "gist" else 512
    workload = clustered_binary_workload(
        num_vectors=_scaled(4000, scale),
        d=d,
        num_queries=_scaled(10, scale),
        num_clusters=16,
        cluster_fraction=0.4,
        cluster_radius=0.08,
        query_radius=0.12,
        seed=seed,
    )
    dataset = BinaryVectorDataset(workload.vectors, num_parts=d // 32)
    return workload, dataset


def figure5_rows(
    dataset_name: str = "gist",
    taus: Sequence[int] = (48, 64),
    chain_lengths: Sequence[int] = (1, 2, 3, 4, 5, 6),
    scale: float = 1.0,
    seed: int = 0,
) -> list[ChainLengthRow]:
    """Effect of chain length on Hamming distance search (Figure 5)."""
    workload, dataset = _hamming_setup(dataset_name, scale, seed)
    rows: list[ChainLengthRow] = []
    for tau in taus:
        def make(length: int, tau=tau):
            searcher = RingHammingSearcher(dataset, chain_length=length)
            return lambda query: searcher.search(query, tau)

        rows.extend(
            chain_length_rows(dataset_name, tau, chain_lengths, make, list(workload.queries))
        )
    return rows


def figure9_rows(
    dataset_name: str = "gist",
    taus: Sequence[int] = (16, 32, 48, 64),
    chain_length: int = 5,
    scale: float = 1.0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """GPH versus Ring on Hamming distance search (Figure 9)."""
    workload, dataset = _hamming_setup(dataset_name, scale, seed)
    gph = GPHSearcher(dataset)
    ring = RingHammingSearcher(dataset, chain_length=chain_length)
    rows: list[ComparisonRow] = []
    for tau in taus:
        rows.extend(
            comparison_rows(
                dataset_name,
                tau,
                {
                    "GPH": lambda query, tau=tau: gph.search(query, tau),
                    "Ring": lambda query, tau=tau: ring.search(query, tau),
                },
                list(workload.queries),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 6 and 10 -- set similarity search.
# ---------------------------------------------------------------------------

def _set_setup(name: str, scale: float, seed: int):
    if name == "enron":
        workload = zipfian_set_workload(
            num_records=_scaled(1500, scale),
            num_queries=_scaled(15, scale),
            universe_size=10000,
            avg_size=80,
            size_spread=25,
            skew=1.15,
            noise_fraction=0.08,
            seed=seed,
        )
    else:  # dblp-like
        workload = zipfian_set_workload(
            num_records=_scaled(3000, scale),
            num_queries=_scaled(25, scale),
            universe_size=6000,
            avg_size=14,
            size_spread=5,
            skew=1.25,
            noise_fraction=0.12,
            seed=seed,
        )
    dataset = SetDataset(workload.records, num_classes=4)
    return workload, dataset


def figure6_rows(
    dataset_name: str = "dblp",
    taus: Sequence[float] = (0.7, 0.8),
    chain_lengths: Sequence[int] = (1, 2, 3),
    scale: float = 1.0,
    seed: int = 0,
) -> list[ChainLengthRow]:
    """Effect of chain length on set similarity search (Figure 6)."""
    workload, dataset = _set_setup(dataset_name, scale, seed)
    rows: list[ChainLengthRow] = []
    for tau in taus:
        predicate = JaccardPredicate(tau)

        def make(length: int, predicate=predicate):
            searcher = RingSetSearcher(dataset, predicate, chain_length=length)
            return searcher.search

        rows.extend(
            chain_length_rows(dataset_name, tau, chain_lengths, make, workload.queries)
        )
    return rows


def figure10_rows(
    dataset_name: str = "dblp",
    taus: Sequence[float] = (0.7, 0.75, 0.8, 0.85, 0.9),
    chain_length: int = 2,
    scale: float = 1.0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """AdaptSearch / PartAlloc / pkwise / Ring on set similarity search (Figure 10)."""
    workload, dataset = _set_setup(dataset_name, scale, seed)
    rows: list[ComparisonRow] = []
    for tau in taus:
        predicate = JaccardPredicate(tau)
        searchers = {
            "AdaptSearch": AdaptSearchSearcher(dataset, predicate).search,
            "PartAlloc": PartAllocSearcher(dataset, predicate).search,
            "pkwise": PkwiseSearcher(dataset, predicate).search,
            "Ring": RingSetSearcher(dataset, predicate, chain_length=chain_length).search,
        }
        rows.extend(comparison_rows(dataset_name, tau, searchers, workload.queries))
    return rows


# ---------------------------------------------------------------------------
# Figures 7 and 11 -- string edit distance search.
# ---------------------------------------------------------------------------

def _string_setup(name: str, scale: float, seed: int):
    if name == "imdb":
        workload = name_workload(
            num_records=_scaled(2000, scale), num_queries=_scaled(20, scale),
            max_edits=4, seed=seed,
        )
        kappa = 2
    else:  # pubmed-like
        workload = title_workload(
            num_records=_scaled(600, scale), num_queries=_scaled(10, scale),
            max_edits=10, seed=seed,
        )
        kappa = 4
    dataset = StringDataset(workload.records, kappa=kappa)
    return workload, dataset


def figure7_rows(
    dataset_name: str = "imdb",
    taus: Sequence[int] = (2, 4),
    chain_lengths: Sequence[int] = (1, 2, 3, 4),
    scale: float = 1.0,
    seed: int = 0,
) -> list[ChainLengthRow]:
    """Effect of chain length on string edit distance search (Figure 7)."""
    workload, dataset = _string_setup(dataset_name, scale, seed)
    rows: list[ChainLengthRow] = []
    for tau in taus:
        def make(length: int, tau=tau):
            return RingStringSearcher(dataset, tau, chain_length=length).search

        rows.extend(
            chain_length_rows(dataset_name, tau, chain_lengths, make, workload.queries)
        )
    return rows


def figure11_rows(
    dataset_name: str = "imdb",
    taus: Sequence[int] = (1, 2, 3, 4),
    scale: float = 1.0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Pivotal versus Ring on string edit distance search (Figure 11)."""
    workload, dataset = _string_setup(dataset_name, scale, seed)
    rows: list[ComparisonRow] = []
    for tau in taus:
        searchers = {
            "Pivotal": PivotalSearcher(dataset, tau).search,
            "Ring": RingStringSearcher(dataset, tau).search,
        }
        rows.extend(comparison_rows(dataset_name, tau, searchers, workload.queries))
    return rows


# ---------------------------------------------------------------------------
# Figures 8 and 12 -- graph edit distance search.
# ---------------------------------------------------------------------------

def _graph_setup(name: str, scale: float, seed: int):
    if name == "aids":
        workload = molecule_workload(
            num_graphs=_scaled(120, scale), num_queries=_scaled(6, scale),
            min_vertices=8, max_vertices=11, extra_edges=2,
            num_vertex_labels=10, num_edge_labels=3, max_edits=4, seed=seed,
        )
    else:  # protein-like
        workload = molecule_workload(
            num_graphs=_scaled(80, scale), num_queries=_scaled(5, scale),
            min_vertices=8, max_vertices=10, extra_edges=4,
            num_vertex_labels=3, num_edge_labels=5, max_edits=4, seed=seed,
        )
    dataset = GraphDataset(workload.graphs)
    return workload, dataset


def figure8_rows(
    dataset_name: str = "aids",
    taus: Sequence[int] = (4, 5),
    chain_lengths: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 1.0,
    seed: int = 0,
) -> list[ChainLengthRow]:
    """Effect of chain length on graph edit distance search (Figure 8)."""
    workload, dataset = _graph_setup(dataset_name, scale, seed)
    rows: list[ChainLengthRow] = []
    for tau in taus:
        def make(length: int, tau=tau):
            return RingGraphSearcher(dataset, tau, chain_length=length).search

        rows.extend(
            chain_length_rows(dataset_name, tau, chain_lengths, make, workload.queries)
        )
    return rows


def figure12_rows(
    dataset_name: str = "aids",
    taus: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 1.0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Pars versus Ring on graph edit distance search (Figure 12)."""
    workload, dataset = _graph_setup(dataset_name, scale, seed)
    rows: list[ComparisonRow] = []
    for tau in taus:
        searchers = {
            "Pars": ParsSearcher(dataset, tau).search,
            "Ring": RingGraphSearcher(dataset, tau, chain_length=max(1, tau - 1)).search,
        }
        rows.extend(comparison_rows(dataset_name, tau, searchers, workload.queries))
    return rows
