"""Generic experiment drivers shared by all figures."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Sequence

from repro.common.stats import QueryStats, SearchResult


def run_workload(
    search: Callable[[object], SearchResult], queries: Iterable[object]
) -> QueryStats:
    """Run one searcher over a query workload and aggregate the statistics."""
    stats = QueryStats()
    for query in queries:
        stats.add(search(query))
    return stats


@dataclass
class ChainLengthRow:
    """One point of an effect-of-chain-length experiment (Figures 5-8)."""

    dataset: str
    tau: float
    chain_length: int
    avg_candidates: float
    avg_results: float
    avg_candidate_time_ms: float
    avg_total_time_ms: float


@dataclass
class ComparisonRow:
    """One point of an algorithm-comparison experiment (Figures 9-12)."""

    dataset: str
    tau: float
    algorithm: str
    avg_candidates: float
    avg_results: float
    avg_candidate_time_ms: float
    avg_total_time_ms: float


def chain_length_rows(
    dataset_name: str,
    tau: float,
    chain_lengths: Sequence[int],
    make_searcher: Callable[[int], Callable[[object], SearchResult]],
    queries: Sequence[object],
) -> list[ChainLengthRow]:
    """Sweep the chain length and collect candidate / time series."""
    rows = []
    for length in chain_lengths:
        search = make_searcher(length)
        stats = run_workload(search, queries)
        rows.append(
            ChainLengthRow(
                dataset=dataset_name,
                tau=tau,
                chain_length=length,
                avg_candidates=stats.avg_candidates,
                avg_results=stats.avg_results,
                avg_candidate_time_ms=stats.avg_candidate_time * 1000.0,
                avg_total_time_ms=stats.avg_total_time * 1000.0,
            )
        )
    return rows


def comparison_rows(
    dataset_name: str,
    tau: float,
    searchers: dict[str, Callable[[object], SearchResult]],
    queries: Sequence[object],
) -> list[ComparisonRow]:
    """Run several algorithms on the same workload and collect their series."""
    rows = []
    for name, search in searchers.items():
        stats = run_workload(search, queries)
        rows.append(
            ComparisonRow(
                dataset=dataset_name,
                tau=tau,
                algorithm=name,
                avg_candidates=stats.avg_candidates,
                avg_results=stats.avg_results,
                avg_candidate_time_ms=stats.avg_candidate_time * 1000.0,
                avg_total_time_ms=stats.avg_total_time * 1000.0,
            )
        )
    return rows


def format_rows(rows: Sequence[object]) -> str:
    """Render experiment rows as an aligned text table (one row per line)."""
    if not rows:
        return "(no rows)"
    dicts = [asdict(row) for row in rows]
    headers = list(dicts[0].keys())
    table = [headers] + [
        [
            f"{value:.3f}" if isinstance(value, float) else str(value)
            for value in row.values()
        ]
        for row in dicts
    ]
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in table
    ]
    return "\n".join(lines)
