"""Generic experiment drivers shared by all figures.

Two families of drivers coexist here:

* the original callable-based drivers (:func:`run_workload`,
  :func:`chain_length_rows`, :func:`comparison_rows`), which take raw
  ``query -> SearchResult`` functions and are used by the per-figure
  benchmark modules; and
* engine-based drivers (:func:`run_engine_workload`,
  :func:`engine_chain_length_rows`, :func:`engine_comparison_rows`), which
  route the same experiments through :class:`repro.engine.SearchEngine` so
  sweeps benefit from the engine's searcher reuse, batching and statistics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Sequence

from repro.common.stats import QueryStats, SearchResult


def run_workload(
    search: Callable[[object], SearchResult], queries: Iterable[object]
) -> QueryStats:
    """Run one searcher over a query workload and aggregate the statistics."""
    stats = QueryStats()
    for query in queries:
        stats.add(search(query))
    return stats


def run_engine_workload(
    engine,
    backend: str,
    payloads: Sequence[object],
    tau: float | int,
    chain_length: int | None = None,
    algorithm: str = "ring",
    parallel: bool = False,
) -> QueryStats:
    """Run one engine configuration over a workload and aggregate statistics."""
    from repro.engine.api import Query  # local import: engine is optional here

    queries = [
        Query(
            backend=backend,
            payload=payload,
            tau=tau,
            chain_length=chain_length,
            algorithm=algorithm,
        )
        for payload in payloads
    ]
    responses = engine.search_batch(queries, parallel=parallel)
    stats = QueryStats()
    for response in responses:
        stats.add(response)
    return stats


@dataclass
class ChainLengthRow:
    """One point of an effect-of-chain-length experiment (Figures 5-8)."""

    dataset: str
    tau: float
    chain_length: int
    avg_candidates: float
    avg_results: float
    avg_candidate_time_ms: float
    avg_total_time_ms: float


@dataclass
class ComparisonRow:
    """One point of an algorithm-comparison experiment (Figures 9-12)."""

    dataset: str
    tau: float
    algorithm: str
    avg_candidates: float
    avg_results: float
    avg_candidate_time_ms: float
    avg_total_time_ms: float


def chain_length_rows(
    dataset_name: str,
    tau: float,
    chain_lengths: Sequence[int],
    make_searcher: Callable[[int], Callable[[object], SearchResult]],
    queries: Sequence[object],
) -> list[ChainLengthRow]:
    """Sweep the chain length and collect candidate / time series."""
    rows = []
    for length in chain_lengths:
        search = make_searcher(length)
        stats = run_workload(search, queries)
        rows.append(
            ChainLengthRow(
                dataset=dataset_name,
                tau=tau,
                chain_length=length,
                avg_candidates=stats.avg_candidates,
                avg_results=stats.avg_results,
                avg_candidate_time_ms=stats.avg_candidate_time * 1000.0,
                avg_total_time_ms=stats.avg_total_time * 1000.0,
            )
        )
    return rows


def comparison_rows(
    dataset_name: str,
    tau: float,
    searchers: dict[str, Callable[[object], SearchResult]],
    queries: Sequence[object],
) -> list[ComparisonRow]:
    """Run several algorithms on the same workload and collect their series."""
    rows = []
    for name, search in searchers.items():
        stats = run_workload(search, queries)
        rows.append(
            ComparisonRow(
                dataset=dataset_name,
                tau=tau,
                algorithm=name,
                avg_candidates=stats.avg_candidates,
                avg_results=stats.avg_results,
                avg_candidate_time_ms=stats.avg_candidate_time * 1000.0,
                avg_total_time_ms=stats.avg_total_time * 1000.0,
            )
        )
    return rows


def engine_chain_length_rows(
    engine,
    backend: str,
    dataset_name: str,
    tau: float | int,
    chain_lengths: Sequence[int],
    payloads: Sequence[object],
    algorithm: str = "ring",
    parallel: bool = False,
) -> list[ChainLengthRow]:
    """Engine-served variant of :func:`chain_length_rows` (Figures 5-8)."""
    rows = []
    for length in chain_lengths:
        stats = run_engine_workload(
            engine,
            backend,
            payloads,
            tau,
            chain_length=length,
            algorithm=algorithm,
            parallel=parallel,
        )
        rows.append(
            ChainLengthRow(
                dataset=dataset_name,
                tau=tau,
                chain_length=length,
                avg_candidates=stats.avg_candidates,
                avg_results=stats.avg_results,
                avg_candidate_time_ms=stats.avg_candidate_time * 1000.0,
                avg_total_time_ms=stats.avg_total_time * 1000.0,
            )
        )
    return rows


def engine_comparison_rows(
    engine,
    backend: str,
    dataset_name: str,
    tau: float | int,
    algorithms: Sequence[str] | dict[str, dict],
    payloads: Sequence[object],
    parallel: bool = False,
) -> list[ComparisonRow]:
    """Engine-served variant of :func:`comparison_rows` (Figures 9-12).

    ``algorithms`` is either a list of engine algorithm names or a mapping
    from a display name to keyword overrides for
    :func:`run_engine_workload` (e.g. ``{"Ring l=4": {"algorithm": "ring",
    "chain_length": 4}}``).
    """
    if not isinstance(algorithms, dict):
        algorithms = {name: {"algorithm": name} for name in algorithms}
    rows = []
    for name, overrides in algorithms.items():
        stats = run_engine_workload(
            engine, backend, payloads, tau, parallel=parallel, **overrides
        )
        rows.append(
            ComparisonRow(
                dataset=dataset_name,
                tau=tau,
                algorithm=name,
                avg_candidates=stats.avg_candidates,
                avg_results=stats.avg_results,
                avg_candidate_time_ms=stats.avg_candidate_time * 1000.0,
                avg_total_time_ms=stats.avg_total_time * 1000.0,
            )
        )
    return rows


def format_rows(rows: Sequence[object]) -> str:
    """Render experiment rows as an aligned text table (one row per line)."""
    if not rows:
        return "(no rows)"
    dicts = [asdict(row) for row in rows]
    headers = list(dicts[0].keys())
    table = [headers] + [
        [
            f"{value:.3f}" if isinstance(value, float) else str(value)
            for value in row.values()
        ]
        for row in dicts
    ]
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in table
    ]
    return "\n".join(lines)
