"""Experiment harness regenerating the paper's evaluation figures.

Every figure of the paper's Section 8 has a function in
:mod:`repro.experiments.figures` that builds the corresponding synthetic
workload, runs the searchers, and returns the same series the paper plots
(average candidates per query, average search time, per chain length or per
threshold).  The benchmark modules under ``benchmarks/`` call these functions
and print the rows; EXPERIMENTS.md records the measured values against the
paper's qualitative claims.
"""

from repro.experiments.harness import (
    ChainLengthRow,
    ComparisonRow,
    format_rows,
    run_workload,
)

__all__ = ["ChainLengthRow", "ComparisonRow", "format_rows", "run_workload"]
