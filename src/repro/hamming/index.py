"""Per-partition inverted index for Hamming distance search.

For each partition the index groups data-object ids by their part code.  At
query time the distinct codes of a partition are compared against the query's
code with a vectorised XOR + popcount, which yields, for every distinct code,
its distance to the query part.  The first step of candidate generation then
selects the codes within the partition's threshold and emits their object
ids -- exactly the viable single boxes of Section 7 -- and the same per-code
distances drive the GPH cost model.

The original GPH implementation enumerates all codes within distance ``t_i``
of the query code (bit-flip enumeration), which is the right trade-off in C++
with small thresholds.  Scanning the distinct codes vectorised in numpy
produces the identical set of viable boxes with far better constants in
Python; the substitution is documented in DESIGN.md and does not change any
candidate count.

Postings are stored in a CSR-like layout per partition -- one concatenated
``members`` array plus an ``offsets`` array into it -- so that probes can be
answered with ``np.concatenate`` / ``np.repeat`` instead of Python loops and
so that the whole index serialises to a handful of flat arrays (see
:meth:`PartitionIndex.state` and :meth:`PartitionIndex.from_state`, used by
the engine's index persistence).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.hamming.bitvec import code_hamming_distances
from repro.hamming.dataset import BinaryVectorDataset

_EMPTY = np.empty(0, dtype=np.int64)


class PartitionIndex:
    """Inverted index from (partition, part code) to data-object ids."""

    def __init__(self, dataset: BinaryVectorDataset):
        self._dataset = dataset
        self._distinct_codes: list[np.ndarray] = []
        self._offsets: list[np.ndarray] = []
        self._members: list[np.ndarray] = []
        codes = dataset.part_codes
        n = codes.shape[0]
        for part in range(dataset.m):
            column = codes[:, part]
            # A stable sort keeps object ids ascending within each code group,
            # matching the historical nonzero()-based postings order.
            order = np.argsort(column, kind="stable").astype(np.int64)
            distinct, starts = np.unique(column[order], return_index=True)
            self._distinct_codes.append(distinct.astype(np.int64))
            offsets = np.empty(starts.size + 1, dtype=np.int64)
            offsets[:-1] = starts
            offsets[-1] = n
            self._offsets.append(offsets)
            self._members.append(order)

    @classmethod
    def from_state(
        cls, dataset: BinaryVectorDataset, state: Mapping[str, np.ndarray]
    ) -> "PartitionIndex":
        """Restore an index from :meth:`state` arrays without rebuilding it."""
        index = cls.__new__(cls)
        index._dataset = dataset
        index._distinct_codes = []
        index._offsets = []
        index._members = []
        for part in range(dataset.m):
            index._distinct_codes.append(
                np.asarray(state[f"codes_{part}"], dtype=np.int64)
            )
            index._offsets.append(np.asarray(state[f"offsets_{part}"], dtype=np.int64))
            index._members.append(np.asarray(state[f"members_{part}"], dtype=np.int64))
        return index

    def state(self) -> dict[str, np.ndarray]:
        """Flat arrays fully describing the index (for ``np.savez`` containers)."""
        arrays: dict[str, np.ndarray] = {}
        for part in range(self.m):
            arrays[f"codes_{part}"] = self._distinct_codes[part]
            arrays[f"offsets_{part}"] = self._offsets[part]
            arrays[f"members_{part}"] = self._members[part]
        return arrays

    @property
    def dataset(self) -> BinaryVectorDataset:
        return self._dataset

    @property
    def m(self) -> int:
        return self._dataset.m

    def distinct_codes(self, part: int) -> np.ndarray:
        """The distinct part codes present in the data for one partition."""
        return self._distinct_codes[part]

    def postings(self, part: int, code_position: int) -> np.ndarray:
        """Object ids whose part code is the ``code_position``-th distinct code."""
        offsets = self._offsets[part]
        return self._members[part][offsets[code_position] : offsets[code_position + 1]]

    def code_distances(self, part: int, query_code: int) -> np.ndarray:
        """Distances from the query's part code to every distinct code of the partition."""
        return code_hamming_distances(query_code, self._distinct_codes[part])

    def distance_histogram(self, part: int, query_code: int) -> np.ndarray:
        """Number of data objects at each part distance ``0 .. width`` from the query.

        This is the exact per-partition candidate-count profile the GPH cost
        model allocates thresholds against.
        """
        width = self._dataset.partitioning.widths[part]
        distances = self.code_distances(part, query_code)
        counts = np.diff(self._offsets[part])
        histogram = np.zeros(width + 1, dtype=np.int64)
        np.add.at(histogram, distances, counts)
        return histogram

    def probe_arrays(
        self, part: int, query_code: int, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ids and part distances of objects within ``threshold`` on this part.

        Vectorised form of :meth:`probe`: the postings of every viable code
        are concatenated and their per-code distances repeated, so the result
        is a pair of equally long int64 arrays.  A negative threshold (the GPH
        cost model may disable a partition by assigning ``-1``) selects
        nothing.
        """
        if threshold < 0:
            return _EMPTY, _EMPTY
        distances = self.code_distances(part, query_code)
        selected = np.nonzero(distances <= threshold)[0]
        if selected.size == 0:
            return _EMPTY, _EMPTY
        offsets = self._offsets[part]
        members = self._members[part]
        ids = np.concatenate(
            [members[offsets[pos] : offsets[pos + 1]] for pos in selected]
        )
        repeated = np.repeat(distances[selected], offsets[selected + 1] - offsets[selected])
        return ids, repeated.astype(np.int64)

    def probe(
        self, part: int, query_code: int, threshold: int
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(object_id, part_distance)`` pairs (iterator shim over
        :meth:`probe_arrays` kept for existing callers)."""
        ids, distances = self.probe_arrays(part, query_code, threshold)
        yield from zip(ids.tolist(), distances.tolist())
