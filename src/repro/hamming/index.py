"""Per-partition inverted index for Hamming distance search.

For each partition the index groups data-object ids by their part code.  At
query time the distinct codes of a partition are compared against the query's
code with a vectorised XOR + popcount, which yields, for every distinct code,
its distance to the query part.  The first step of candidate generation then
selects the codes within the partition's threshold and emits their object
ids -- exactly the viable single boxes of Section 7 -- and the same per-code
distances drive the GPH cost model.

The original GPH implementation enumerates all codes within distance ``t_i``
of the query code (bit-flip enumeration), which is the right trade-off in C++
with small thresholds.  Scanning the distinct codes vectorised in numpy
produces the identical set of viable boxes with far better constants in
Python; the substitution is documented in DESIGN.md and does not change any
candidate count.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.bitvec import code_hamming_distances
from repro.hamming.dataset import BinaryVectorDataset


class PartitionIndex:
    """Inverted index from (partition, part code) to data-object ids."""

    def __init__(self, dataset: BinaryVectorDataset):
        self._dataset = dataset
        self._distinct_codes: list[np.ndarray] = []
        self._postings: list[list[np.ndarray]] = []
        codes = dataset.part_codes
        for part in range(dataset.m):
            column = codes[:, part]
            distinct, inverse = np.unique(column, return_inverse=True)
            postings: list[np.ndarray] = [
                np.nonzero(inverse == idx)[0].astype(np.int64)
                for idx in range(len(distinct))
            ]
            self._distinct_codes.append(distinct.astype(np.int64))
            self._postings.append(postings)

    @property
    def dataset(self) -> BinaryVectorDataset:
        return self._dataset

    @property
    def m(self) -> int:
        return self._dataset.m

    def distinct_codes(self, part: int) -> np.ndarray:
        """The distinct part codes present in the data for one partition."""
        return self._distinct_codes[part]

    def postings(self, part: int, code_position: int) -> np.ndarray:
        """Object ids whose part code is the ``code_position``-th distinct code."""
        return self._postings[part][code_position]

    def code_distances(self, part: int, query_code: int) -> np.ndarray:
        """Distances from the query's part code to every distinct code of the partition."""
        return code_hamming_distances(query_code, self._distinct_codes[part])

    def distance_histogram(self, part: int, query_code: int) -> np.ndarray:
        """Number of data objects at each part distance ``0 .. width`` from the query.

        This is the exact per-partition candidate-count profile the GPH cost
        model allocates thresholds against.
        """
        width = self._dataset.partitioning.widths[part]
        distances = self.code_distances(part, query_code)
        histogram = np.zeros(width + 1, dtype=np.int64)
        for position, distance in enumerate(distances):
            histogram[distance] += len(self._postings[part][position])
        return histogram

    def probe(self, part: int, query_code: int, threshold: int):
        """Yield ``(object_id, part_distance)`` for objects within ``threshold`` on this part.

        A negative threshold yields nothing (the GPH cost model may disable a
        partition entirely by assigning it ``-1``).
        """
        if threshold < 0:
            return
        distances = self.code_distances(part, query_code)
        for position in np.nonzero(distances <= threshold)[0]:
            distance = int(distances[position])
            for obj_id in self._postings[part][position]:
                yield int(obj_id), distance
