"""Dataset container for Hamming distance search."""

from __future__ import annotations

import numpy as np

from repro.hamming.bitvec import as_bit_matrix, pack_words, packed_hamming_distances
from repro.hamming.partition import Partitioning, default_num_parts


class BinaryVectorDataset:
    """A collection of ``d``-dimensional binary vectors with partition codes.

    The dataset precomputes, once, everything the searchers need per data
    object: the packed uint64 words used by verification and the per-part
    integer codes used by the partition index and by the chain check.

    Args:
        vectors: ``(n, d)`` array of 0/1 values.
        num_parts: the number of partitions ``m``; defaults to the paper's
            ``floor(d / 16)``.
    """

    def __init__(self, vectors: np.ndarray, num_parts: int | None = None):
        self._vectors = as_bit_matrix(vectors)
        if self._vectors.ndim != 2 or self._vectors.shape[0] == 0:
            raise ValueError("the dataset needs at least one vector")
        self._d = self._vectors.shape[1]
        m = default_num_parts(self._d) if num_parts is None else num_parts
        self._partitioning = Partitioning(self._d, m)
        self._part_codes = self._partitioning.part_codes(self._vectors)
        self._packed = pack_words(self._vectors)

    @property
    def vectors(self) -> np.ndarray:
        return self._vectors

    @property
    def d(self) -> int:
        return self._d

    @property
    def m(self) -> int:
        return self._partitioning.m

    @property
    def partitioning(self) -> Partitioning:
        return self._partitioning

    @property
    def part_codes(self) -> np.ndarray:
        """``(n, m)`` integer codes of every part of every vector."""
        return self._part_codes

    @property
    def packed(self) -> np.ndarray:
        """``(n, n_words)`` packed uint64 representation."""
        return self._packed

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def query_codes(self, query: np.ndarray) -> np.ndarray:
        """Per-part integer codes of a query vector."""
        matrix = np.asarray(query).reshape(1, -1)
        if matrix.shape[1] != self._d:
            raise ValueError(f"expected a {self._d}-dimensional query, got {matrix.shape[1]}")
        return self._partitioning.part_codes(matrix)[0]

    def distances_to(self, query: np.ndarray) -> np.ndarray:
        """Full Hamming distances from the query to every data vector."""
        query_words = pack_words(np.asarray(query).reshape(1, -1))[0]
        return packed_hamming_distances(query_words, self._packed)

    def distances_to_subset(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Full Hamming distances from the query to the given data ids only."""
        ids = np.asarray(ids, dtype=np.int64)
        query_words = pack_words(np.asarray(query).reshape(1, -1))[0]
        return packed_hamming_distances(query_words, self._packed[ids])
