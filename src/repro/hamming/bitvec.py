"""Bit-vector helpers for Hamming distance search.

Binary vectors are stored two ways:

* as a dense ``(n, d)`` uint8 array of 0/1 values -- convenient for
  partitioning and for generating datasets, and
* packed into ``(n, ceil(d / 64))`` uint64 words -- used for fast full-vector
  Hamming distances via XOR + popcount (``numpy.bitwise_count``), the
  equivalent of the CPU popcount the paper relies on.

Per-partition distances inside the chain check operate on small Python
integers (one code per part) and use ``int.bit_count``.
"""

from __future__ import annotations

import numpy as np


def as_bit_matrix(vectors: np.ndarray) -> np.ndarray:
    """Validate and normalise a 0/1 matrix to uint8."""
    matrix = np.asarray(vectors)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D array of binary vectors, got shape {matrix.shape}")
    if matrix.size and not np.isin(matrix, (0, 1)).all():
        raise ValueError("binary vectors may only contain 0 and 1")
    return matrix.astype(np.uint8, copy=False)


def pack_words(vectors: np.ndarray) -> np.ndarray:
    """Pack a ``(n, d)`` 0/1 matrix into ``(n, ceil(d / 64))`` uint64 words."""
    matrix = as_bit_matrix(vectors)
    n, d = matrix.shape
    n_words = (d + 63) // 64
    padded = np.zeros((n, n_words * 64), dtype=np.uint8)
    padded[:, :d] = matrix
    words = np.zeros((n, n_words), dtype=np.uint64)
    for w in range(n_words):
        block = padded[:, w * 64 : (w + 1) * 64].astype(np.uint64)
        weights = (np.uint64(1) << np.arange(64, dtype=np.uint64))
        words[:, w] = block @ weights
    return words


def hamming_distance(x: np.ndarray, y: np.ndarray) -> int:
    """Hamming distance between two unpacked binary vectors."""
    if x.shape != y.shape:
        raise ValueError("vectors must have the same dimensionality")
    return int(np.count_nonzero(np.asarray(x) != np.asarray(y)))


def packed_hamming_distances(query_words: np.ndarray, data_words: np.ndarray) -> np.ndarray:
    """Hamming distances from one packed query to many packed data vectors.

    Args:
        query_words: ``(n_words,)`` uint64 packed query.
        data_words: ``(n, n_words)`` uint64 packed data vectors.

    Returns:
        ``(n,)`` int64 array of distances.
    """
    xor = np.bitwise_xor(data_words, query_words[np.newaxis, :])
    return np.bitwise_count(xor).sum(axis=1).astype(np.int64)


def codes_from_bits(bits: np.ndarray) -> np.ndarray:
    """Interpret each row of a ``(n, w)`` 0/1 matrix as an integer code (w <= 63)."""
    matrix = as_bit_matrix(bits)
    width = matrix.shape[1]
    if width > 63:
        raise ValueError("a partition code must fit in 63 bits")
    weights = (1 << np.arange(width, dtype=np.int64))
    return (matrix.astype(np.int64) @ weights).astype(np.int64)


def code_hamming_distances(query_code: int, codes: np.ndarray) -> np.ndarray:
    """Vectorised popcount of ``codes XOR query_code``."""
    xor = np.bitwise_xor(codes.astype(np.uint64), np.uint64(query_code))
    return np.bitwise_count(xor).astype(np.int64)


def popcount(value: int) -> int:
    """Population count of a non-negative Python integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return value.bit_count()
