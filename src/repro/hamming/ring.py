"""Pigeonring-accelerated Hamming distance search (Section 6.1).

The Ring searcher keeps GPH's first step (per-partition index probes with the
cost-model thresholds) unchanged, and adds the second step of Section 7: from
every viable part the chains of lengths ``2 .. l`` starting at that part are
checked incrementally under Theorem 7 (integer reduction), i.e. each prefix
must satisfy ``||c_i^{l'}||_1 <= l' - 1 + sum t_j``.  Only objects passing the
check are verified.  With ``chain_length=1`` the searcher is exactly GPH.
"""

from __future__ import annotations

import numpy as np

from repro.common.obs import span
from repro.common.stats import SearchResult, Timer
from repro.hamming.cost_model import allocate_thresholds, even_thresholds
from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.index import PartitionIndex


class RingHammingSearcher:
    """Pigeonring searcher for Hamming distance.

    Args:
        dataset: the indexed collection.
        chain_length: the chain length ``l``; the paper finds ``l = 5`` or
            ``6`` best overall for Hamming search.
        use_cost_model: same switch as :class:`repro.hamming.gph.GPHSearcher`;
            the paper uses the same allocation for Ring and GPH.
    """

    def __init__(
        self,
        dataset: BinaryVectorDataset,
        chain_length: int = 5,
        use_cost_model: bool = True,
        index: PartitionIndex | None = None,
    ):
        if chain_length < 1:
            raise ValueError("chain_length must be at least 1")
        self._dataset = dataset
        self._index = PartitionIndex(dataset) if index is None else index
        if self._index.dataset is not dataset:
            raise ValueError("the prebuilt index belongs to a different dataset")
        self._chain_length = min(chain_length, dataset.m)
        self._use_cost_model = use_cost_model

    @property
    def dataset(self) -> BinaryVectorDataset:
        return self._dataset

    @property
    def chain_length(self) -> int:
        return self._chain_length

    def thresholds(self, query: np.ndarray, tau: int) -> list[int]:
        query_codes = self._dataset.query_codes(query)
        if self._use_cost_model:
            return allocate_thresholds(self._index, query_codes, tau)
        return even_thresholds(tau, self._dataset.m)

    def candidates(self, query: np.ndarray, tau: int) -> list[int]:
        """Candidates surviving the prefix-viable chain check of length ``l``."""
        m = self._dataset.m
        length = self._chain_length
        query_codes = self._dataset.query_codes(query)
        if self._use_cost_model:
            thresholds = allocate_thresholds(self._index, query_codes, tau)
        else:
            thresholds = even_thresholds(tau, m)
        part_codes = self._dataset.part_codes
        query_code_ints = [int(code) for code in query_codes]

        # Cumulative chain thresholds with the Theorem-7 slack, precomputed per
        # starting part so the inner loop is pure integer comparisons.
        chain_bounds = [
            [
                sum(thresholds[(start + offset) % m] for offset in range(plen)) + plen - 1
                for plen in range(1, length + 1)
            ]
            for start in range(m)
        ]

        emitted: set[int] = set()
        ordered: list[int] = []
        # skip_state[obj_id] holds starts ruled out by the Corollary-2 skip.
        skip_state: dict[int, set[int]] = {}
        box_cache: dict[int, dict[int, int]] = {}

        for part in range(m):
            threshold = thresholds[part]
            if threshold < 0:
                continue
            probe_ids, probe_distances = self._index.probe_arrays(
                part, query_code_ints[part], threshold
            )
            for obj_id, part_distance in zip(
                probe_ids.tolist(), probe_distances.tolist()
            ):
                if obj_id in emitted:
                    continue
                skips = skip_state.get(obj_id)
                if skips is not None and part in skips:
                    continue
                cache = box_cache.setdefault(obj_id, {})
                cache[part] = part_distance
                bounds = chain_bounds[part]
                running = 0
                passed = True
                for offset in range(length):
                    box_index = (part + offset) % m
                    value = cache.get(box_index)
                    if value is None:
                        value = int(
                            (int(part_codes[obj_id, box_index]) ^ query_code_ints[box_index]).bit_count()
                        )
                        cache[box_index] = value
                    running += value
                    if running > bounds[offset]:
                        if skips is None:
                            skips = set()
                            skip_state[obj_id] = skips
                        for skipped in range(offset + 1):
                            skips.add((part + skipped) % m)
                        passed = False
                        break
                if passed:
                    emitted.add(obj_id)
                    ordered.append(obj_id)
        return ordered

    def search(self, query: np.ndarray, tau: int) -> SearchResult:
        timer = Timer()
        with span("candidates"):
            candidates = self.candidates(query, tau)
        candidate_time = timer.restart()
        with span("verify"):
            if candidates:
                ids = np.asarray(candidates, dtype=np.int64)
                distances = self._dataset.distances_to_subset(query, ids)
                results = ids[distances <= tau].tolist()
            else:
                results = []
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
