"""The GPH baseline for Hamming distance search (pigeonhole principle).

GPH [72] partitions the dimensions into ``m`` disjoint parts, allocates
per-part thresholds with a cost model such that ``sum t_i = tau - m + 1``
(variable threshold allocation + integer reduction, Theorem 5), probes the
per-partition index for parts within their thresholds, unions the matching
object ids, and verifies each candidate with a full Hamming distance
computation.
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import SearchResult, Timer
from repro.hamming.cost_model import allocate_thresholds, even_thresholds
from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.index import PartitionIndex


class GPHSearcher:
    """Pigeonhole-principle baseline searcher for Hamming distance.

    Args:
        dataset: the indexed collection.
        use_cost_model: allocate thresholds with the query-specific greedy
            cost model (the GPH behaviour).  When False an even allocation is
            used, which isolates the effect of the allocation itself in the
            ablation benchmarks.
    """

    def __init__(
        self,
        dataset: BinaryVectorDataset,
        use_cost_model: bool = True,
        index: PartitionIndex | None = None,
    ):
        self._dataset = dataset
        self._index = PartitionIndex(dataset) if index is None else index
        if self._index.dataset is not dataset:
            raise ValueError("the prebuilt index belongs to a different dataset")
        self._use_cost_model = use_cost_model

    @property
    def dataset(self) -> BinaryVectorDataset:
        return self._dataset

    @property
    def index(self) -> PartitionIndex:
        return self._index

    def thresholds(self, query: np.ndarray, tau: int) -> list[int]:
        """The per-partition thresholds used for this query."""
        query_codes = self._dataset.query_codes(query)
        if self._use_cost_model:
            return allocate_thresholds(self._index, query_codes, tau)
        return even_thresholds(tau, self._dataset.m)

    def candidates(self, query: np.ndarray, tau: int) -> list[int]:
        """First-step candidates: ids with at least one part within its threshold."""
        query_codes = self._dataset.query_codes(query)
        if self._use_cost_model:
            thresholds = allocate_thresholds(self._index, query_codes, tau)
        else:
            thresholds = even_thresholds(tau, self._dataset.m)
        seen: set[int] = set()
        ordered: list[int] = []
        for part in range(self._dataset.m):
            ids, _distances = self._index.probe_arrays(
                part, int(query_codes[part]), thresholds[part]
            )
            for obj_id in ids.tolist():
                if obj_id not in seen:
                    seen.add(obj_id)
                    ordered.append(obj_id)
        return ordered

    def search(self, query: np.ndarray, tau: int) -> SearchResult:
        timer = Timer()
        candidates = self.candidates(query, tau)
        candidate_time = timer.restart()
        if candidates:
            ids = np.asarray(candidates, dtype=np.int64)
            distances = self._dataset.distances_to_subset(query, ids)
            results = ids[distances <= tau].tolist()
        else:
            results = []
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
