"""Brute-force Hamming distance search (ground truth for tests)."""

from __future__ import annotations

import numpy as np

from repro.common.stats import SearchResult, Timer
from repro.hamming.dataset import BinaryVectorDataset


class LinearHammingSearcher:
    """Compute the distance to every data vector and keep those within ``tau``.

    This is the naive algorithm the paper contrasts filter-and-refine methods
    against; every data object is a "candidate".
    """

    def __init__(self, dataset: BinaryVectorDataset):
        self._dataset = dataset

    @property
    def dataset(self) -> BinaryVectorDataset:
        return self._dataset

    def search(self, query: np.ndarray, tau: int) -> SearchResult:
        timer = Timer()
        distances = self._dataset.distances_to(query)
        results = np.nonzero(distances <= tau)[0].tolist()
        elapsed = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=list(range(len(self._dataset))),
            candidate_time=0.0,
            verify_time=elapsed,
        )
