"""Hamming distance search (Problem 2, Section 6.1).

The paper builds on the GPH algorithm [72]: the ``d`` dimensions are divided
into ``m`` disjoint parts, per-part thresholds are allocated with a cost model
under integer reduction (``sum t_i = tau - m + 1``), and a data object is a
candidate when some part's Hamming distance to the query is within its
threshold.  The pigeonring searcher keeps the same first step and adds the
incremental prefix-viable chain check of lengths ``2 .. l``.

Public API:

* :class:`repro.hamming.dataset.BinaryVectorDataset` -- packed binary vectors
  with per-partition codes.
* :class:`repro.hamming.gph.GPHSearcher` -- the pigeonhole baseline.
* :class:`repro.hamming.ring.RingHammingSearcher` -- the pigeonring searcher
  (``chain_length=1`` reproduces GPH exactly).
* :class:`repro.hamming.linear.LinearHammingSearcher` -- brute-force scan used
  as ground truth in tests.
"""

from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.partition import Partitioning
from repro.hamming.index import PartitionIndex
from repro.hamming.cost_model import allocate_thresholds, even_thresholds
from repro.hamming.linear import LinearHammingSearcher
from repro.hamming.gph import GPHSearcher
from repro.hamming.ring import RingHammingSearcher

__all__ = [
    "BinaryVectorDataset",
    "Partitioning",
    "PartitionIndex",
    "allocate_thresholds",
    "even_thresholds",
    "LinearHammingSearcher",
    "GPHSearcher",
    "RingHammingSearcher",
]
