"""Vertical partitioning of binary vectors (the extract component for Hamming search).

The filtering instance of Section 6.1 partitions the ``d`` dimensions into
``m`` disjoint, (as) equi-width (as possible) parts.  Each part of an object
is a feature; box ``b_i(x, q)`` is the Hamming distance between the ``i``-th
parts.  Because the parts are disjoint, ``||B(x, q)||_1 = H(x, q)`` and the
instance is complete and tight (Lemma 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamming.bitvec import as_bit_matrix, codes_from_bits


@dataclass(frozen=True)
class Partitioning:
    """An equi-width partitioning of ``d`` dimensions into ``m`` parts.

    When ``d`` is not divisible by ``m`` the remainder dimensions are spread
    over the leading parts, so part widths differ by at most one.
    """

    d: int
    m: int

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise ValueError("dimensionality d must be positive")
        if not 1 <= self.m <= self.d:
            raise ValueError(f"the number of parts must be in [1, {self.d}], got {self.m}")

    @property
    def widths(self) -> tuple[int, ...]:
        """Width of each part."""
        base, remainder = divmod(self.d, self.m)
        return tuple(base + 1 if i < remainder else base for i in range(self.m))

    @property
    def boundaries(self) -> tuple[tuple[int, int], ...]:
        """Half-open ``[start, end)`` dimension ranges of each part."""
        bounds = []
        start = 0
        for width in self.widths:
            bounds.append((start, start + width))
            start += width
        return tuple(bounds)

    def split(self, vectors: np.ndarray) -> list[np.ndarray]:
        """Slice a ``(n, d)`` matrix into ``m`` per-part matrices."""
        matrix = as_bit_matrix(vectors)
        if matrix.shape[1] != self.d:
            raise ValueError(f"expected {self.d}-dimensional vectors, got {matrix.shape[1]}")
        return [matrix[:, start:end] for start, end in self.boundaries]

    def part_codes(self, vectors: np.ndarray) -> np.ndarray:
        """Encode each part of each vector as an integer: ``(n, m)`` int64 codes."""
        parts = self.split(vectors)
        return np.stack([codes_from_bits(part) for part in parts], axis=1)

    def part_code(self, vector: np.ndarray, part: int) -> int:
        """Integer code of one part of a single vector."""
        matrix = np.asarray(vector).reshape(1, -1)
        return int(self.part_codes(matrix)[0, part])


def default_num_parts(d: int, part_width: int = 16) -> int:
    """The paper's default ``m = floor(d / 16)`` (at least 1)."""
    if d <= 0:
        raise ValueError("dimensionality d must be positive")
    return max(1, d // part_width)
