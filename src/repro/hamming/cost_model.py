"""Threshold allocation for GPH (variable threshold allocation + integer reduction).

GPH assigns a per-partition threshold ``t_i`` with ``sum t_i = tau - m + 1``
(Theorem 5) and chooses the allocation with a query-specific cost model so
that skewed partitions -- those whose code distribution concentrates near the
query -- receive small (possibly ``-1``) thresholds and selective partitions
absorb the budget.

The cost model here is the greedy marginal-cost allocation: starting from
``t_i = -1`` everywhere (no partition produces candidates), repeatedly grant
one more unit of threshold to the partition whose next unit admits the fewest
additional data objects, until the budget ``tau - m + 1`` is reached.  The
per-unit cost is exact because the partition index can report the full
distance histogram of the query against each partition.

``even_thresholds`` provides the query-independent fallback allocation used
when no index (and hence no histogram) is available.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hamming.index import PartitionIndex


def even_thresholds(tau: int, m: int) -> list[int]:
    """Spread ``tau - m + 1`` as evenly as possible over ``m`` parts (floor at -1)."""
    if m <= 0:
        raise ValueError("the number of parts must be positive")
    budget = tau - m + 1
    if budget < -m:
        budget = -m
    base, remainder = divmod(budget + m, m)  # distribute relative to -1 floor
    thresholds = [base - 1 + (1 if i < remainder else 0) for i in range(m)]
    return thresholds


def allocate_thresholds(
    index: PartitionIndex, query_codes: np.ndarray, tau: int
) -> list[int]:
    """Greedy cost-model allocation of ``tau - m + 1`` threshold units.

    Args:
        index: the per-partition index built over the dataset.
        query_codes: the query's per-part codes.
        tau: the Hamming distance threshold.

    Returns:
        A list of per-partition thresholds ``t_i >= -1`` summing to
        ``max(tau - m + 1, -m)``.
    """
    m = index.m
    budget = tau - m + 1
    thresholds = [-1] * m
    if budget <= -m:
        return thresholds
    histograms = [
        index.distance_histogram(part, int(query_codes[part])) for part in range(m)
    ]
    # Each heap entry is (marginal cost of raising t_part to next_value, part,
    # next_value).  Raising a threshold from t to t+1 admits exactly the
    # objects at distance t+1.
    heap: list[tuple[int, int, int]] = []
    for part in range(m):
        heapq.heappush(heap, (int(histograms[part][0]), part, 0))
    units = budget + m  # number of +1 steps from the all -1 start
    for _ in range(units):
        cost, part, value = heapq.heappop(heap)
        thresholds[part] = value
        next_value = value + 1
        if next_value < len(histograms[part]):
            heapq.heappush(heap, (int(histograms[part][next_value]), part, next_value))
        else:
            # The partition is already fully open; further units are free.
            heapq.heappush(heap, (0, part, next_value))
    return thresholds
