"""The Pivotal baseline for string edit distance search (pigeonhole principle).

Pivotal [28] sorts each string's positional q-grams by a global frequency
order, takes the first ``kappa * tau + 1`` grams as the prefix and selects
``tau + 1`` position-disjoint *pivotal* grams from it.  For a result pair the
side whose prefix ends earlier in the global order must have a pivotal gram
exactly matching a gram of the other side's prefix at a compatible position
(pivotal prefix filter, Cand-1); the sum of the per-pivotal-gram minimum edit
distances to nearby substrings must not exceed ``tau`` (alignment filter,
Cand-2); survivors are verified with the banded edit distance.

The prefix depends on ``tau``, so a searcher is constructed per threshold --
matching how the paper evaluates one threshold at a time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.common.stats import SearchResult, Timer
from repro.strings.dataset import StringDataset
from repro.strings.edit_distance import edit_distance_within
from repro.strings.qgrams import PositionalGram


def window_edit_distance(gram: str, text: str, position: int, tau: int) -> int:
    """Minimum edit distance from ``gram`` to any substring of ``text`` that
    starts within the alignment-filter window of Section 6.3
    (``[position - tau, position + kappa - 1 + tau]``).

    Evaluated as a semi-global alignment of the gram against the window (free
    start and end inside the window).  Allowing substrings up to the full
    window length can only lower the value relative to the paper's
    ``kappa + tau - 1`` cap, so the box stays a valid lower bound and the
    filter stays complete.
    """
    kappa = len(gram)
    low = max(0, position - tau)
    high = min(position + kappa - 1 + tau, len(text) - 1)
    if low > high:
        return kappa
    window = text[low : high + 1]
    previous = [0] * (len(window) + 1)
    for i in range(1, kappa + 1):
        current = [i] + [0] * len(window)
        char = gram[i - 1]
        for j in range(1, len(window) + 1):
            cost = 0 if char == window[j - 1] else 1
            current[j] = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
        previous = current
    return min(previous)


@dataclass
class _QueryPlan:
    """Per-query quantities shared by the Pivotal and Ring searchers."""

    prefix: list[PositionalGram]
    pivotal: list[PositionalGram] | None
    last_prefix_rank: int
    fallback: bool = False


@dataclass
class _Candidate:
    """A Cand-1 entry: which side supplied the pivotal grams and which matched."""

    side: str  # "data" -> data pivotal grams vs query text; "query" -> converse
    matched_boxes: set[int] = field(default_factory=set)


class PivotalIndexBase:
    """Shared index and Cand-1 generation for Pivotal and Ring searchers."""

    def __init__(self, dataset: StringDataset, tau: int):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self._dataset = dataset
        self._tau = tau
        self._m = tau + 1
        extractor = dataset.extractor
        self._prefix_index: dict[str, list[tuple[int, int]]] = defaultdict(list)
        self._pivotal_index: dict[str, list[tuple[int, int, int]]] = defaultdict(list)
        self._data_pivotal: list[list[PositionalGram] | None] = []
        self._data_last_rank: list[int] = []
        self._always_candidates: list[int] = []
        for obj_id in range(len(dataset)):
            record = dataset.record(obj_id)
            prefix = extractor.prefix(record, tau)
            if not prefix:
                # The string is shorter than one gram; it can only be matched
                # by verification.
                self._data_pivotal.append(None)
                self._data_last_rank.append(-1)
                self._always_candidates.append(obj_id)
                continue
            pivotal = extractor.pivotal(prefix, tau)
            self._data_pivotal.append(pivotal)
            self._data_last_rank.append(extractor.last_prefix_rank(prefix))
            if pivotal is None:
                self._always_candidates.append(obj_id)
                continue
            for gram in prefix:
                self._prefix_index[gram.gram].append((obj_id, gram.position))
            for index, gram in enumerate(pivotal):
                self._pivotal_index[gram.gram].append((obj_id, gram.position, index))

    @property
    def dataset(self) -> StringDataset:
        return self._dataset

    @property
    def tau(self) -> int:
        return self._tau

    @property
    def m(self) -> int:
        """Number of boxes (pivotal grams): ``tau + 1``."""
        return self._m

    def data_pivotal(self, obj_id: int) -> list[PositionalGram] | None:
        return self._data_pivotal[obj_id]

    def query_plan(self, query: str) -> _QueryPlan:
        extractor = self._dataset.extractor
        prefix = extractor.prefix(query, self._tau)
        pivotal = extractor.pivotal(prefix, self._tau) if prefix else None
        fallback = not prefix or pivotal is None
        return _QueryPlan(
            prefix=prefix,
            pivotal=pivotal,
            last_prefix_rank=extractor.last_prefix_rank(prefix),
            fallback=fallback,
        )

    def first_step(self, query: str, plan: _QueryPlan):
        """Cand-1 generation: pivotal prefix filter matches plus fallbacks.

        Returns ``(matches, unconditional)`` where ``matches`` maps object id
        to a :class:`_Candidate` and ``unconditional`` lists objects that must
        be verified regardless (pivotal selection impossible on either side).
        """
        tau = self._tau
        query_length = len(query)
        unconditional: list[int] = []
        for obj_id in self._always_candidates:
            if abs(len(self._dataset.record(obj_id)) - query_length) <= tau:
                unconditional.append(obj_id)

        matches: dict[int, _Candidate] = {}
        if plan.fallback:
            # The query is too short to supply pivotal grams: verify every
            # length-compatible string (rare; only tiny queries).
            for obj_id in range(len(self._dataset)):
                if abs(len(self._dataset.record(obj_id)) - query_length) <= tau:
                    unconditional.append(obj_id)
            return matches, sorted(set(unconditional))

        # Case 1: a data pivotal gram matches a query prefix gram and the data
        # prefix ends no later than the query prefix.
        for gram in plan.prefix:
            for obj_id, position, pivotal_index in self._pivotal_index.get(gram.gram, ()):
                if abs(position - gram.position) > tau:
                    continue
                if abs(len(self._dataset.record(obj_id)) - query_length) > tau:
                    continue
                if self._data_last_rank[obj_id] > plan.last_prefix_rank:
                    continue
                entry = matches.get(obj_id)
                if entry is None:
                    entry = _Candidate(side="data")
                    matches[obj_id] = entry
                entry.matched_boxes.add(pivotal_index)

        # Case 2: a query pivotal gram matches a data prefix gram and the data
        # prefix ends later than the query prefix.
        for pivotal_index, gram in enumerate(plan.pivotal):
            for obj_id, position in self._prefix_index.get(gram.gram, ()):
                if abs(position - gram.position) > tau:
                    continue
                if abs(len(self._dataset.record(obj_id)) - query_length) > tau:
                    continue
                if self._data_last_rank[obj_id] <= plan.last_prefix_rank:
                    continue
                entry = matches.get(obj_id)
                if entry is None:
                    entry = _Candidate(side="query")
                    matches[obj_id] = entry
                if entry.side == "query":
                    entry.matched_boxes.add(pivotal_index)
        return matches, sorted(set(unconditional))

    def candidate_boxes(
        self, obj_id: int, candidate: _Candidate, query: str, plan: _QueryPlan
    ) -> tuple[list[PositionalGram], str]:
        """The pivotal grams forming the boxes and the text they align against."""
        if candidate.side == "data":
            pivotal = self._data_pivotal[obj_id]
            assert pivotal is not None
            return pivotal, query
        assert plan.pivotal is not None
        return plan.pivotal, self._dataset.record(obj_id)


class PivotalSearcher(PivotalIndexBase):
    """Pigeonhole baseline: pivotal prefix filter + alignment filter + verify."""

    def candidates(self, query: str) -> tuple[list[int], list[int]]:
        """Return ``(cand1, cand2)`` -- after the prefix filter and after the alignment filter."""
        plan = self.query_plan(query)
        matches, unconditional = self.first_step(query, plan)
        cand1 = sorted(set(unconditional) | set(matches))
        cand2: list[int] = list(unconditional)
        for obj_id, candidate in matches.items():
            pivotal, text = self.candidate_boxes(obj_id, candidate, query, plan)
            total = 0
            for gram in pivotal:
                total += window_edit_distance(gram.gram, text, gram.position, self._tau)
                if total > self._tau:
                    break
            if total <= self._tau:
                cand2.append(obj_id)
        return cand1, sorted(set(cand2))

    def search(self, query: str) -> SearchResult:
        timer = Timer()
        cand1, cand2 = self.candidates(query)
        candidate_time = timer.restart()
        results = [
            obj_id
            for obj_id in cand2
            if edit_distance_within(self._dataset.record(obj_id), query, self._tau)
        ]
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=cand2,
            candidate_time=candidate_time,
            verify_time=verify_time,
            extra={"cand1": len(cand1), "cand2": len(cand2)},
        )
