"""Pigeonring-accelerated string edit distance search (Section 6.3).

The Ring searcher keeps Pivotal's first step (the pivotal prefix filter)
and replaces the alignment filter with the prefix-viable chain check of
Theorem 3: ``m = tau + 1`` boxes (one per pivotal gram), uniform quota
``tau / m < 1``, so a chain can only start at a box whose value is zero (an
exact pivotal-gram match).  Box values along the chain are evaluated with the
content-based bit-vector lower bound instead of exact edit distances, which
preserves completeness (a lower bound can only make a chain look *more*
viable) at a fraction of the cost -- the paper's key implementation remark.
"""

from __future__ import annotations

from repro.common.stats import SearchResult, Timer
from repro.strings.dataset import StringDataset
from repro.strings.edit_distance import edit_distance_within
from repro.strings.pivotal import PivotalIndexBase, _Candidate, _QueryPlan
from repro.strings.qgrams import PositionalGram, character_mask, content_lower_bound


class RingStringSearcher(PivotalIndexBase):
    """Pigeonring searcher for string edit distance.

    Args:
        dataset: the indexed collection.
        tau: the edit distance threshold (prefixes depend on it).
        chain_length: chain length ``l``; the paper finds ``min(3, tau + 1)``
            best overall.
    """

    def __init__(self, dataset: StringDataset, tau: int, chain_length: int | None = None):
        super().__init__(dataset, tau)
        if chain_length is None:
            chain_length = min(3, tau + 1)
        if chain_length < 1:
            raise ValueError("chain_length must be at least 1")
        self._chain_length = min(chain_length, self._m)

    @property
    def chain_length(self) -> int:
        return self._chain_length

    def _box_lower_bound(
        self, gram: PositionalGram, text: str, mask_cache: dict[int, int]
    ) -> int:
        """Content-filter lower bound of one alignment box.

        For every substring of ``text`` starting within ``tau`` of the gram's
        position and of length up to ``kappa + tau``, take
        ``ceil(popcount(mask(gram) XOR mask(substring)) / 2)`` and return the
        minimum.  In an optimal edit script of cost at most ``tau`` the gram
        is aligned to one of these substrings at cost ``c_i``, and the content
        bound of that substring is at most ``c_i``; therefore the chain check
        driven by these values never rejects a true result.
        """
        kappa = len(gram.gram)
        gram_mask = character_mask(gram.gram)
        # Empty aligned segment: the gram is fully deleted, bound <= kappa.
        best = (gram_mask.bit_count() + 1) // 2
        if best == 0:
            return 0
        low = max(0, gram.position - self._tau)
        high = min(gram.position + self._tau, len(text) - 1)
        max_length = kappa + self._tau
        for start in range(low, high + 1):
            cached = mask_cache.get(start)
            if cached is None:
                cached = []
                mask = 0
                for offset in range(min(max_length, len(text) - start)):
                    mask |= 1 << (ord(text[start + offset]) % 64)
                    cached.append(mask)
                mask_cache[start] = cached
            for mask in cached:
                bound = content_lower_bound(gram_mask, mask)
                if bound < best:
                    best = bound
                    if best == 0:
                        return 0
        return best

    def _passes_chain_check(
        self, obj_id: int, candidate: _Candidate, query: str, plan: _QueryPlan
    ) -> bool:
        pivotal, text = self.candidate_boxes(obj_id, candidate, query, plan)
        m = self._m
        length = self._chain_length
        quota = self._tau / m
        values: dict[int, float] = {box: 0.0 for box in candidate.matched_boxes}
        mask_cache: dict[int, list[int]] = {}

        def box_value(index: int) -> float:
            value = values.get(index)
            if value is None:
                value = float(
                    self._box_lower_bound(pivotal[index], text, mask_cache)
                )
                values[index] = value
            return value

        def prefix_viable_from(start: int) -> bool:
            running = 0.0
            for offset in range(length):
                running += box_value((start + offset) % m)
                if running > (offset + 1) * quota + 1e-12:
                    return False
            return True

        for start in sorted(candidate.matched_boxes):
            if prefix_viable_from(start):
                return True
        # Theorem 3 only guarantees a prefix-viable chain starting at *some*
        # zero-valued box, which may be a pivotal gram whose exact match lies
        # outside the other side's prefix.  Checking the remaining zero-valued
        # boxes (under the same cheap lower bound) keeps the filter complete.
        for start in range(m):
            if start in candidate.matched_boxes:
                continue
            if box_value(start) <= quota and prefix_viable_from(start):
                return True
        return False

    def candidates(self, query: str) -> list[int]:
        plan = self.query_plan(query)
        matches, unconditional = self.first_step(query, plan)
        ordered = list(unconditional)
        seen = set(unconditional)
        for obj_id, candidate in matches.items():
            if obj_id in seen:
                continue
            if self._passes_chain_check(obj_id, candidate, query, plan):
                seen.add(obj_id)
                ordered.append(obj_id)
        return sorted(seen)

    def search(self, query: str) -> SearchResult:
        timer = Timer()
        candidates = self.candidates(query)
        candidate_time = timer.restart()
        results = [
            obj_id
            for obj_id in candidates
            if edit_distance_within(self._dataset.record(obj_id), query, self._tau)
        ]
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
