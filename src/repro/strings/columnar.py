"""Columnar (batch-at-a-time) pigeonring string edit distance search.

:class:`ColumnarStringSearcher` keeps the exact filtering semantics of
:class:`repro.strings.ring.RingStringSearcher` but moves the hot loops from
per-posting Python dispatch to array kernels:

* the pivotal and prefix inverted indexes become CSR postings keyed by the
  extractor's global gram rank (rank equality is gram equality for any
  (query gram, data gram) pair: data grams all carry learned ranks and
  unseen query grams rank beyond the learned universe);
* Cand-1 generation gathers each matching posting slice once and applies
  the position-window, length and prefix-rank filters vectorised;
* per-candidate matched boxes are folded into uint64 bitmasks, a complete
  whole-string content-bound prefilter (``ceil(popcount(mask_x ^ mask_q)
  / 2) > tau`` implies ``ed > tau``) prunes candidates in bulk, and a
  vectorised fast-accept admits every candidate with ``l`` consecutive
  exactly-matched (zero-valued) boxes without touching the per-box lower
  bounds;
* the remaining candidates get their chain checked over the whole array at
  once: every box's content-bound lower bound is a windowed minimum over
  precomputed substring masks (one flat mask table for the record corpus,
  one per query), gathered and reduced in bulk; and
* survivors are verified with a per-query bit-parallel (Myers) matcher
  whose query masks are built once for the whole candidate batch.

Result ids are byte-identical to the scalar searcher's (both ascending);
the candidate set is a subset of the scalar one -- the extra content
prefilter is complete, so no true result is ever dropped.
"""

from __future__ import annotations

import numpy as np

from repro.common.obs import span
from repro.common.scratch import PerThread, Scratch, csr_gather_indices
from repro.common.stats import SearchResult, Timer
from repro.strings.dataset import StringDataset
from repro.strings.edit_distance import QueryMatcher
from repro.strings.pivotal import _Candidate
from repro.strings.qgrams import character_mask
from repro.strings.ring import RingStringSearcher

#: Box counts above this cannot be folded into a uint64 bitmask; such
#: thresholds (tau >= 64) fall back to the scalar candidate path.
_MAX_MASK_BOXES = 64

#: Largest alignment window (``kappa + tau``) for which the substring mask
#: tables are materialised; beyond it the undecided candidates run the
#: scalar chain check instead (the tables grow linearly in the window).
_MAX_WINDOW = 32

#: Cap on the whole-corpus substring mask table (entries, 8 bytes each --
#: 128 MB at the cap).  A corpus whose ``total_chars * window`` exceeds it
#: keeps the scalar chain check for undecided candidates instead of
#: materialising the table.
_MAX_TABLE_ENTRIES = 1 << 24


def _substring_mask_table(
    codes: np.ndarray, ends: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Character masks of every substring of length ``1..window``.

    ``codes`` holds the ord codes of one or more concatenated texts and
    ``ends[i]`` the end offset (in ``codes``) of the text containing
    position ``i``, so substrings never cross text boundaries.  Returns
    ``(flat, offsets)``: the masks of substrings starting at position ``i``
    (shortest first) sit in ``flat[offsets[i]:offsets[i + 1]]``.
    """
    total = codes.size
    bits = np.left_shift(np.uint64(1), (codes % 64).astype(np.uint64))
    counts = np.minimum(ends - np.arange(total, dtype=np.int64), window)
    offsets = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Width-by-width cumulative ORs written straight into the flat layout
    # (position-major, shortest substring first) -- no dense intermediate.
    flat = np.zeros(int(offsets[-1]), dtype=np.uint64)
    current = bits
    for width in range(1, window + 1):
        if width > 1:
            current = current[:-1] | bits[width - 1 :]
        starts = np.flatnonzero(counts >= width)
        if not starts.size:
            break
        # counts[s] >= width implies s + width <= ends[s] <= total, so every
        # such start indexes into ``current`` (length total - width + 1).
        flat[offsets[starts] + width - 1] = current[starts]
    return flat, offsets


class ColumnarStringSearcher(RingStringSearcher):
    """Array-kernel pigeonring searcher for string edit distance.

    Args:
        dataset: the indexed collection.
        tau: the edit distance threshold (prefixes depend on it).
        chain_length: chain length ``l``; the paper finds ``min(3, tau + 1)``
            best overall.
    """

    def __init__(self, dataset: StringDataset, tau: int, chain_length: int | None = None):
        super().__init__(dataset, tau, chain_length=chain_length)
        columns = dataset.columns()
        self._col_lengths = columns.lengths
        self._col_masks = columns.masks
        self._build_columns()
        self._scratch: PerThread = PerThread(Scratch)
        self._window = dataset.kappa + tau
        self._vector_chain = (
            self._window <= _MAX_WINDOW
            and int(self._col_lengths.sum()) * self._window <= _MAX_TABLE_ENTRIES
        )
        # The record-corpus substring mask table only pays off once a query
        # actually reaches the chain check on the "query" side; built lazily.
        self._rec_sub_flat: np.ndarray | None = None
        self._rec_sub_off: np.ndarray | None = None
        self._rec_base: np.ndarray | None = None

    def _build_columns(self) -> None:
        """Convert the dict indexes built by the scalar base into CSR."""
        extractor = self._dataset.extractor

        def to_csr(index: dict, width: int):
            items = sorted(
                (extractor.rank(gram), entries) for gram, entries in index.items()
            )
            keys = np.asarray([rank for rank, _ in items], dtype=np.int64)
            offsets = np.zeros(len(items) + 1, dtype=np.int64)
            np.cumsum([len(entries) for _, entries in items], out=offsets[1:])
            flat = [
                np.fromiter(
                    (entry[field] for _, entries in items for entry in entries),
                    dtype=np.int64,
                    count=int(offsets[-1]),
                )
                for field in range(width)
            ]
            return keys, offsets, flat

        keys, offsets, (objs, positions, boxes) = to_csr(self._pivotal_index, 3)
        self._piv_keys, self._piv_offsets = keys, offsets
        self._piv_objs, self._piv_positions, self._piv_boxes = objs, positions, boxes
        keys, offsets, (objs, positions) = to_csr(self._prefix_index, 2)
        self._pre_keys, self._pre_offsets = keys, offsets
        self._pre_objs, self._pre_positions = objs, positions
        if self._m <= _MAX_MASK_BOXES:
            # The dict indexes are only needed by the scalar fallback for
            # tau >= 64 (decidable now); otherwise they are dead weight.
            del self._pivotal_index
            del self._prefix_index
        self._col_last_rank = np.asarray(self._data_last_rank, dtype=np.int64)
        self._col_always = np.asarray(sorted(self._always_candidates), dtype=np.int64)
        # Per-record pivotal gram positions and character masks, one row per
        # record (rows of records without pivotal grams stay zero and are
        # never read: such records are always-candidates, never matched).
        num = len(self._dataset)
        self._piv_pos_mat = np.zeros((num, self._m), dtype=np.int64)
        self._piv_mask_mat = np.zeros((num, self._m), dtype=np.uint64)
        for obj_id, pivotal in enumerate(self._data_pivotal):
            if pivotal is None:
                continue
            for box, gram in enumerate(pivotal):
                self._piv_pos_mat[obj_id, box] = gram.position
                self._piv_mask_mat[obj_id, box] = character_mask(gram.gram)

    # -- candidate generation ----------------------------------------------

    def candidates(self, query: str) -> list[int]:
        cands, _generated = self._candidates_columnar(query)
        return cands.tolist()

    def _lookup(self, keys: np.ndarray, offsets: np.ndarray, rank: int) -> slice | None:
        slot = int(np.searchsorted(keys, rank))
        if slot >= keys.size or keys[slot] != rank:
            return None
        return slice(int(offsets[slot]), int(offsets[slot + 1]))

    def _candidates_columnar(self, query: str) -> tuple[np.ndarray, int]:
        """Candidate ids (ascending) plus the pre-filter candidate count."""
        plan = self.query_plan(query)
        tau = self._tau
        m = self._m
        length_q = len(query)
        lengths = self._col_lengths
        if plan.fallback:
            # The query cannot supply pivotal grams: verify every
            # length-compatible string (this includes the always-candidates).
            cands = np.flatnonzero(np.abs(lengths - length_q) <= tau).astype(np.int64)
            return cands, int(cands.size)
        if m > _MAX_MASK_BOXES:
            ordered = super().candidates(query)
            return np.asarray(ordered, dtype=np.int64), len(ordered)

        always = self._col_always
        if always.size:
            always = always[np.abs(lengths[always] - length_q) <= tau]

        extractor = self._dataset.extractor
        obj_parts: list[np.ndarray] = []
        box_parts: list[np.ndarray] = []
        # Case 1: a data pivotal gram matches a query prefix gram and the
        # data prefix ends no later than the query prefix.
        if self._piv_keys.size:
            for gram in plan.prefix:
                rows = self._lookup(self._piv_keys, self._piv_offsets, extractor.rank(gram.gram))
                if rows is None:
                    continue
                objs = self._piv_objs[rows]
                keep = (
                    (np.abs(self._piv_positions[rows] - gram.position) <= tau)
                    & (np.abs(lengths[objs] - length_q) <= tau)
                    & (self._col_last_rank[objs] <= plan.last_prefix_rank)
                )
                obj_parts.append(objs[keep])
                box_parts.append(self._piv_boxes[rows][keep])
        # Case 2: a query pivotal gram matches a data prefix gram and the
        # data prefix ends later than the query prefix.
        if self._pre_keys.size and plan.pivotal is not None:
            for box_index, gram in enumerate(plan.pivotal):
                rows = self._lookup(self._pre_keys, self._pre_offsets, extractor.rank(gram.gram))
                if rows is None:
                    continue
                objs = self._pre_objs[rows]
                keep = (
                    (np.abs(self._pre_positions[rows] - gram.position) <= tau)
                    & (np.abs(lengths[objs] - length_q) <= tau)
                    & (self._col_last_rank[objs] > plan.last_prefix_rank)
                )
                objs = objs[keep]
                obj_parts.append(objs)
                box_parts.append(np.full(objs.size, box_index, dtype=np.int64))

        obj_all = np.concatenate(obj_parts) if obj_parts else np.empty(0, dtype=np.int64)
        if not obj_all.size:
            return always.copy(), int(always.size)
        box_all = np.concatenate(box_parts)

        # Fold the matched (object, box) pairs into one uint64 bitmask per
        # candidate: unique pair keys, then a bitwise-or over each object's
        # contiguous run.
        pair_keys = np.unique(obj_all * m + box_all)
        pair_objs = pair_keys // m
        pair_boxes = (pair_keys % m).astype(np.uint64)
        matched, first = np.unique(pair_objs, return_index=True)
        masks = np.bitwise_or.reduceat(np.uint64(1) << pair_boxes, first)
        generated = int(matched.size + always.size)

        # Complete whole-string content prefilter, evaluated in bulk.
        query_mask = np.uint64(character_mask(query))
        bound = (np.bitwise_count(self._col_masks[matched] ^ query_mask) + np.uint64(1)) >> 1
        keep = bound <= tau
        matched = matched[keep]
        masks = masks[keep]

        # Vectorised fast accept: l consecutive exactly-matched boxes form a
        # prefix-viable chain of zeros, no lower bounds needed.
        accepted = np.zeros(matched.size, dtype=bool)
        one = np.uint64(1)
        for start in range(m):
            ok = np.ones(matched.size, dtype=bool)
            for offset in range(self._chain_length):
                box = np.uint64((start + offset) % m)
                ok &= (masks >> box) & one != 0
                if not ok.any():
                    break
            accepted |= ok
            if accepted.all():
                break

        # Chain check for the undecided candidates, over the whole array at
        # once: per-box content-bound lower bounds as windowed minimums over
        # the precomputed substring mask tables, then the prefix-viability
        # recurrence vectorised across candidates.
        undecided = np.flatnonzero(~accepted)
        if not undecided.size:
            chained = np.empty(0, dtype=np.int64)
        elif self._vector_chain:
            ids = matched[undecided]
            values = self._box_values(ids, query, plan)
            passed = self._chain_from_values(values, masks[undecided])
            chained = ids[passed]
        else:
            # Window or corpus table too large to materialise: scalar chain
            # check per undecided candidate.
            chained_list: list[int] = []
            for row in undecided.tolist():
                obj_id = int(matched[row])
                mask = int(masks[row])
                candidate = _Candidate(
                    side="data"
                    if self._col_last_rank[obj_id] <= plan.last_prefix_rank
                    else "query",
                    matched_boxes={box for box in range(m) if (mask >> box) & 1},
                )
                if self._passes_chain_check(obj_id, candidate, query, plan):
                    chained_list.append(obj_id)
            chained = np.asarray(chained_list, dtype=np.int64)

        survivors = np.concatenate([always, matched[accepted], chained])
        return np.sort(survivors), generated

    # -- vectorised chain check --------------------------------------------

    def _ensure_record_windows(self) -> None:
        """Build the record-corpus substring mask table once, lazily."""
        if self._rec_sub_flat is not None:
            return
        records = self._dataset.records
        lengths = self._col_lengths
        base = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(lengths, out=base[1:])
        codes = np.fromiter(
            (ord(char) for record in records for char in record),
            dtype=np.int64,
            count=int(base[-1]),
        )
        ends = np.repeat(base[1:], lengths)
        flat, offsets = _substring_mask_table(codes, ends, self._window)
        self._rec_sub_flat, self._rec_sub_off, self._rec_base = flat, offsets, base

    def _window_min_bounds(
        self,
        gram_masks: np.ndarray,
        gram_positions: np.ndarray,
        base: np.ndarray | int,
        text_lengths: np.ndarray | int,
        sub_flat: np.ndarray,
        sub_off: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`RingStringSearcher._box_lower_bound`.

        Entry ``i`` is the minimum content bound of gram ``i`` against every
        substring of its text starting within ``tau`` of the gram position
        (lengths up to ``kappa + tau``), capped by the full-deletion bound.
        """
        tau = self._tau
        cap = (np.bitwise_count(gram_masks).astype(np.int64) + 1) >> 1
        empty = gram_positions - tau > text_lengths - 1
        lo = np.clip(gram_positions - tau, 0, text_lengths - 1)
        hi = np.maximum(np.minimum(gram_positions + tau, text_lengths - 1), lo)
        starts = sub_off[base + lo]
        ends = sub_off[base + hi + 1]
        gather = csr_gather_indices(starts, ends, self._scratch.get())
        sizes = ends - starts
        diffs = np.bitwise_count(sub_flat[gather] ^ np.repeat(gram_masks, sizes))
        bounds = (diffs.astype(np.int64) + 1) >> 1
        segments = np.zeros(sizes.size, dtype=np.int64)
        np.cumsum(sizes[:-1], out=segments[1:])
        values = np.minimum(np.minimum.reduceat(bounds, segments), cap)
        values[empty] = cap[empty]
        return values

    def _box_values(self, ids: np.ndarray, query: str, plan) -> np.ndarray:
        """The ``(len(ids), m)`` matrix of content-bound box values.

        "data"-side candidates align their own pivotal grams against the
        query text (one shared mask table per query); "query"-side
        candidates align the query's pivotal grams against their record
        (the lazily built corpus table, shared by every query).
        """
        m = self._m
        values = np.zeros((ids.size, m), dtype=np.int64)
        side_data = self._col_last_rank[ids] <= plan.last_prefix_rank
        rows = np.flatnonzero(side_data)
        if rows.size:
            ids_data = ids[rows]
            length_q = len(query)
            codes = np.fromiter(map(ord, query), dtype=np.int64, count=length_q)
            q_flat, q_off = _substring_mask_table(
                codes, np.full(length_q, length_q, dtype=np.int64), self._window
            )
            values[rows] = self._window_min_bounds(
                self._piv_mask_mat[ids_data].ravel(),
                self._piv_pos_mat[ids_data].ravel(),
                0,
                length_q,
                q_flat,
                q_off,
            ).reshape(rows.size, m)
        rows = np.flatnonzero(~side_data)
        if rows.size:
            self._ensure_record_windows()
            ids_query = ids[rows]
            positions = np.asarray([gram.position for gram in plan.pivotal], dtype=np.int64)
            gram_masks = np.asarray(
                [character_mask(gram.gram) for gram in plan.pivotal], dtype=np.uint64
            )
            values[rows] = self._window_min_bounds(
                np.tile(gram_masks, ids_query.size),
                np.tile(positions, ids_query.size),
                np.repeat(self._rec_base[ids_query], m),
                np.repeat(self._col_lengths[ids_query], m),
                self._rec_sub_flat,
                self._rec_sub_off,
            ).reshape(rows.size, m)
        return values

    def _chain_from_values(self, values: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Prefix-viability over the whole candidate array at once.

        Matched boxes are exact pivotal-gram matches, hence zero-valued no
        matter what the content bound says; every box is a legal chain start
        (a start whose value exceeds the quota fails at offset zero, which
        subsumes the scalar searcher's start preselection).
        """
        m = self._m
        one = np.uint64(1)
        for box in range(m):
            exact = (masks >> np.uint64(box)) & one != 0
            values[exact, box] = 0
        quota = self._tau / m
        passed = np.zeros(values.shape[0], dtype=bool)
        for start in range(m):
            alive = np.ones(values.shape[0], dtype=bool)
            running = np.zeros(values.shape[0], dtype=np.int64)
            for offset in range(self._chain_length):
                running = running + values[:, (start + offset) % m]
                alive &= running <= (offset + 1) * quota + 1e-12
                if not alive.any():
                    break
            passed |= alive
            if passed.all():
                break
        return passed

    # -- search -------------------------------------------------------------

    def search(self, query: str) -> SearchResult:
        timer = Timer()
        with span("candidates"):
            cands, generated = self._candidates_columnar(query)
        candidate_time = timer.restart()
        with span("verify"):
            records = self._dataset.records
            # One Myers matcher per query: the query bit masks are built once
            # and every candidate costs O(len(record)) word operations.
            matcher = QueryMatcher(query)
            tau = self._tau
            results = [
                obj_id for obj_id in cands.tolist() if matcher.within(records[obj_id], tau)
            ]
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=cands.tolist(),
            candidate_time=candidate_time,
            verify_time=verify_time,
            extra={"generated": generated, "verified": int(cands.size)},
        )
