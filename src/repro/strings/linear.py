"""Brute-force string edit distance search (ground truth for tests)."""

from __future__ import annotations

from repro.common.stats import SearchResult, Timer
from repro.strings.dataset import StringDataset
from repro.strings.edit_distance import edit_distance_within


class LinearStringSearcher:
    """Evaluate the banded edit-distance predicate against every string."""

    def __init__(self, dataset: StringDataset):
        self._dataset = dataset

    @property
    def dataset(self) -> StringDataset:
        return self._dataset

    def search(self, query: str, tau: int) -> SearchResult:
        timer = Timer()
        results = [
            obj_id
            for obj_id in range(len(self._dataset))
            if edit_distance_within(self._dataset.record(obj_id), query, tau)
        ]
        elapsed = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=list(range(len(self._dataset))),
            candidate_time=0.0,
            verify_time=elapsed,
        )
