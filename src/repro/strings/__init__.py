"""String edit distance search (Problem 4, Section 6.3).

The paper's pigeonring searcher builds on the Pivotal algorithm [28]: each
string's q-grams are sorted by a global frequency order, the first
``kappa * tau + 1`` grams form the prefix, and ``tau + 1`` position-disjoint
*pivotal* grams are chosen from the prefix.  A result must have an exact
pivotal-gram match in the other string's prefix (pivotal prefix filter), and
the sum of the per-pivotal-gram minimum edit distances to nearby substrings is
at most ``tau`` (alignment filter).  The Ring searcher replaces the alignment
filter with the prefix-viable chain check of Theorem 3, evaluating each box by
the cheap content-based (character bit-vector) lower bound instead of exact
edit distances.

Public API:

* :class:`repro.strings.dataset.StringDataset`
* :class:`repro.strings.pivotal.PivotalSearcher` -- the pigeonhole baseline
  (reports Cand-1 and Cand-2 like the paper's Figure 11).
* :class:`repro.strings.ring.RingStringSearcher` -- the pigeonring searcher.
* :class:`repro.strings.columnar.ColumnarStringSearcher` -- the columnar
  candidate pipeline (CSR postings, bulk chain checks, bit-parallel
  verification; byte-identical results).
* :class:`repro.strings.linear.LinearStringSearcher` -- brute force.
"""

from repro.strings.edit_distance import edit_distance, edit_distance_within
from repro.strings.qgrams import QGramExtractor, positional_qgrams
from repro.strings.dataset import StringDataset
from repro.strings.linear import LinearStringSearcher
from repro.strings.pivotal import PivotalSearcher
from repro.strings.ring import RingStringSearcher
from repro.strings.columnar import ColumnarStringSearcher

__all__ = [
    "edit_distance",
    "edit_distance_within",
    "QGramExtractor",
    "positional_qgrams",
    "StringDataset",
    "LinearStringSearcher",
    "PivotalSearcher",
    "RingStringSearcher",
    "ColumnarStringSearcher",
]
