"""Dataset container for string edit distance search."""

from __future__ import annotations

from typing import Sequence

from repro.strings.qgrams import QGramExtractor


class StringDataset:
    """A collection of strings with a q-gram extractor learned from them.

    Args:
        records: the data strings.
        kappa: q-gram length; the paper tunes it per dataset and threshold
            (e.g. 2-3 for short name strings, 4-8 for long titles).
    """

    def __init__(self, records: Sequence[str], kappa: int = 2):
        if not records:
            raise ValueError("the dataset needs at least one string")
        self._records = list(records)
        self._extractor = QGramExtractor(kappa, self._records)

    @property
    def records(self) -> list[str]:
        return self._records

    @property
    def extractor(self) -> QGramExtractor:
        return self._extractor

    @property
    def kappa(self) -> int:
        return self._extractor.kappa

    def record(self, obj_id: int) -> str:
        return self._records[obj_id]

    def __len__(self) -> int:
        return len(self._records)
