"""Dataset container for string edit distance search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.strings.qgrams import QGramExtractor, character_mask


@dataclass(frozen=True)
class StringColumns:
    """Flat per-record columns of a string collection.

    Attributes:
        lengths: record lengths (int64), for vectorised length filters.
        masks: per-record character masks (uint64), for the vectorised
            content-bound prefilter (``ed(x, q) <= t`` implies the masks
            differ in at most ``2 t`` bits).
    """

    lengths: np.ndarray
    masks: np.ndarray


class StringDataset:
    """A collection of strings with a q-gram extractor learned from them.

    Args:
        records: the data strings.
        kappa: q-gram length; the paper tunes it per dataset and threshold
            (e.g. 2-3 for short name strings, 4-8 for long titles).
    """

    def __init__(self, records: Sequence[str], kappa: int = 2):
        if not records:
            raise ValueError("the dataset needs at least one string")
        self._records = list(records)
        self._extractor = QGramExtractor(kappa, self._records)
        self._columns: StringColumns | None = None

    @property
    def records(self) -> list[str]:
        return self._records

    @property
    def extractor(self) -> QGramExtractor:
        return self._extractor

    @property
    def kappa(self) -> int:
        return self._extractor.kappa

    def record(self, obj_id: int) -> str:
        return self._records[obj_id]

    def columns(self) -> StringColumns:
        """Per-record length and character-mask columns (built lazily)."""
        if self._columns is None:
            self._columns = StringColumns(
                lengths=np.asarray([len(record) for record in self._records], dtype=np.int64),
                masks=np.asarray(
                    [character_mask(record) for record in self._records], dtype=np.uint64
                ),
            )
        return self._columns

    def __len__(self) -> int:
        return len(self._records)
