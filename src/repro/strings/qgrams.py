"""Positional q-grams, global gram ordering, and the content-based filter.

A positional q-gram of a string ``x`` is a pair ``(gram, position)`` where
``gram = x[position : position + kappa]``.  Prefixes sort a string's grams by
a global (increasing document frequency) order; pivotal grams are
position-disjoint grams picked greedily from the prefix.

The content-based filter of [114] maps a (sub)string to a bit mask with one
bit per symbol that occurs in it; ``ed(x, y) <= t`` implies the masks differ
in at most ``2 t`` bits, so ``ceil(popcount(mask_x XOR mask_y) / 2)`` is a
lower bound of the edit distance used by the Ring box evaluation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PositionalGram:
    """A q-gram together with its starting position in the source string."""

    gram: str
    position: int


def positional_qgrams(text: str, kappa: int) -> list[PositionalGram]:
    """All positional ``kappa``-grams of ``text`` (empty for short strings)."""
    if kappa <= 0:
        raise ValueError("the q-gram length kappa must be positive")
    return [
        PositionalGram(text[i : i + kappa], i) for i in range(len(text) - kappa + 1)
    ]


def character_mask(text: str) -> int:
    """Bit mask with one bit per distinct character of ``text``."""
    mask = 0
    for char in text:
        mask |= 1 << (ord(char) % 64)
    return mask


def content_lower_bound(mask_a: int, mask_b: int) -> int:
    """``ceil(H(mask_a, mask_b) / 2)`` -- a lower bound on the edit distance."""
    return ((mask_a ^ mask_b).bit_count() + 1) // 2


class QGramExtractor:
    """Extracts prefixes and pivotal grams under a global gram order.

    Args:
        kappa: q-gram length.
        records: the string collection used to learn gram frequencies.
    """

    def __init__(self, kappa: int, records: Iterable[str]):
        if kappa <= 0:
            raise ValueError("the q-gram length kappa must be positive")
        self._kappa = kappa
        frequency: Counter = Counter()
        for record in records:
            frequency.update(gram.gram for gram in positional_qgrams(record, kappa))
        ordered = sorted(frequency, key=lambda gram: (frequency[gram], gram))
        self._rank = {gram: rank for rank, gram in enumerate(ordered)}
        self._unknown_base = len(ordered)

    @property
    def kappa(self) -> int:
        return self._kappa

    def rank(self, gram: str) -> int:
        """Global rank of a gram (unseen grams rank after all known grams)."""
        rank = self._rank.get(gram)
        if rank is None:
            return self._unknown_base + hash(gram) % (1 << 30)
        return rank

    def sorted_grams(self, text: str) -> list[PositionalGram]:
        """The string's positional grams sorted by the global order."""
        grams = positional_qgrams(text, self._kappa)
        return sorted(grams, key=lambda g: (self.rank(g.gram), g.position))

    def prefix(self, text: str, tau: int) -> list[PositionalGram]:
        """The first ``kappa * tau + 1`` grams by global order."""
        if tau < 0:
            raise ValueError("tau must be non-negative")
        return self.sorted_grams(text)[: self._kappa * tau + 1]

    def pivotal(self, prefix: Sequence[PositionalGram], tau: int) -> list[PositionalGram] | None:
        """``tau + 1`` position-disjoint grams selected greedily from the prefix.

        Returns ``None`` when fewer than ``tau + 1`` disjoint grams exist,
        which happens for strings too short for the (kappa, tau) combination;
        callers must then treat the string conservatively.
        """
        chosen: list[PositionalGram] = []
        for gram in sorted(prefix, key=lambda g: g.position):
            if all(abs(gram.position - other.position) >= self._kappa for other in chosen):
                chosen.append(gram)
        if len(chosen) < tau + 1:
            return None
        # Keep the tau + 1 rarest of the disjoint grams, in position order.
        chosen.sort(key=lambda g: self.rank(g.gram))
        selected = chosen[: tau + 1]
        selected.sort(key=lambda g: g.position)
        return selected

    def last_prefix_rank(self, prefix: Sequence[PositionalGram]) -> int:
        """Rank of the last (most frequent) gram of a prefix."""
        if not prefix:
            return -1
        return max(self.rank(gram.gram) for gram in prefix)
