"""Edit distance computations.

Verification uses the banded (Ukkonen) dynamic program: when only the
predicate ``ed(x, q) <= tau`` matters, cells farther than ``tau`` from the
diagonal cannot contribute and the computation is ``O(tau * min(|x|, |q|))``.
"""

from __future__ import annotations


def edit_distance(x: str, y: str) -> int:
    """Exact Levenshtein distance (full dynamic program)."""
    if x == y:
        return 0
    if not x:
        return len(y)
    if not y:
        return len(x)
    previous = list(range(len(y) + 1))
    for i, cx in enumerate(x, start=1):
        current = [i] + [0] * len(y)
        for j, cy in enumerate(y, start=1):
            cost = 0 if cx == cy else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost  # substitution / match
            )
        previous = current
    return previous[-1]


def edit_distance_within(x: str, y: str, tau: int) -> bool:
    """Whether ``ed(x, y) <= tau`` using the banded dynamic program."""
    if tau < 0:
        return False
    if x == y:
        return True
    len_x, len_y = len(x), len(y)
    if abs(len_x - len_y) > tau:
        return False
    if len_x == 0 or len_y == 0:
        return max(len_x, len_y) <= tau
    # Ensure x is the shorter string so the band is over the longer one.
    if len_x > len_y:
        x, y = y, x
        len_x, len_y = len_y, len_x
    big = tau + 1
    previous = [j if j <= tau else big for j in range(len_y + 1)]
    for i in range(1, len_x + 1):
        low = max(1, i - tau)
        high = min(len_y, i + tau)
        current = [big] * (len_y + 1)
        if low == 1:
            current[0] = i if i <= tau else big
        cx = x[i - 1]
        row_min = big
        for j in range(low, high + 1):
            cost = 0 if cx == y[j - 1] else 1
            value = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if value > big:
                value = big
            current[j] = value
            if value < row_min:
                row_min = value
        if row_min > tau:
            return False
        previous = current
    return previous[len_y] <= tau
