"""Edit distance computations.

Verification uses the banded (Ukkonen) dynamic program: when only the
predicate ``ed(x, q) <= tau`` matters, cells farther than ``tau`` from the
diagonal cannot contribute and the computation is ``O(tau * min(|x|, |q|))``.

Both entry points first strip the common prefix and suffix of the two
strings -- edit distance is invariant under removing shared affixes, and
near-duplicate workloads (the only ones that survive the filters) share
long affixes -- and run the dynamic program over reused row buffers instead
of allocating a fresh row per iteration.

:class:`QueryMatcher` serves the batched case -- one query verified against
many candidate texts -- with Myers' bit-parallel algorithm: the query's
per-character bit masks are built once, after which each text costs
``O(len(text))`` word operations instead of a full dynamic program.
"""

from __future__ import annotations


def _trim_affixes(x: str, y: str) -> tuple[str, str]:
    """Strip the common prefix and suffix; ``ed`` is invariant under both."""
    len_x, len_y = len(x), len(y)
    limit = min(len_x, len_y)
    prefix = 0
    while prefix < limit and x[prefix] == y[prefix]:
        prefix += 1
    suffix = 0
    limit -= prefix
    while suffix < limit and x[len_x - 1 - suffix] == y[len_y - 1 - suffix]:
        suffix += 1
    return x[prefix : len_x - suffix], y[prefix : len_y - suffix]


def edit_distance(x: str, y: str) -> int:
    """Exact Levenshtein distance (full dynamic program)."""
    if x == y:
        return 0
    x, y = _trim_affixes(x, y)
    if not x:
        return len(y)
    if not y:
        return len(x)
    # One reused row: ``row[j]`` holds the previous row's value until the
    # sweep overwrites it; ``diagonal`` carries the value the overwrite
    # destroyed (the previous row's ``j - 1`` cell).  A matching character
    # pair always copies the diagonal (adjacent DP cells differ by at most
    # one, so the diagonal can never lose).
    row = list(range(len(y) + 1))
    for i, cx in enumerate(x, start=1):
        diagonal = row[0]
        row[0] = i
        for j, cy in enumerate(y, start=1):
            above = row[j]
            row[j] = diagonal if cx == cy else 1 + min(above, row[j - 1], diagonal)
            diagonal = above
    return row[-1]


class QueryMatcher:
    """Bit-parallel edit distances from one fixed query to many texts.

    Myers' algorithm [Myers 1999] encodes a column of the dynamic program in
    two machine words (the +1 and -1 deltas); one pass over a text costs a
    dozen word operations per character.  The per-character query masks are
    built once, so verifying a candidate batch against one query is far
    cheaper than running the banded DP per pair.  Queries longer than 64
    characters fall back to the banded DP (multi-word Myers is not worth the
    complexity at this repository's string lengths).
    """

    _WORD = 64

    def __init__(self, query: str):
        self._query = query
        self._m = len(query)
        self._bit_parallel = 0 < self._m <= self._WORD
        if self._bit_parallel:
            masks: dict[str, int] = {}
            for index, char in enumerate(query):
                masks[char] = masks.get(char, 0) | (1 << index)
            self._masks = masks
            self._high = 1 << (self._m - 1)
            self._full = (1 << self._m) - 1

    def _scan(self, text: str, tau: int | None) -> int | None:
        """Myers score of one text; ``None`` when the early exit proves it
        must exceed ``tau`` (the score drops by at most one per remaining
        character).  ``tau=None`` disables the exit."""
        masks = self._masks
        high = self._high
        full = self._full
        pv = full
        mv = 0
        score = self._m
        remaining = len(text)
        for char in text:
            eq = masks.get(char, 0)
            xv = eq | mv
            xh = (((eq & pv) + pv) ^ pv) | eq
            ph = mv | (~(xh | pv) & full)
            mh = pv & xh
            if ph & high:
                score += 1
            elif mh & high:
                score -= 1
            if tau is not None:
                remaining -= 1
                if score - remaining > tau:
                    return None
            ph = ((ph << 1) | 1) & full
            mh = (mh << 1) & full
            pv = (mh | (~(xv | ph) & full)) & full
            mv = ph & xv
        return score

    def distance(self, text: str) -> int:
        """Exact ``ed(query, text)``."""
        if not self._bit_parallel:
            return edit_distance(self._query, text)
        if not text:
            return self._m
        return self._scan(text, None)

    def within(self, text: str, tau: int) -> bool:
        """Whether ``ed(query, text) <= tau``; exits early when hopeless."""
        if tau < 0:
            return False
        if abs(self._m - len(text)) > tau:
            return False
        if not self._bit_parallel:
            return edit_distance_within(self._query, text, tau)
        if not text:
            return self._m <= tau
        score = self._scan(text, tau)
        return score is not None and score <= tau


def edit_distance_within(x: str, y: str, tau: int) -> bool:
    """Whether ``ed(x, y) <= tau`` using the banded dynamic program."""
    if tau < 0:
        return False
    if x == y:
        return True
    len_x, len_y = len(x), len(y)
    if abs(len_x - len_y) > tau:
        return False
    x, y = _trim_affixes(x, y)
    len_x, len_y = len(x), len(y)
    if len_x == 0 or len_y == 0:
        return max(len_x, len_y) <= tau
    # Ensure x is the shorter string so the band is over the longer one.
    if len_x > len_y:
        x, y = y, x
        len_x, len_y = len_y, len_x
    big = tau + 1
    # Two reused rows.  Cells outside the band must read as ``big``; the
    # band's left edge only moves right, so the cell just left of the band is
    # reset each row, and a sentinel just right of the band covers the next
    # row's widest read (its right edge advances by at most one).
    previous = [j if j <= tau else big for j in range(len_y + 1)]
    current = [big] * (len_y + 1)
    for i in range(1, len_x + 1):
        low = max(1, i - tau)
        high = min(len_y, i + tau)
        current[low - 1] = i if low == 1 and i <= tau else big
        cx = x[i - 1]
        row_min = big
        for j in range(low, high + 1):
            value = (
                previous[j - 1]
                if cx == y[j - 1]
                else 1 + min(previous[j], current[j - 1], previous[j - 1])
            )
            current[j] = value
            if value < row_min:
                row_min = value
        if row_min > tau:
            return False
        if high + 1 <= len_y:
            current[high + 1] = big
        previous, current = current, previous
    return previous[len_y] <= tau
