"""repro -- a reproduction of "Pigeonring: A Principle for Faster Thresholded Similarity Search".

The package is organised around the paper's structure:

* :mod:`repro.core` -- the pigeonring principle itself (chains, theorems,
  threshold allocation, the universal filtering framework, candidate
  generation, and the analytical filtering-power model).
* :mod:`repro.hamming` -- Hamming distance search: the GPH baseline and the
  pigeonring-accelerated searcher.
* :mod:`repro.sets` -- set similarity search: pkwise, AdaptSearch and
  PartAlloc baselines plus the pigeonring-accelerated searcher.
* :mod:`repro.strings` -- string edit distance search: the Pivotal baseline
  and the pigeonring-accelerated searcher.
* :mod:`repro.graphs` -- graph edit distance search: the Pars baseline and the
  pigeonring-accelerated searcher.
* :mod:`repro.datasets` -- synthetic dataset generators standing in for the
  paper's eight real datasets.
* :mod:`repro.experiments` -- harness code regenerating every figure of the
  paper's evaluation section.
* :mod:`repro.engine` -- the unified multi-domain query engine: backend
  registry, persistent index containers, batched/parallel serving with an
  LRU result cache, and top-k search (see ENGINE.md).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
