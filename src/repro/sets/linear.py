"""Brute-force set similarity search (ground truth for tests)."""

from __future__ import annotations

from typing import Sequence

from repro.common.stats import SearchResult, Timer
from repro.sets.dataset import SetDataset
from repro.sets.verify import merge_overlap


class LinearSetSearcher:
    """Evaluate the predicate against every record."""

    def __init__(self, dataset: SetDataset, predicate):
        self._dataset = dataset
        self._predicate = predicate

    @property
    def dataset(self) -> SetDataset:
        return self._dataset

    def search(self, query: Sequence[int]) -> SearchResult:
        timer = Timer()
        encoded_query = self._dataset.encode_query(query)
        results = []
        for obj_id in range(len(self._dataset)):
            record = self._dataset.record(obj_id)
            required = self._predicate.pair_required_overlap(len(record), len(encoded_query))
            if merge_overlap(record, encoded_query) >= required:
                results.append(obj_id)
        elapsed = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=list(range(len(self._dataset))),
            candidate_time=0.0,
            verify_time=elapsed,
        )
