"""Columnar (batch-at-a-time) pigeonring set similarity search.

:class:`ColumnarSetSearcher` answers exactly the same queries as
:class:`repro.sets.ring.RingSetSearcher` -- same prefix postings, same
per-class counters, same prefix-viable chain condition, same suffix-box
fallback -- but evaluates every stage over flat numpy arrays instead of one
Python object at a time:

* the dataset is read in CSR form (one flat token array plus offsets, from
  :meth:`repro.sets.dataset.SetDataset.columns`);
* the prefix inverted index is CSR postings probed with one
  ``searchsorted`` per query prefix, and the per-(object, class) counters
  come out of a single grouped ``bincount`` over the gathered postings;
* the length filter, the chain condition and the suffix-box bound are
  evaluated over the whole surviving candidate array at once; and
* verification counts overlaps for *all* candidates with one
  ``searchsorted`` sweep over the gathered CSR rows -- no per-pair merge.

The candidate set is identical to the scalar searcher's; only the emission
order changes (ascending by id, the order the sharded and mutated engines
already normalise to).  Scratch buffers are reused across the queries of a
batch (thread-local, so the engine's pooled ``search_batch`` stays safe).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.scratch import (
    PerThread,
    Scratch,
    csr_gather_indices,
    grouped_counts,
    segment_sums,
    sorted_member_mask,
)
from repro.common.obs import span
from repro.common.stats import SearchResult, Timer
from repro.sets.dataset import SetDataset
from repro.sets.ring import RingSetSearcher


class ColumnarSetSearcher(RingSetSearcher):
    """Array-kernel pigeonring searcher for set similarity.

    Args:
        dataset: the indexed collection.
        predicate: an overlap or Jaccard predicate (as for the Ring searcher).
        chain_length: chain length ``l``; the paper finds ``l = 2`` best.
    """

    def __init__(self, dataset: SetDataset, predicate, chain_length: int = 2):
        super().__init__(dataset, predicate, chain_length=chain_length)
        columns = dataset.columns()
        self._col_tokens = columns.tokens
        self._col_offsets = columns.offsets
        self._col_sizes = columns.sizes
        self._build_columns()
        self._scratch: PerThread = PerThread(Scratch)

    def _build_columns(self) -> None:
        """Convert the dict postings built by the scalar base into CSR."""
        items = sorted(self._postings.items())
        keys = np.asarray([token for token, _ in items], dtype=np.int64)
        offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum([len(postings) for _, postings in items], out=offsets[1:])
        objs = np.fromiter(
            (obj_id for _, postings in items for obj_id in postings),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        self._post_keys = keys
        self._post_offsets = offsets
        self._post_objs = objs
        # The dict postings were only scaffolding for the CSR conversion;
        # keeping them would double the index memory of the served path.
        del self._postings
        self._col_always = np.asarray(sorted(self._always_candidates), dtype=np.int64)
        self._col_prefix_lengths = np.asarray(self._prefix_lengths, dtype=np.int64)
        encoded = self._dataset.encoded
        self._col_last_prefix = np.asarray(
            [
                encoded[obj_id][length - 1] if length else -1
                for obj_id, length in enumerate(self._prefix_lengths)
            ],
            dtype=np.int64,
        )

    # -- candidate generation ----------------------------------------------

    def candidates(self, query: Sequence[int]) -> list[int]:
        encoded_query = self._dataset.encode_query(query)
        cands, _generated = self._candidates_columnar(encoded_query)
        return cands.tolist()

    def _candidates_columnar(self, encoded_query: list[int]) -> tuple[np.ndarray, int]:
        """Candidate ids (ascending) plus the pre-chain candidate count."""
        plan = self._query_plan(encoded_query)
        if plan is None:
            return np.empty(0, dtype=np.int64), 0
        prefix_length, _classes, _counts, thresholds, fallback = plan
        low, high = self._predicate.length_bounds(len(encoded_query))
        scratch = self._scratch.get()

        always = self._col_always
        if always.size:
            always_sizes = self._col_sizes[always]
            always = always[(always_sizes >= low) & (always_sizes <= high)]

        # Step 1: probe the CSR postings with the query prefix and gather the
        # (object, class) pairs that survive the length filter.
        prefix_tokens = np.asarray(encoded_query[:prefix_length], dtype=np.int64)
        if prefix_tokens.size and self._post_keys.size:
            slots = np.searchsorted(self._post_keys, prefix_tokens)
            in_range = slots < self._post_keys.size
            slots = slots[in_range]
            tokens = prefix_tokens[in_range]
            hits = self._post_keys[slots] == tokens
            slots = slots[hits]
            tokens = tokens[hits]
            starts = self._post_offsets[slots]
            ends = self._post_offsets[slots + 1]
            gather = csr_gather_indices(starts, ends, scratch)
            objs = self._post_objs[gather]
            classes = np.repeat(tokens % self._num_classes + 1, ends - starts)
            sizes = self._col_sizes[objs]
            keep = (sizes >= low) & (sizes <= high)
            objs = objs[keep]
            classes = classes[keep]
        else:
            objs = np.empty(0, dtype=np.int64)
            classes = objs

        if fallback:
            # Degenerate query: plain prefix filter (share one prefix token).
            touched = np.unique(objs)
            generated = int(touched.size + always.size)
            return _sorted_union(always, touched), generated

        # Step 2: per-(object, class) counters for every touched object, then
        # the chain condition over the whole candidate array at once.
        touched, counters = grouped_counts(objs, classes, self._m)
        generated = int(touched.size + always.size)
        if touched.size:
            passing = self._chain_check_columnar(
                touched, counters, thresholds, encoded_query, prefix_length
            )
            touched = touched[passing]
        return _sorted_union(always, touched), generated

    def _chain_check_columnar(
        self,
        touched: np.ndarray,
        counters: np.ndarray,
        thresholds: list[int],
        encoded_query: list[int],
        prefix_length: int,
    ) -> np.ndarray:
        """Vectorised :meth:`RingSetSearcher._passes_chain_check`.

        ``counters`` is the ``(num_touched, m)`` per-class counter matrix;
        the return value is a boolean mask over ``touched``.
        """
        m = self._m
        length = self._chain_length
        thresholds_arr = np.asarray(thresholds, dtype=np.int64)
        passed = np.zeros(touched.size, dtype=bool)
        witness = np.zeros(touched.size, dtype=bool)
        for start in range(1, self._num_classes + 1):
            alive = counters[:, start] >= thresholds_arr[start]
            witness |= alive
            if not alive.any():
                continue
            alive = alive.copy()
            running = np.zeros(touched.size, dtype=np.int64)
            bound = 0
            for offset in range(length):
                box = (start + offset) % m
                if box == 0:
                    # Suffix box reached: every still-alive candidate passes
                    # (the paper verifies directly instead of computing the
                    # suffix overlap).
                    break
                running += counters[:, box]
                bound += int(thresholds_arr[box])
                alive &= running >= bound - offset
                if not alive.any():
                    break
            passed |= alive
        if length == 1 or not witness.any():
            # Every result has a witness class; with l = 1 the witness itself
            # is the complete pkwise condition.
            return passed
        remaining = np.flatnonzero(witness & ~passed)
        if not remaining.size:
            return passed
        # A prefix-viable chain might still start at the suffix box b_0:
        # bound b_0 from above without touching the suffix (see the scalar
        # searcher for the derivation) and keep candidates conservatively.
        query_last_prefix = encoded_query[prefix_length - 1] if prefix_length else -1
        query_suffix_size = len(encoded_query) - prefix_length
        ids = touched[remaining]
        data_prefix = self._col_prefix_lengths[ids]
        suffix_bound = np.where(
            self._col_last_prefix[ids] <= query_last_prefix,
            self._col_sizes[ids] - data_prefix,
            query_suffix_size,
        )
        shared_total = counters[remaining, 1:].sum(axis=1)
        np.minimum(suffix_bound, len(encoded_query) - shared_total, out=suffix_bound)
        passed[remaining] |= suffix_bound >= thresholds_arr[0]
        return passed

    # -- search -------------------------------------------------------------

    def search(self, query: Sequence[int]) -> SearchResult:
        timer = Timer()
        with span("candidates"):
            encoded_query = self._dataset.encode_query(query)
            cands, generated = self._candidates_columnar(encoded_query)
        candidate_time = timer.restart()
        with span("verify"):
            query_arr = np.asarray(encoded_query, dtype=np.int64)
            if cands.size:
                starts = self._col_offsets[cands]
                ends = self._col_offsets[cands + 1]
                gather = csr_gather_indices(starts, ends, self._scratch.get())
                flat = self._col_tokens[gather]
                hits = sorted_member_mask(query_arr, flat)
                boundaries = np.zeros(cands.size + 1, dtype=np.int64)
                np.cumsum(ends - starts, out=boundaries[1:])
                overlaps = segment_sums(hits, boundaries)
                required = self._predicate.pair_required_overlap_array(
                    self._col_sizes[cands], len(encoded_query)
                )
                results = cands[overlaps >= required]
            else:
                results = cands
        verify_time = timer.elapsed()
        return SearchResult(
            results=results.tolist(),
            candidates=cands.tolist(),
            candidate_time=candidate_time,
            verify_time=verify_time,
            extra={"generated": generated, "verified": int(cands.size)},
        )


def _sorted_union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ascending union of two disjoint id arrays (always-candidates are
    never indexed, so probe hits cannot repeat them)."""
    if not a.size:
        return b
    if not b.size:
        return a
    return np.sort(np.concatenate([a, b]))
