"""Pigeonring-accelerated set similarity search (Section 6.2).

The searcher follows the paper's pkwise-based filtering instance:

* **Extract** -- each record is split into its pkwise prefix and suffix; the
  prefix is further split into ``m - 1`` token classes.
* **Box** -- ``b_0`` is the suffix overlap (never computed: reaching it makes
  the object a candidate immediately, as in the paper), ``b_k`` for
  ``k >= 1`` is the class-``k`` prefix/prefix overlap, maintained as a counter
  by the inverted-index probe.
* **Bound** -- ``D(tau) = tau`` with the per-pair overlap threshold; the
  allocation ``T = (|q| - p_q + 1, t_1, ..., t_{m-1})`` with
  ``t_k = min(k, cnt(q, p_q, k) + 1)`` sums to ``tau + m - 1`` and Theorem 7
  (``>=`` direction) provides the chain condition.

``chain_length=1`` reproduces the pkwise baseline exactly.

Edge cases that the synthetic workloads do hit are handled conservatively to
preserve exactness:

* a data record whose full token sequence cannot cover the k-wise budget
  (tiny records at low thresholds) is kept in an *always-candidate* list and
  only length-filtered;
* a query with the same deficiency falls back to the plain prefix filter
  (share one prefix token) and skips the chain check for that query.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.common.stats import SearchResult, Timer
from repro.sets.dataset import SetDataset
from repro.sets.prefix import class_counts, pkwise_prefix_length
from repro.sets.verify import overlap_at_least


class RingSetSearcher:
    """Pigeonring searcher for set similarity.

    Args:
        dataset: the indexed collection.
        predicate: an :class:`repro.sets.similarity.OverlapPredicate` or
            :class:`repro.sets.similarity.JaccardPredicate`.
        chain_length: chain length ``l``; the paper finds ``l = 2`` best.
    """

    def __init__(self, dataset: SetDataset, predicate, chain_length: int = 2):
        if chain_length < 1:
            raise ValueError("chain_length must be at least 1")
        self._dataset = dataset
        self._predicate = predicate
        self._num_classes = dataset.num_classes
        self._m = self._num_classes + 1
        self._chain_length = min(chain_length, self._m)
        self._build_index()

    @property
    def chain_length(self) -> int:
        return self._chain_length

    @property
    def dataset(self) -> SetDataset:
        return self._dataset

    def _build_index(self) -> None:
        order = self._dataset.order
        self._postings: dict[int, list[int]] = defaultdict(list)
        self._always_candidates: list[int] = []
        self._prefix_lengths: list[int] = []
        for obj_id in range(len(self._dataset)):
            record = self._dataset.record(obj_id)
            if not record:
                self._always_candidates.append(obj_id)
                self._prefix_lengths.append(0)
                continue
            required = self._predicate.index_required_overlap(len(record))
            if required > len(record):
                # The record can never satisfy the predicate; skip entirely.
                self._prefix_lengths.append(0)
                continue
            classes = order.classes_of(record)
            prefix_length = pkwise_prefix_length(classes, self._num_classes, required)
            budget = sum(
                max(0, count - k + 1)
                for k, count in enumerate(
                    class_counts(classes, len(record), self._num_classes)
                )
                if k >= 1
            )
            if budget < len(record) - required + 1:
                # The k-wise budget cannot be covered even by the full record:
                # keep the record as an always-candidate for exactness.
                self._always_candidates.append(obj_id)
                self._prefix_lengths.append(len(record))
                continue
            self._prefix_lengths.append(prefix_length)
            for token in record[:prefix_length]:
                self._postings[token].append(obj_id)

    def _query_plan(self, encoded_query: list[int]):
        """Compute the query prefix, class counts and threshold allocation."""
        order = self._dataset.order
        required = self._predicate.query_required_overlap(len(encoded_query))
        classes = order.classes_of(encoded_query)
        target = len(encoded_query) - required + 1
        if target <= 0:
            return None
        budget = sum(
            max(0, count - k + 1)
            for k, count in enumerate(
                class_counts(classes, len(encoded_query), self._num_classes)
            )
            if k >= 1
        )
        fallback = budget < target
        prefix_length = pkwise_prefix_length(classes, self._num_classes, required)
        counts = class_counts(classes, prefix_length, self._num_classes)
        thresholds = [len(encoded_query) - prefix_length + 1]
        for k in range(1, self._num_classes + 1):
            thresholds.append(k if counts[k] >= k else counts[k] + 1)
        return prefix_length, classes, counts, thresholds, fallback

    def candidates(self, query: Sequence[int]) -> list[int]:
        encoded_query = self._dataset.encode_query(query)
        return self._candidates_encoded(encoded_query)

    def _candidates_encoded(self, encoded_query: list[int]) -> list[int]:
        plan = self._query_plan(encoded_query)
        if plan is None:
            return []
        prefix_length, classes, _counts, thresholds, fallback = plan
        low, high = self._predicate.length_bounds(len(encoded_query))
        order = self._dataset.order

        # First step: probe the prefix inverted index with the query's prefix
        # tokens and maintain per-(object, class) shared counters.
        shared: dict[int, list[int]] = {}
        for position in range(prefix_length):
            token = encoded_query[position]
            postings = self._postings.get(token)
            if not postings:
                continue
            token_class = order.token_class(token)
            for obj_id in postings:
                size = self._dataset.size(obj_id)
                if size < low or size > high:
                    continue
                counters = shared.get(obj_id)
                if counters is None:
                    counters = [0] * (self._num_classes + 1)
                    shared[obj_id] = counters
                counters[token_class] += 1

        ordered: list[int] = []
        seen: set[int] = set()
        for obj_id in sorted(self._always_candidates):
            size = self._dataset.size(obj_id)
            if low <= size <= high and obj_id not in seen:
                seen.add(obj_id)
                ordered.append(obj_id)

        if fallback:
            # Degenerate query: plain prefix filter (share one prefix token).
            for obj_id in shared:
                if obj_id not in seen:
                    seen.add(obj_id)
                    ordered.append(obj_id)
            return ordered

        length = self._chain_length
        query_last_prefix = encoded_query[prefix_length - 1] if prefix_length else -1
        query_suffix_size = len(encoded_query) - prefix_length
        for obj_id, counters in shared.items():
            if obj_id in seen:
                continue
            if self._passes_chain_check(
                obj_id,
                counters,
                thresholds,
                length,
                query_last_prefix,
                query_suffix_size,
                len(encoded_query),
            ):
                seen.add(obj_id)
                ordered.append(obj_id)
        return ordered

    def _passes_chain_check(
        self,
        obj_id: int,
        counters: list[int],
        thresholds: list[int],
        length: int,
        query_last_prefix: int,
        query_suffix_size: int,
        query_size: int,
    ) -> bool:
        """Second step: a prefix-viable chain (>= direction, integer reduction).

        Boxes are ``b_0`` (suffix, never computed -- reaching it passes the
        object, as in the paper) and ``b_k = counters[k]`` for the classes.
        Chains starting at witness class boxes are checked exactly; a chain
        that would start at the suffix box cannot be evaluated cheaply, so a
        cheap upper bound on ``b_0`` decides whether it might exist -- if so
        the object is conservatively kept, which preserves exactness.
        """
        m = self._m
        has_class_witness = False
        for start_class in range(1, self._num_classes + 1):
            if counters[start_class] < thresholds[start_class]:
                continue
            has_class_witness = True
            running = 0
            passed = True
            for offset in range(length):
                box = (start_class + offset) % m
                if box == 0:
                    # Suffix box: the paper verifies directly instead of
                    # computing the expensive suffix overlap.
                    return True
                running += counters[box]
                bound = (
                    sum(thresholds[(start_class + j) % m] for j in range(offset + 1))
                    - offset
                )
                if running < bound:
                    passed = False
                    break
            if passed:
                return True
        if not has_class_witness or length == 1:
            # Every result has a witness class (one-sided k-wise argument), so
            # objects without one cannot be results; with l = 1 the class
            # witness itself is the complete pkwise condition.
            return False
        # A prefix-viable chain might still start at the suffix box b_0.  Its
        # first prefix needs b_0 >= t_0; bound b_0 from above without touching
        # the suffix: it cannot exceed the data suffix size (when the data
        # prefix ends first), the query suffix size (otherwise), or the query
        # tokens not already matched by prefix classes.
        record = self._dataset.record(obj_id)
        data_prefix_length = self._prefix_lengths[obj_id]
        data_last_prefix = record[data_prefix_length - 1] if data_prefix_length else -1
        if data_last_prefix <= query_last_prefix:
            suffix_bound = len(record) - data_prefix_length
        else:
            suffix_bound = query_suffix_size
        suffix_bound = min(suffix_bound, query_size - sum(counters[1:]))
        return suffix_bound >= thresholds[0]

    def search(self, query: Sequence[int]) -> SearchResult:
        timer = Timer()
        encoded_query = self._dataset.encode_query(query)
        candidates = self._candidates_encoded(encoded_query)
        candidate_time = timer.restart()
        results = []
        for obj_id in candidates:
            record = self._dataset.record(obj_id)
            required = self._predicate.pair_required_overlap(
                len(record), len(encoded_query)
            )
            if overlap_at_least(record, encoded_query, required):
                results.append(obj_id)
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
