"""Set similarity measures and threshold arithmetic.

The searchers are written against *overlap* thresholds.  A Jaccard constraint
is converted to an equivalent overlap constraint per pair:

    ``J(x, q) >= tau  <=>  |x & q| >= tau / (1 + tau) * (|x| + |q|)``

and to the looser, single-sided bounds used at index / query time:

    required overlap >= ceil(tau * |x|)  and  >= ceil(tau * |q|),

together with the length filter ``tau * |q| <= |x| <= |q| / tau``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def overlap(x: Sequence[int], q: Sequence[int]) -> int:
    """``|x & q|`` for two token collections (duplicates ignored)."""
    return len(set(x) & set(q))


def jaccard(x: Sequence[int], q: Sequence[int]) -> float:
    """Jaccard similarity of two token collections."""
    sx, sq = set(x), set(q)
    union = len(sx | sq)
    if union == 0:
        return 1.0
    return len(sx & sq) / union


def _ceil(value: float) -> int:
    """Ceiling that is robust to floating point just-below-integer values."""
    return int(math.ceil(value - 1e-9))


@dataclass(frozen=True)
class OverlapPredicate:
    """Selection predicate ``|x & q| >= tau`` with a fixed integer threshold."""

    tau: int

    def __post_init__(self) -> None:
        if self.tau < 1:
            raise ValueError("the overlap threshold must be at least 1")

    def similarity(self, x: Sequence[int], q: Sequence[int]) -> float:
        return float(overlap(x, q))

    def is_result(self, x: Sequence[int], q: Sequence[int]) -> bool:
        return overlap(x, q) >= self.tau

    def pair_required_overlap(self, len_x: int, len_q: int) -> int:
        """Required overlap for a specific pair of set sizes."""
        return self.tau

    def pair_required_overlap_array(self, len_x: np.ndarray, len_q: int) -> np.ndarray:
        """Vectorised :meth:`pair_required_overlap` over data-set sizes."""
        return np.full(len_x.shape, self.tau, dtype=np.int64)

    def index_required_overlap(self, len_x: int) -> int:
        """Smallest required overlap over all admissible partners of a data set."""
        return self.tau

    def query_required_overlap(self, len_q: int) -> int:
        """Smallest required overlap over all admissible partners of a query set."""
        return self.tau

    def length_bounds(self, len_q: int) -> tuple[int, int]:
        """Sizes a data set must have to possibly satisfy the predicate."""
        return self.tau, 10**9


@dataclass(frozen=True)
class JaccardPredicate:
    """Selection predicate ``J(x, q) >= tau`` for ``tau`` in (0, 1]."""

    tau: float

    def __post_init__(self) -> None:
        if not 0.0 < self.tau <= 1.0:
            raise ValueError("the Jaccard threshold must be in (0, 1]")

    def similarity(self, x: Sequence[int], q: Sequence[int]) -> float:
        return jaccard(x, q)

    def is_result(self, x: Sequence[int], q: Sequence[int]) -> bool:
        return jaccard(x, q) >= self.tau - 1e-12

    def pair_required_overlap(self, len_x: int, len_q: int) -> int:
        """Equivalent overlap threshold for the given pair of set sizes."""
        return _ceil(self.tau / (1.0 + self.tau) * (len_x + len_q))

    def pair_required_overlap_array(self, len_x: np.ndarray, len_q: int) -> np.ndarray:
        """Vectorised :meth:`pair_required_overlap` over data-set sizes.

        Evaluates the same float64 expression in the same association order
        as the scalar method, so the two agree bit for bit.
        """
        ratio = self.tau / (1.0 + self.tau)
        return np.ceil(ratio * (len_x + len_q) - 1e-9).astype(np.int64)

    def index_required_overlap(self, len_x: int) -> int:
        """Loosest equivalent overlap over admissible query sizes (``|q| = tau |x|``)."""
        return max(1, _ceil(self.tau * len_x))

    def query_required_overlap(self, len_q: int) -> int:
        """Loosest equivalent overlap over admissible data sizes (``|x| = tau |q|``)."""
        return max(1, _ceil(self.tau * len_q))

    def length_bounds(self, len_q: int) -> tuple[int, int]:
        """The length filter: ``tau |q| <= |x| <= |q| / tau``."""
        lower = _ceil(self.tau * len_q)
        upper = int(math.floor(len_q / self.tau + 1e-9))
        return lower, upper
