"""Set similarity search (Problem 3, Section 6.2).

The paper's pigeonring searcher builds on the pkwise algorithm [103]: tokens
are sorted by a global frequency order, the token universe is partitioned into
``m - 1`` classes, and an object's prefix is extended until the k-wise
signature condition covers the required overlap.  The boxes are the per-class
prefix overlaps plus one suffix box; thresholds use variable allocation with
integer reduction in the ``>=`` direction (Theorem 7), and the chain check is
evaluated from the per-class overlap counters that the inverted index already
maintains.

Public API:

* :class:`repro.sets.dataset.SetDataset` -- records encoded in the global
  token order with class assignments.
* :class:`repro.sets.similarity.OverlapPredicate` /
  :class:`repro.sets.similarity.JaccardPredicate` -- selection predicates.
* :class:`repro.sets.ring.RingSetSearcher` -- the pigeonring searcher
  (``chain_length=1`` is exactly pkwise).
* :class:`repro.sets.columnar.ColumnarSetSearcher` -- the same filter as
  batch-at-a-time numpy kernels over CSR columns (the engine's served hot
  path; byte-identical results).
* :class:`repro.sets.pkwise.PkwiseSearcher` -- the pkwise baseline.
* :class:`repro.sets.adaptsearch.AdaptSearchSearcher` -- prefix-filter
  baseline (AllPairs / PPJoin search version).
* :class:`repro.sets.partalloc.PartAllocSearcher` -- partition-allocation
  baseline.
* :class:`repro.sets.linear.LinearSetSearcher` -- brute force ground truth.
"""

from repro.sets.similarity import JaccardPredicate, OverlapPredicate, jaccard, overlap
from repro.sets.tokens import TokenOrder
from repro.sets.dataset import SetDataset
from repro.sets.linear import LinearSetSearcher
from repro.sets.pkwise import PkwiseSearcher
from repro.sets.ring import RingSetSearcher
from repro.sets.columnar import ColumnarSetSearcher
from repro.sets.adaptsearch import AdaptSearchSearcher
from repro.sets.partalloc import PartAllocSearcher

__all__ = [
    "JaccardPredicate",
    "OverlapPredicate",
    "jaccard",
    "overlap",
    "TokenOrder",
    "SetDataset",
    "LinearSetSearcher",
    "PkwiseSearcher",
    "RingSetSearcher",
    "ColumnarSetSearcher",
    "AdaptSearchSearcher",
    "PartAllocSearcher",
]
