"""Global token ordering and token classes.

Prefix-filter methods sort the tokens of every record by a *global order*,
conventionally increasing document frequency, so prefixes consist of the
rarest (most selective) tokens.  pkwise additionally partitions the token
universe into ``m - 1`` disjoint *classes*; the class of a token is a property
of the universe, not of a record.

Tokens are re-encoded as their rank in the global order (rank 0 = rarest), so
records become sorted integer arrays and all downstream computations work on
ranks.  Classes are assigned round-robin along the global order
(``class = rank % (m - 1) + 1``), which spreads every frequency band evenly
over the classes; the pkwise paper leaves the class construction free and this
deterministic choice keeps prefixes of the different classes comparably
selective.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


class TokenOrder:
    """A global token order learned from a record collection.

    Args:
        records: the collection used to estimate document frequencies.
        num_classes: number of token classes (``m - 1`` in the paper); ``0``
            disables class assignment (used by the non-pkwise baselines).
    """

    def __init__(self, records: Iterable[Sequence[int]], num_classes: int = 0):
        if num_classes < 0:
            raise ValueError("num_classes must be non-negative")
        frequency: Counter = Counter()
        for record in records:
            frequency.update(set(record))
        # Rarest first; ties broken by token id for determinism.
        ordered = sorted(frequency, key=lambda token: (frequency[token], token))
        self._rank = {token: rank for rank, token in enumerate(ordered)}
        self._tokens = ordered
        self._num_classes = num_classes

    @property
    def universe_size(self) -> int:
        return len(self._tokens)

    @property
    def num_classes(self) -> int:
        return self._num_classes

    def rank(self, token: int) -> int:
        """Rank of a token; unseen tokens rank after every known token."""
        rank = self._rank.get(token)
        if rank is None:
            # Unseen tokens are rarer than anything in the collection; give
            # them unique ranks beyond the known universe so ordering stays a
            # total order.  They can never match a data token.
            return len(self._tokens) + hash(token) % (1 << 30)
        return rank

    def encode(self, record: Sequence[int]) -> list[int]:
        """Map a record to its sorted list of distinct token ranks."""
        return sorted({self.rank(token) for token in record})

    def token_class(self, rank: int) -> int:
        """Class (1-based) of the token with the given rank."""
        if self._num_classes <= 0:
            raise ValueError("this TokenOrder was built without classes")
        return rank % self._num_classes + 1

    def classes_of(self, ranks: Sequence[int]) -> list[int]:
        """Classes of a sequence of ranks."""
        return [self.token_class(rank) for rank in ranks]
