"""Prefix-filter baseline (the paper's AdaptSearch configuration).

The paper runs AdaptSearch [100] with prefix extension disabled, which makes
it behave like the search versions of AllPairs [8] / PPJoin [115]: index the
standard ``|x| - t + 1`` prefixes of the data records, probe with the query's
standard prefix, apply the length filter, and verify every record that shares
at least one prefix token.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.common.stats import SearchResult, Timer
from repro.sets.dataset import SetDataset
from repro.sets.prefix import standard_prefix_length
from repro.sets.verify import overlap_at_least


class AdaptSearchSearcher:
    """Plain prefix-filter searcher (AllPairs / PPJoin search version)."""

    def __init__(self, dataset: SetDataset, predicate):
        self._dataset = dataset
        self._predicate = predicate
        self._postings: dict[int, list[int]] = defaultdict(list)
        for obj_id in range(len(dataset)):
            record = dataset.record(obj_id)
            if not record:
                continue
            required = predicate.index_required_overlap(len(record))
            prefix_length = standard_prefix_length(len(record), required)
            for token in record[:prefix_length]:
                self._postings[token].append(obj_id)

    @property
    def dataset(self) -> SetDataset:
        return self._dataset

    def candidates(self, query: Sequence[int]) -> list[int]:
        encoded_query = self._dataset.encode_query(query)
        return self._candidates_encoded(encoded_query)

    def _candidates_encoded(self, encoded_query: list[int]) -> list[int]:
        if not encoded_query:
            return []
        required = self._predicate.query_required_overlap(len(encoded_query))
        if required > len(encoded_query):
            return []
        prefix_length = standard_prefix_length(len(encoded_query), required)
        low, high = self._predicate.length_bounds(len(encoded_query))
        seen: set[int] = set()
        ordered: list[int] = []
        for token in encoded_query[:prefix_length]:
            for obj_id in self._postings.get(token, ()):  # pragma: no branch
                if obj_id in seen:
                    continue
                size = self._dataset.size(obj_id)
                if low <= size <= high:
                    seen.add(obj_id)
                    ordered.append(obj_id)
        return ordered

    def search(self, query: Sequence[int]) -> SearchResult:
        timer = Timer()
        encoded_query = self._dataset.encode_query(query)
        candidates = self._candidates_encoded(encoded_query)
        candidate_time = timer.restart()
        results = []
        for obj_id in candidates:
            record = self._dataset.record(obj_id)
            required = self._predicate.pair_required_overlap(
                len(record), len(encoded_query)
            )
            if overlap_at_least(record, encoded_query, required):
                results.append(obj_id)
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
