"""Partition-allocation baseline (the paper's PartAlloc competitor).

PartAlloc [30] partitions the token universe, allocates per-partition overlap
thresholds, and generates candidates from partition-level matches.  The exact
join algorithm enumerates partition signatures with a cost model; for the
search setting reproduced here the same pigeonhole structure is kept but the
partition-level overlaps are counted directly from full-record posting lists:

* the universe is hashed into ``num_parts`` partitions;
* per-partition thresholds ``t_i >= 1`` with ``sum t_i = t + p - 1``
  (Theorem 5 in the ``>=`` direction) are allocated proportionally to the
  query's token mass per partition;
* an object is a candidate when some partition's overlap with the query
  reaches its threshold.

Counting partition overlaps requires walking the posting lists of *all* query
tokens (not only a prefix), which is what gives PartAlloc its characteristic
profile in the paper's Figure 10: few candidates, expensive filtering.  The
signature-enumeration machinery of the original join algorithm is not
reproduced; DESIGN.md records the substitution.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.common.stats import SearchResult, Timer
from repro.sets.dataset import SetDataset
from repro.sets.verify import overlap_at_least


class PartAllocSearcher:
    """Partition-based pigeonhole searcher with proportional threshold allocation."""

    def __init__(self, dataset: SetDataset, predicate, num_parts: int = 4):
        if num_parts < 1:
            raise ValueError("num_parts must be at least 1")
        self._dataset = dataset
        self._predicate = predicate
        self._num_parts = num_parts
        self._postings: dict[int, list[int]] = defaultdict(list)
        for obj_id in range(len(dataset)):
            for token in dataset.record(obj_id):
                self._postings[token].append(obj_id)

    @property
    def dataset(self) -> SetDataset:
        return self._dataset

    @property
    def num_parts(self) -> int:
        return self._num_parts

    def _part_of(self, token: int) -> int:
        return token % self._num_parts

    def _allocate(self, part_sizes: list[int], total: int) -> list[int]:
        """Allocate ``total`` threshold units (each >= 1) proportionally to part sizes."""
        p = self._num_parts
        thresholds = [1] * p
        remaining = total - p
        if remaining <= 0:
            return thresholds
        mass = sum(part_sizes)
        if mass == 0:
            thresholds[0] += remaining
            return thresholds
        allocated = 0
        for i in range(p):
            share = int(remaining * part_sizes[i] / mass)
            thresholds[i] += share
            allocated += share
        i = 0
        while allocated < remaining:
            if part_sizes[i % p] > 0:
                thresholds[i % p] += 1
                allocated += 1
            i += 1
        return thresholds

    def candidates(self, query: Sequence[int]) -> list[int]:
        encoded_query = self._dataset.encode_query(query)
        return self._candidates_encoded(encoded_query)

    def _candidates_encoded(self, encoded_query: list[int]) -> list[int]:
        if not encoded_query:
            return []
        required = self._predicate.query_required_overlap(len(encoded_query))
        if required > len(encoded_query):
            return []
        low, high = self._predicate.length_bounds(len(encoded_query))
        p = self._num_parts
        part_sizes = [0] * p
        for token in encoded_query:
            part_sizes[self._part_of(token)] += 1
        thresholds = self._allocate(part_sizes, required + p - 1)

        counters: dict[int, list[int]] = {}
        for token in encoded_query:
            part = self._part_of(token)
            for obj_id in self._postings.get(token, ()):  # pragma: no branch
                size = self._dataset.size(obj_id)
                if size < low or size > high:
                    continue
                counts = counters.get(obj_id)
                if counts is None:
                    counts = [0] * p
                    counters[obj_id] = counts
                counts[part] += 1

        ordered = [
            obj_id
            for obj_id, counts in counters.items()
            if any(counts[i] >= thresholds[i] for i in range(p))
        ]
        return ordered

    def search(self, query: Sequence[int]) -> SearchResult:
        timer = Timer()
        encoded_query = self._dataset.encode_query(query)
        candidates = self._candidates_encoded(encoded_query)
        candidate_time = timer.restart()
        results = []
        for obj_id in candidates:
            record = self._dataset.record(obj_id)
            required = self._predicate.pair_required_overlap(
                len(record), len(encoded_query)
            )
            if overlap_at_least(record, encoded_query, required):
                results.append(obj_id)
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
