"""Dataset container for set similarity search."""

from __future__ import annotations

from typing import Sequence

from repro.sets.tokens import TokenOrder


class SetDataset:
    """A collection of token sets encoded in a global frequency order.

    Args:
        records: raw records (iterables of hashable integer tokens).
        num_classes: number of token classes for the pkwise-family searchers
            (the paper's ``m - 1``; the default 4 matches the paper's
            ``m = 5``).
    """

    def __init__(self, records: Sequence[Sequence[int]], num_classes: int = 4):
        if not records:
            raise ValueError("the dataset needs at least one record")
        if num_classes < 1:
            raise ValueError("num_classes must be at least 1")
        self._raw = [list(record) for record in records]
        self._order = TokenOrder(self._raw, num_classes=num_classes)
        self._encoded = [self._order.encode(record) for record in self._raw]

    @property
    def raw_records(self) -> list[list[int]]:
        """The records as originally supplied (before rank encoding)."""
        return self._raw

    @property
    def order(self) -> TokenOrder:
        return self._order

    @property
    def num_classes(self) -> int:
        return self._order.num_classes

    @property
    def encoded(self) -> list[list[int]]:
        """Records as sorted rank arrays (in dataset order)."""
        return self._encoded

    def record(self, obj_id: int) -> list[int]:
        """The encoded record with the given id."""
        return self._encoded[obj_id]

    def size(self, obj_id: int) -> int:
        return len(self._encoded[obj_id])

    def encode_query(self, query: Sequence[int]) -> list[int]:
        """Encode a query with the dataset's global order."""
        return self._order.encode(query)

    def __len__(self) -> int:
        return len(self._encoded)
