"""Dataset container for set similarity search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sets.tokens import TokenOrder


@dataclass(frozen=True)
class SetColumns:
    """The CSR form of an encoded set collection.

    Attributes:
        tokens: every record's sorted token ranks, concatenated (int64).
        offsets: record ``i`` owns ``tokens[offsets[i]:offsets[i + 1]]``.
        sizes: ``offsets[i + 1] - offsets[i]``, materialised because the
            length filters index it with fancy candidate arrays.
    """

    tokens: np.ndarray
    offsets: np.ndarray
    sizes: np.ndarray


class SetDataset:
    """A collection of token sets encoded in a global frequency order.

    Args:
        records: raw records (iterables of hashable integer tokens).
        num_classes: number of token classes for the pkwise-family searchers
            (the paper's ``m - 1``; the default 4 matches the paper's
            ``m = 5``).
    """

    def __init__(self, records: Sequence[Sequence[int]], num_classes: int = 4):
        if not records:
            raise ValueError("the dataset needs at least one record")
        if num_classes < 1:
            raise ValueError("num_classes must be at least 1")
        self._raw = [list(record) for record in records]
        self._order = TokenOrder(self._raw, num_classes=num_classes)
        self._encoded = [self._order.encode(record) for record in self._raw]
        self._columns: SetColumns | None = None

    @property
    def raw_records(self) -> list[list[int]]:
        """The records as originally supplied (before rank encoding)."""
        return self._raw

    @property
    def order(self) -> TokenOrder:
        return self._order

    @property
    def num_classes(self) -> int:
        return self._order.num_classes

    @property
    def encoded(self) -> list[list[int]]:
        """Records as sorted rank arrays (in dataset order)."""
        return self._encoded

    def record(self, obj_id: int) -> list[int]:
        """The encoded record with the given id."""
        return self._encoded[obj_id]

    def size(self, obj_id: int) -> int:
        return len(self._encoded[obj_id])

    def encode_query(self, query: Sequence[int]) -> list[int]:
        """Encode a query with the dataset's global order."""
        return self._order.encode(query)

    def columns(self) -> SetColumns:
        """The records in CSR form (built lazily, cached on the dataset)."""
        if self._columns is None:
            sizes = np.asarray([len(record) for record in self._encoded], dtype=np.int64)
            offsets = np.zeros(len(self._encoded) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            tokens = np.fromiter(
                (token for record in self._encoded for token in record),
                dtype=np.int64,
                count=int(offsets[-1]),
            )
            self._columns = SetColumns(tokens=tokens, offsets=offsets, sizes=sizes)
        return self._columns

    def __len__(self) -> int:
        return len(self._encoded)
