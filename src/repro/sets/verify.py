"""Fast verification of set-similarity candidates.

Candidates are verified by merging the two sorted rank arrays.  The merge
stops early as soon as the remaining tokens of either record cannot lift the
overlap to the required threshold, the "fast verification" of [60] that the
paper equips every compared algorithm with.
"""

from __future__ import annotations

from typing import Sequence


def merge_overlap(x: Sequence[int], q: Sequence[int]) -> int:
    """Exact overlap of two sorted rank arrays."""
    i = j = count = 0
    while i < len(x) and j < len(q):
        if x[i] == q[j]:
            count += 1
            i += 1
            j += 1
        elif x[i] < q[j]:
            i += 1
        else:
            j += 1
    return count


def overlap_at_least(x: Sequence[int], q: Sequence[int], required: int) -> bool:
    """Whether the overlap of two sorted rank arrays reaches ``required``.

    Stops as soon as the bound ``count + min(remaining_x, remaining_q)`` drops
    below ``required`` or the count reaches it.
    """
    if required <= 0:
        return True
    i = j = count = 0
    len_x, len_q = len(x), len(q)
    while i < len_x and j < len_q:
        if count + min(len_x - i, len_q - j) < required:
            return False
        if x[i] == q[j]:
            count += 1
            if count >= required:
                return True
            i += 1
            j += 1
        elif x[i] < q[j]:
            i += 1
        else:
            j += 1
    return count >= required
