"""Fast verification of set-similarity candidates.

Candidates are verified by merging the two sorted rank arrays.  The merge
stops early as soon as the remaining tokens of either record cannot lift the
overlap to the required threshold, the "fast verification" of [60] that the
paper equips every compared algorithm with.

Both entry points additionally take a vectorised path when *both* inputs are
numpy rank arrays and the shorter one is at least :data:`NUMPY_CROSSOVER`
elements: the overlap is counted with one ``searchsorted`` sweep instead of
the element-wise merge.  Short inputs stay on the scalar merge, whose early
exit beats kernel-launch overhead at small sizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.scratch import sorted_member_mask

#: Minimum size of the shorter input before the numpy path pays for itself;
#: below it the scalar merge (with its early exit) wins.
NUMPY_CROSSOVER = 24


def _counting_overlap(x: np.ndarray, q: np.ndarray) -> int:
    """Overlap of two sorted unique rank arrays via one searchsorted sweep."""
    if x.size > q.size:
        x, q = q, x
    return int(np.count_nonzero(sorted_member_mask(q, x)))


def _numpy_pair(x: Sequence[int], q: Sequence[int]) -> bool:
    return (
        isinstance(x, np.ndarray)
        and isinstance(q, np.ndarray)
        and min(len(x), len(q)) >= NUMPY_CROSSOVER
    )


def merge_overlap(x: Sequence[int], q: Sequence[int]) -> int:
    """Exact overlap of two sorted rank arrays."""
    if _numpy_pair(x, q):
        return _counting_overlap(x, q)
    i = j = count = 0
    while i < len(x) and j < len(q):
        if x[i] == q[j]:
            count += 1
            i += 1
            j += 1
        elif x[i] < q[j]:
            i += 1
        else:
            j += 1
    return count


def overlap_at_least(x: Sequence[int], q: Sequence[int], required: int) -> bool:
    """Whether the overlap of two sorted rank arrays reaches ``required``.

    Stops as soon as the bound ``count + min(remaining_x, remaining_q)`` drops
    below ``required`` or the count reaches it.
    """
    if required <= 0:
        return True
    if min(len(x), len(q)) < required:
        return False
    if _numpy_pair(x, q):
        return _counting_overlap(x, q) >= required
    i = j = count = 0
    len_x, len_q = len(x), len(q)
    while i < len_x and j < len_q:
        if count + min(len_x - i, len_q - j) < required:
            return False
        if x[i] == q[j]:
            count += 1
            if count >= required:
                return True
            i += 1
            j += 1
        elif x[i] < q[j]:
            i += 1
        else:
            j += 1
    return count >= required
