"""Prefix-length computations for prefix filtering and pkwise.

* Standard prefix filtering: with required overlap ``t`` the prefix of a
  record of size ``s`` is its first ``s - t + 1`` tokens in the global order;
  two records with overlap ``>= t`` must share a prefix token.
* pkwise: the prefix is extended until the k-wise condition covers the same
  budget: the prefix length ``p`` is the smallest integer with
  ``sum_k max(0, cnt(x, p, k) - k + 1) >= s - t + 1`` where ``cnt(x, p, k)``
  counts class-``k`` tokens among the first ``p`` tokens.  If every class
  shares fewer than ``k`` tokens with the partner's prefix, the total overlap
  is below ``t``; hence sharing ``>= k`` class-``k`` tokens for some ``k`` is
  a complete filter.
"""

from __future__ import annotations

from typing import Sequence


def standard_prefix_length(size: int, required_overlap: int) -> int:
    """Prefix length ``size - t + 1`` clamped to ``[0, size]``.

    A non-positive value (``t > size``) means the record can never reach the
    required overlap; callers skip such records.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if required_overlap < 1:
        raise ValueError("required_overlap must be at least 1")
    return max(0, min(size, size - required_overlap + 1))


def pkwise_prefix_length(
    token_classes: Sequence[int], num_classes: int, required_overlap: int
) -> int:
    """Smallest pkwise prefix length for a record given its tokens' classes.

    Args:
        token_classes: class (1-based) of each of the record's tokens, in
            global order.
        num_classes: the number of classes ``m - 1``.
        required_overlap: the required overlap ``t`` (the loosest bound for
            the record, e.g. ``ceil(tau * |x|)`` under Jaccard).

    Returns:
        The prefix length ``p``; ``0`` when the record cannot reach the
        required overlap at all (``t > |x|``).
    """
    if num_classes < 1:
        raise ValueError("num_classes must be at least 1")
    if required_overlap < 1:
        raise ValueError("required_overlap must be at least 1")
    size = len(token_classes)
    target = size - required_overlap + 1
    if target <= 0:
        return 0
    counts = [0] * (num_classes + 1)
    budget = 0
    for position, token_class in enumerate(token_classes):
        if not 1 <= token_class <= num_classes:
            raise ValueError(
                f"token class {token_class} outside [1, {num_classes}]"
            )
        counts[token_class] += 1
        if counts[token_class] >= token_class:
            # Adding this token raised max(0, cnt - k + 1) by one.
            budget += 1
        if budget >= target:
            return position + 1
    # The whole record is the prefix (possible when classes are scarce).
    return size


def class_counts(token_classes: Sequence[int], prefix_length: int, num_classes: int) -> list[int]:
    """``cnt(x, p, k)`` for every class ``k`` (index 0 unused, classes are 1-based)."""
    counts = [0] * (num_classes + 1)
    for token_class in token_classes[:prefix_length]:
        counts[token_class] += 1
    return counts
