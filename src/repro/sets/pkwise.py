"""The pkwise baseline for set similarity search.

pkwise [103] is the pigeonhole-principle algorithm the paper's Ring searcher
builds on: tokens are split into classes, prefixes are extended to cover the
k-wise budget, and a data object is a candidate when it shares at least ``k``
class-``k`` prefix tokens with the query for some class ``k``.  The paper
notes that Ring with ``l = 1`` *is* pkwise, which is exactly how it is
implemented here.
"""

from __future__ import annotations

from repro.sets.dataset import SetDataset
from repro.sets.ring import RingSetSearcher


class PkwiseSearcher(RingSetSearcher):
    """Pigeonhole (k-wise signature) baseline: Ring with chain length 1."""

    def __init__(self, dataset: SetDataset, predicate):
        super().__init__(dataset, predicate, chain_length=1)
