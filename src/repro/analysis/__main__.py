"""``python -m repro.analysis``: run the rule suite against the repository.

Exit status: 0 when clean, 1 on errors (or, under ``--strict``, on
warnings and stale allowlist entries too).  ``--json`` prints the full
report as one JSON document; ``--update-schemas`` regenerates the
wire-schema snapshots after a deliberate, version-bumped change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.framework import all_rules, run_analysis
from repro.analysis.rules.wire_compat import update_schemas


def _detect_root(start: str) -> str:
    """Walk up from ``start`` to the directory holding pyproject.toml."""
    current = os.path.abspath(start)
    while True:
        if os.path.exists(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.abspath(start)
        current = parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="project-specific static analysis (locks, wire compat, drift)",
    )
    parser.add_argument("--root", default=".", help="repository root (default: auto-detect)")
    parser.add_argument(
        "--strict", action="store_true", help="fail on warnings and stale allowlist entries"
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable); default: all",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--update-schemas",
        action="store_true",
        help="regenerate the wire-schema snapshots from the current code",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for entry in all_rules():
            print(f"{entry.name}: {entry.help}")
        return 0
    root = _detect_root(args.root)
    if args.update_schemas:
        from repro.analysis.framework import AnalysisContext

        for path in update_schemas(AnalysisContext(root)):
            print(f"wrote {path}")
        return 0
    report = run_analysis(root, rules=args.rules)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for entry in report.stale_allowlist:
            print(
                f"allowlist: stale entry [{entry['rule']}] {entry['match']!r} "
                f"matches nothing (reason was: {entry['reason']})"
            )
        errors, warnings = len(report.errors), len(report.warnings)
        print(
            f"{len(report.rules_run)} rules: {errors} error(s), {warnings} warning(s), "
            f"{len(report.suppressed)} suppressed, {len(report.stale_allowlist)} stale "
            f"allowlist entr{'y' if len(report.stale_allowlist) == 1 else 'ies'}"
        )
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
