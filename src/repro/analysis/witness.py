"""Runtime lock witness: record real acquisition orders, check the graph.

Static analysis sees ``with self._lock`` nesting but not cross-object
edges (the engine holding every writer lock while the metrics registry
takes its own lock inside ``to_wire``).  The witness closes that gap the
way a thread sanitizer does, at test scope:

* :class:`LockWitness` wraps a real ``threading.Lock`` under a stable
  name -- the same ``module.Class.attr`` node ids the static graph uses,
  with ``attr[key]`` for members of a lock family (``_writer_locks[sets]``);
* every acquisition while other witnessed locks are held records one
  observed ``held -> acquired`` edge in a shared :class:`WitnessLog`;
* :func:`check_consistent` unions the observed edges with the statically
  derived graph and asserts the result acyclic -- an execution that takes
  locks in an order the static graph's transpose allows is a deadlock
  candidate the moment both paths run concurrently.

Members of one family stay distinct nodes (``[sets]`` vs ``[hamming]``),
so the *intra*-family order -- invisible statically, sorted at runtime by
``metrics_wire`` -- is checked here at instance granularity; across
families, edges are collapsed to the family node (``[*]``) to match the
static graph, which is conservative in the usual partitioned-lock sense.
"""

from __future__ import annotations

import threading
from typing import Iterable


def family(name: str) -> str:
    """``..._writer_locks[sets]`` -> ``..._writer_locks[*]``; others unchanged."""
    if name.endswith("]") and "[" in name:
        return name[: name.rindex("[")] + "[*]"
    return name


class WitnessLog:
    """Observed acquisition edges across every witness sharing this log."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[tuple[str, str], int] = {}
        self._held = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def record_acquire(self, name: str, reentrant: bool = False) -> None:
        stack = self._stack()
        if stack:
            with self._lock:
                for holder in stack:
                    if reentrant and holder == name:
                        # A legal RLock re-entry (e.g. ``truncate_upto``
                        # calling ``batches`` under the same lock) is not a
                        # self-deadlock edge.
                        continue
                    key = (holder, name)
                    self._edges[key] = self._edges.get(key, 0) + 1
        stack.append(name)

    def record_release(self, name: str) -> None:
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]
                return

    def edges(self) -> set[tuple[str, str]]:
        with self._lock:
            return set(self._edges)

    def counts(self) -> dict[tuple[str, str], int]:
        with self._lock:
            return dict(self._edges)


class LockWitness:
    """A named, order-recording wrapper around one real lock.

    Drop-in for the ``with`` protocol and ``acquire``/``release``, so it
    can replace ``engine._lock`` (or a ``_writer_locks`` entry) on a live
    object under test without the production code noticing.
    """

    def __init__(
        self, inner: threading.Lock, name: str, log: WitnessLog, reentrant: bool = False
    ):
        self._inner = inner
        self.name = name
        self._log = log
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._log.record_acquire(self.name, reentrant=self._reentrant)
        return acquired

    def release(self) -> None:
        self._log.record_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def _find_cycle(edges: set[tuple[str, str]]) -> list[str] | None:
    adjacency: dict[str, set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
    visited: set[str] = set()

    def visit(node: str, path: list[str], on_path: set[str]) -> list[str] | None:
        visited.add(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ in on_path:
                return path[path.index(succ) :]
            if succ not in visited:
                found = visit(succ, path + [succ], on_path | {succ})
                if found is not None:
                    return found
        return None

    for start in sorted(adjacency):
        if start not in visited:
            found = visit(start, [start], {start})
            if found is not None:
                return found
    return None


def check_consistent(
    static_edges: Iterable[tuple[str, str]],
    witness_edges: Iterable[tuple[str, str]],
) -> list[str]:
    """Problems (empty list = consistent) in the static+observed union.

    Observed edges between members of the *same* family stay at instance
    granularity (their order is exactly what the static pass cannot see);
    every other edge is collapsed to family nodes so it can interact with
    the static graph.  Any cycle in the union is reported.
    """
    combined: set[tuple[str, str]] = set(static_edges)
    for src, dst in witness_edges:
        src_family, dst_family = family(src), family(dst)
        if src_family == dst_family and src != dst:
            combined.add((src, dst))
        elif src_family != dst_family:
            combined.add((src_family, dst_family))
        else:
            return [f"lock {src!r} was re-acquired while already held"]
    cycle = _find_cycle(combined)
    if cycle is not None:
        ring = " -> ".join(cycle + [cycle[0]])
        return [f"lock-order cycle in the static+observed union: {ring}"]
    return []


# ---------------------------------------------------------------------------
# Instrumentation helpers for the concurrency tests
# ---------------------------------------------------------------------------

ENGINE_LOCK = "repro.engine.executor.SearchEngine._lock"
WRITER_FAMILY = "repro.engine.executor.SearchEngine._writer_locks"
REGISTRY_LOCK = "repro.common.obs.MetricsRegistry._lock"
REPLICA_WRITE_LOCK = "repro.engine.replication.ReplicaSet._write_lock"
REPLICA_LOCK = "repro.engine.replication.ReplicaSet._lock"
WAL_LOCK = "repro.engine.wal.WriteAheadLog._lock"


def instrument_engine(engine: object, log: WitnessLog) -> None:
    """Swap a live ``SearchEngine``'s locks for witnesses, in place.

    Wraps the engine ``_lock``, every already-created per-backend writer
    lock (named ``_writer_locks[<backend>]``), and the stats registry's
    internal lock, all under the node ids the static graph uses.
    """
    engine._lock = LockWitness(engine._lock, ENGINE_LOCK, log)  # type: ignore[attr-defined]
    writer_locks = engine._writer_locks  # type: ignore[attr-defined]
    for backend_name, lock in list(writer_locks.items()):
        writer_locks[backend_name] = LockWitness(
            lock, f"{WRITER_FAMILY}[{backend_name}]", log
        )
    registry = engine._stats.registry  # type: ignore[attr-defined]
    registry._lock = LockWitness(registry._lock, REGISTRY_LOCK, log)


def instrument_replica_set(rset: object, log: WitnessLog) -> None:
    """Swap a live ``ReplicaSet``'s locks (and its WAL's) for witnesses.

    Wraps the write-serialisation lock, the replica-table lock and -- when
    the set owns a shared WAL lineage -- the log's reentrant lock, under
    the node ids the static graph uses.  The documented order is
    ``_write_lock -> _lock -> WAL._lock``; any concurrent execution that
    observes an inversion (supervisor heal vs writer vs rolling
    compaction) turns the union graph cyclic and fails the witness check.
    """
    rset._write_lock = LockWitness(  # type: ignore[attr-defined]
        rset._write_lock, REPLICA_WRITE_LOCK, log
    )
    rset._lock = LockWitness(rset._lock, REPLICA_LOCK, log)  # type: ignore[attr-defined]
    wal = getattr(rset, "_wal", None)
    if wal is not None:
        wal._lock = LockWitness(wal._lock, WAL_LOCK, log, reentrant=True)
