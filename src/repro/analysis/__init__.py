"""Project-specific static analysis: lock discipline, wire compat, drift.

The package is a small stdlib-``ast`` framework (:mod:`repro.analysis.
framework`) plus one module per shipped rule under :mod:`repro.analysis.
rules`.  ``python -m repro.analysis`` runs every rule against the repository
and exits non-zero on findings; ``--strict`` (the CI mode) promotes warnings
to failures, ``--json`` emits machine-readable findings, and
``--update-schemas`` regenerates the wire-schema snapshots after a
deliberate, version-bumped schema change.

The runtime half lives in :mod:`repro.analysis.witness`: a
:class:`~repro.analysis.witness.LockWitness` wraps real locks under tests,
records the actual acquisition order, and asserts it consistent with the
statically derived lock graph -- a TSan-lite for the paths static analysis
cannot see across object boundaries.
"""

from repro.analysis.framework import (
    AnalysisContext,
    Finding,
    Report,
    all_rules,
    load_allowlist,
    rule,
    run_analysis,
)
from repro.analysis.witness import LockWitness, WitnessLog, check_consistent

__all__ = [
    "AnalysisContext",
    "Finding",
    "LockWitness",
    "Report",
    "WitnessLog",
    "all_rules",
    "check_consistent",
    "load_allowlist",
    "rule",
    "run_analysis",
]
