"""The analysis framework: findings, rule registry, context, allowlist.

A *rule* is a function ``(ctx: AnalysisContext) -> list[Finding]`` registered
under a stable name with the :func:`rule` decorator.  Rules parse the
repository through the shared :class:`AnalysisContext` (cached sources and
``ast`` trees keyed by repo-relative path), so N rules pay for one parse.

Findings carry a *severity*: ``"error"`` always fails the run, ``"warning"``
fails only under ``--strict`` (the CI mode).  False positives are suppressed
through a checked-in allowlist -- a JSON list of ``{"rule", "match",
"reason"}`` entries where ``match`` is a substring of the finding's stable
:attr:`Finding.key` and ``reason`` is the one-line justification reviewers
see.  Allowlist entries that no longer match anything become warnings
themselves, so the file cannot silently rot.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: Repo-relative path of the default allowlist (next to this module).
ALLOWLIST_NAME = "allowlist.json"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule name, a location, and a message."""

    rule: str
    file: str
    line: int
    message: str
    severity: str = "error"

    @property
    def key(self) -> str:
        """Stable identity used for allowlist matching (no line numbers,
        so findings survive unrelated edits above them)."""
        return f"{self.rule}:{self.file}:{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.severity}: {self.message}"


RuleFunc = Callable[["AnalysisContext"], list[Finding]]


@dataclass(frozen=True)
class Rule:
    name: str
    help: str
    func: RuleFunc


_RULES: dict[str, Rule] = {}


def rule(name: str, help: str = "") -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under a stable name."""

    def decorate(func: RuleFunc) -> RuleFunc:
        if name in _RULES:
            raise ValueError(f"rule {name!r} is already registered")
        _RULES[name] = Rule(name, help, func)
        return func

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by name (imports the rule modules)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_RULES[name] for name in sorted(_RULES)]


def get_rule(name: str) -> Rule:
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return _RULES[name]


class AnalysisContext:
    """Cached view of one repository tree for the rules to share.

    ``root`` is the repository root (the directory holding ``src/``).  All
    paths handed out and accepted are repo-relative with ``/`` separators,
    so findings and allowlist entries are stable across machines.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._sources: dict[str, str] = {}
        self._trees: dict[str, ast.Module] = {}

    # -- files --------------------------------------------------------------

    def path(self, relpath: str) -> str:
        return os.path.join(self.root, *relpath.split("/"))

    def exists(self, relpath: str) -> bool:
        return os.path.exists(self.path(relpath))

    def iter_python(self, prefix: str = "src") -> Iterator[str]:
        """Repo-relative paths of every ``.py`` file under ``prefix``, sorted."""
        base = self.path(prefix)
        found: list[str] = []
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    full = os.path.join(dirpath, name)
                    found.append(os.path.relpath(full, self.root).replace(os.sep, "/"))
        return iter(sorted(found))

    def source(self, relpath: str) -> str:
        if relpath not in self._sources:
            with open(self.path(relpath), encoding="utf-8") as handle:
                self._sources[relpath] = handle.read()
        return self._sources[relpath]

    def tree(self, relpath: str) -> ast.Module:
        if relpath not in self._trees:
            self._trees[relpath] = ast.parse(self.source(relpath), filename=relpath)
        return self._trees[relpath]

    def text(self, relpath: str) -> str:
        """Raw text of a non-Python file (docs); same cache as sources."""
        return self.source(relpath)

    @staticmethod
    def module_name(relpath: str) -> str:
        """``src/repro/engine/executor.py`` -> ``repro.engine.executor``."""
        parts = relpath.split("/")
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------


def load_allowlist(path: str) -> list[dict]:
    """Read an allowlist file; every entry needs rule, match and reason."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise ValueError(f"{path!r}: the allowlist must be a JSON list")
    for position, entry in enumerate(entries):
        for field_name in ("rule", "match", "reason"):
            if not isinstance(entry.get(field_name), str) or not entry[field_name]:
                raise ValueError(
                    f"{path!r}: entry {position} is missing a non-empty {field_name!r}"
                )
    return entries


def apply_allowlist(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split findings into (kept, suppressed); also return stale entries."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used = [False] * len(entries)
    for finding in findings:
        match = None
        for position, entry in enumerate(entries):
            if entry["rule"] == finding.rule and entry["match"] in finding.key:
                match = position
                break
        if match is None:
            kept.append(finding)
        else:
            used[match] = True
            suppressed.append(finding)
    stale = [entry for entry, was_used in zip(entries, used) if not was_used]
    return kept, suppressed, stale


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class Report:
    """The outcome of one analysis run over a repository tree."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_allowlist: list[dict] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity != "error"]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and (self.warnings or self.stale_allowlist):
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "rules_run": self.rules_run,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_allowlist": self.stale_allowlist,
        }


def run_analysis(
    root: str,
    rules: list[str] | None = None,
    allowlist_path: str | None = None,
) -> Report:
    """Run rules against the tree at ``root`` and apply the allowlist.

    ``allowlist_path`` defaults to the checked-in ``analysis/allowlist.json``
    of the analysed tree itself (so fixture trees bring their own, and the
    repository's allowlist never leaks into fixture runs).
    """
    ctx = AnalysisContext(root)
    selected = all_rules()
    if rules is not None:
        selected = [get_rule(name) for name in rules]
    if allowlist_path is None:
        allowlist_path = ctx.path(f"src/repro/analysis/{ALLOWLIST_NAME}")
    entries = load_allowlist(allowlist_path)
    findings: list[Finding] = []
    for entry in selected:
        findings.extend(entry.func(ctx))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    kept, suppressed, stale = apply_allowlist(findings, entries)
    return Report(
        findings=kept,
        suppressed=suppressed,
        stale_allowlist=stale,
        rules_run=[entry.name for entry in selected],
    )
