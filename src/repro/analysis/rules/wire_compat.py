"""Wire-compat rule: every emitted field decodes, schema changes bump versions.

Two protected surfaces:

* the **engine wire** (``src/repro/engine/wire.py``): each ``encode_X`` is
  paired with its decoder -- ``decode_X`` in the same module for requests,
  ``WireResponse.from_wire`` in ``client.py`` for ``encode_response``;
* the **obs wire** (``src/repro/common/obs.py``): ``MetricsRegistry.
  to_wire`` paired with ``MetricsRegistry.merge_wire``.

For an encoder the rule collects every string key it emits (dict literals
and ``body["k"] = ...`` stores); for a decoder, every key it reads
(``body["k"]``, ``body.get("k")``, ``"k" in body``), *transitively* through
same-module helper functions (``decode_query`` delegates ``schema_version``
checking to ``_check_schema_version``).  An emitted key with no reader on
the decode side is an error -- a field nobody can ever consume is either
dead weight or a typo'd rename that silently drops data.

The second check compares the extracted field sets against checked-in
snapshots (``src/repro/analysis/schemas/*.json``).  A drifted field set
with an unchanged schema version is an error ("bump the version");
a bumped version with a stale snapshot is an error too ("regenerate with
``--update-schemas``"), so snapshots, code and version move together.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass

from repro.analysis.framework import AnalysisContext, Finding, rule

SCHEMA_DIR = "src/repro/analysis/schemas"


@dataclass(frozen=True)
class PairSpec:
    """One encoder/decoder pairing inside a surface."""

    name: str
    encode_file: str
    encode_func: str  # "function" or "Class.method"
    decode_file: str
    decode_func: str


@dataclass(frozen=True)
class SurfaceSpec:
    """One wire surface: its version constant and its codec pairs."""

    name: str
    version_file: str
    version_const: str
    pairs: tuple[PairSpec, ...]

    @property
    def snapshot(self) -> str:
        return f"{SCHEMA_DIR}/{self.name}.json"


SURFACES = (
    SurfaceSpec(
        name="engine_wire",
        version_file="src/repro/engine/wire.py",
        version_const="WIRE_SCHEMA_VERSION",
        pairs=(
            PairSpec(
                "query",
                "src/repro/engine/wire.py",
                "encode_query",
                "src/repro/engine/wire.py",
                "decode_query",
            ),
            PairSpec(
                "upsert",
                "src/repro/engine/wire.py",
                "encode_upsert",
                "src/repro/engine/wire.py",
                "decode_upsert",
            ),
            PairSpec(
                "delete",
                "src/repro/engine/wire.py",
                "encode_delete",
                "src/repro/engine/wire.py",
                "decode_delete",
            ),
            PairSpec(
                "mutate",
                "src/repro/engine/wire.py",
                "encode_mutate",
                "src/repro/engine/wire.py",
                "decode_mutate",
            ),
            PairSpec(
                "response",
                "src/repro/engine/wire.py",
                "encode_response",
                "src/repro/engine/client.py",
                "WireResponse.from_wire",
            ),
        ),
    ),
    SurfaceSpec(
        name="obs_wire",
        version_file="src/repro/common/obs.py",
        version_const="OBS_WIRE_VERSION",
        pairs=(
            PairSpec(
                "metrics",
                "src/repro/common/obs.py",
                "MetricsRegistry.to_wire",
                "src/repro/common/obs.py",
                "MetricsRegistry.merge_wire",
            ),
        ),
    ),
)


def _find_function(tree: ast.Module, dotted: str) -> ast.FunctionDef | None:
    """Resolve ``func`` or ``Class.method`` to its def node."""
    parts = dotted.split(".")
    body: list[ast.stmt] = tree.body
    for part in parts[:-1]:
        for node in body:
            if isinstance(node, ast.ClassDef) and node.name == part:
                body = node.body
                break
        else:
            return None
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == parts[-1]:
            return node  # type: ignore[return-value]
    return None


def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Top-level and method defs, keyed by name (helpers for transitivity)."""
    functions: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node  # type: ignore[assignment]
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.setdefault(item.name, item)  # type: ignore[arg-type]
    return functions


def emitted_keys(func: ast.FunctionDef) -> set[str]:
    """String keys the encoder emits: dict-literal keys + subscript stores."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _direct_read_keys(func: ast.FunctionDef) -> tuple[set[str], set[str]]:
    """Keys this function reads, plus names of functions it calls."""
    keys: set[str] = set()
    calls: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
                keys.add(node.slice.value)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if isinstance(func_expr, ast.Attribute):
                if func_expr.attr == "get" and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(first.value, str):
                        keys.add(first.value)
                calls.add(func_expr.attr)
            elif isinstance(func_expr, ast.Name):
                calls.add(func_expr.id)
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                if isinstance(node.left, ast.Constant) and isinstance(node.left.value, str):
                    keys.add(node.left.value)
    return keys, calls


def consumed_keys(tree: ast.Module, func: ast.FunctionDef) -> set[str]:
    """Keys read by the decoder or any same-module helper it reaches."""
    functions = _module_functions(tree)
    seen: set[str] = set()
    keys: set[str] = set()
    frontier = [func]
    while frontier:
        current = frontier.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        direct, calls = _direct_read_keys(current)
        keys |= direct
        for name in calls:
            helper = functions.get(name)
            if helper is not None and helper.name not in seen:
                frontier.append(helper)
    return keys


def _surface_state(ctx: AnalysisContext, surface: SurfaceSpec) -> tuple[dict, list[Finding]]:
    """Extract the live field sets + version for one surface."""
    findings: list[Finding] = []
    state: dict = {"version": None, "pairs": {}}
    version_tree = ctx.tree(surface.version_file)
    for node in version_tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == surface.version_const:
                    if isinstance(node.value, ast.Constant):
                        state["version"] = node.value.value
    if state["version"] is None:
        findings.append(
            Finding(
                rule="wire-compat",
                file=surface.version_file,
                line=1,
                message=f"cannot find the {surface.version_const} constant",
            )
        )
    for pair in surface.pairs:
        encoder = _find_function(ctx.tree(pair.encode_file), pair.encode_func)
        decoder = _find_function(ctx.tree(pair.decode_file), pair.decode_func)
        if encoder is None or decoder is None:
            missing = pair.encode_func if encoder is None else pair.decode_func
            missing_file = pair.encode_file if encoder is None else pair.decode_file
            findings.append(
                Finding(
                    rule="wire-compat",
                    file=missing_file,
                    line=1,
                    message=f"codec function {missing} not found for pair {pair.name!r}",
                )
            )
            continue
        emitted = emitted_keys(encoder)
        consumed = consumed_keys(ctx.tree(pair.decode_file), decoder)
        state["pairs"][pair.name] = {
            "emitted": sorted(emitted),
            "consumed": sorted(consumed),
        }
        for key in sorted(emitted - consumed):
            findings.append(
                Finding(
                    rule="wire-compat",
                    file=pair.encode_file,
                    line=encoder.lineno,
                    message=(
                        f"{pair.name}:{key}: emitted by {pair.encode_func} but never "
                        f"read by {pair.decode_func}"
                    ),
                )
            )
    return state, findings


def update_schemas(ctx: AnalysisContext) -> list[str]:
    """Regenerate every surface snapshot from the current code; returns paths."""
    os.makedirs(ctx.path(SCHEMA_DIR), exist_ok=True)
    written = []
    for surface in SURFACES:
        if not ctx.exists(surface.version_file):
            continue
        state, _findings = _surface_state(ctx, surface)
        with open(ctx.path(surface.snapshot), "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(surface.snapshot)
    return written


@rule("wire-compat", "encoder/decoder field parity and schema-version bumps")
def check_wire_compat(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for surface in SURFACES:
        if not ctx.exists(surface.version_file):
            continue  # fixture tree without this surface
        state, surface_findings = _surface_state(ctx, surface)
        findings.extend(surface_findings)
        if not ctx.exists(surface.snapshot):
            findings.append(
                Finding(
                    rule="wire-compat",
                    file=surface.snapshot,
                    line=1,
                    message=(
                        f"missing schema snapshot for surface {surface.name!r} "
                        f"(run --update-schemas)"
                    ),
                )
            )
            continue
        snapshot = json.loads(ctx.text(surface.snapshot))
        if snapshot.get("pairs") != state["pairs"]:
            changed = sorted(
                name
                for name in set(snapshot.get("pairs", {})) | set(state["pairs"])
                if snapshot.get("pairs", {}).get(name) != state["pairs"].get(name)
            )
            if snapshot.get("version") == state["version"]:
                findings.append(
                    Finding(
                        rule="wire-compat",
                        file=surface.version_file,
                        line=1,
                        message=(
                            f"wire fields changed ({', '.join(changed)}) without a "
                            f"{surface.version_const} bump"
                        ),
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule="wire-compat",
                        file=surface.snapshot,
                        line=1,
                        message=(
                            f"schema snapshot is stale for {', '.join(changed)} "
                            f"(run --update-schemas)"
                        ),
                    )
                )
        elif snapshot.get("version") != state["version"]:
            findings.append(
                Finding(
                    rule="wire-compat",
                    file=surface.snapshot,
                    line=1,
                    message=(
                        f"snapshot records version {snapshot.get('version')!r} but the "
                        f"code says {state['version']!r} (run --update-schemas)"
                    ),
                )
            )
    return findings
