"""Doc-drift rule: served routes and CLI flags must appear in the docs.

* Every HTTP route the server knows -- the ``_ENDPOINTS`` literal in
  ``src/repro/engine/server.py`` plus any ``path == "/x"`` comparison --
  must appear (backtick-quoted) in ENGINE.md, whose endpoint table is the
  contract clients are written against.
* Every ``--flag`` registered via ``add_argument`` in
  ``src/repro/engine/cli.py`` must appear verbatim in ENGINE.md or
  README.md; an undocumented flag is a feature nobody can discover.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import AnalysisContext, Finding, rule

SERVER_FILE = "src/repro/engine/server.py"
CLI_FILE = "src/repro/engine/cli.py"
DOC_FILES = ("ENGINE.md", "README.md")


def server_routes(ctx: AnalysisContext) -> list[tuple[str, int]]:
    """Every route path the server dispatches on, with its line."""
    tree = ctx.tree(SERVER_FILE)
    routes: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            is_endpoints = any(
                isinstance(target, ast.Name) and target.id == "_ENDPOINTS"
                for target in node.targets
            )
            if is_endpoints and isinstance(node.value, (ast.Tuple, ast.List)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        routes.setdefault(element.value, element.lineno)
        elif isinstance(node, ast.Compare):
            candidates = [node.left] + list(node.comparators)
            if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                for candidate in candidates:
                    if (
                        isinstance(candidate, ast.Constant)
                        and isinstance(candidate.value, str)
                        and candidate.value.startswith("/")
                    ):
                        routes.setdefault(candidate.value, candidate.lineno)
    return sorted(routes.items())


def cli_flags(ctx: AnalysisContext) -> list[tuple[str, int]]:
    """Every ``--flag`` string passed to an ``add_argument`` call."""
    tree = ctx.tree(CLI_FILE)
    flags: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            continue
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith("--")
            ):
                flags.setdefault(arg.value, arg.lineno)
    return sorted(flags.items())


@rule("doc-drift", "routes and CLI flags must be documented")
def check_doc_drift(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    docs = {name: ctx.text(name) for name in DOC_FILES if ctx.exists(name)}
    if ctx.exists(SERVER_FILE):
        if "ENGINE.md" not in docs:
            findings.append(
                Finding(
                    rule="doc-drift",
                    file="ENGINE.md",
                    line=1,
                    message="server.py exists but ENGINE.md (the endpoint contract) does not",
                )
            )
        else:
            engine_md = docs["ENGINE.md"]
            for route, line in server_routes(ctx):
                if f"`{route}`" not in engine_md:
                    findings.append(
                        Finding(
                            rule="doc-drift",
                            file=SERVER_FILE,
                            line=line,
                            message=f"route {route} is served but missing from ENGINE.md",
                        )
                    )
    if ctx.exists(CLI_FILE) and docs:
        haystack = "\n".join(docs.values())
        for flag, line in cli_flags(ctx):
            if flag not in haystack:
                findings.append(
                    Finding(
                        rule="doc-drift",
                        file=CLI_FILE,
                        line=line,
                        message=f"CLI flag {flag} is undocumented (ENGINE.md / README.md)",
                    )
                )
    return findings
