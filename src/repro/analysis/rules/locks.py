"""Lock-discipline rule: acquisition-order graph, cycles, unlocked writes.

The rule models every class that creates ``threading.Lock`` / ``RLock``
objects:

* **plain lock attrs** -- ``self.X = threading.Lock()``;
* **lock families** -- dict attrs that lock objects are stored into
  (``self.X[key] = threading.Lock()``), named ``X[*]`` in the graph;
* **provider methods** -- methods returning a value derived from a lock
  attr (``_writer_lock`` returning an entry of ``_writer_locks``), so
  ``with self._writer_lock(name):`` resolves to the family it serves.

Acquisitions are recognised through ``with`` items, ``ExitStack.
enter_context`` and explicit ``.acquire()`` calls; local names are resolved
to lock attrs through a forward derivation pass (``locks = [self._writer_
locks[n] ...]; for lock in locks: stack.enter_context(lock)``).  While
walking a function the rule keeps the set of locks currently held and adds
one edge per (held -> newly acquired) pair; calls to same-class
``self.method(...)`` propagate the callee's own acquisitions into the
caller's held context (transitively, cycle-guarded).

Findings:

* a **cycle** in the resulting graph is an error (two code paths that
  acquire the same locks in opposite orders can deadlock);
* an assignment to an attribute that is written under a lock elsewhere in
  the class, made outside any lock and outside ``__init__``, is a warning
  (a racy write to state the class itself treats as lock-protected).

Intra-family order (several locks of one ``X[*]`` family held at once, as in
``metrics_wire``'s sorted ``ExitStack``) is invisible statically; that is
exactly what :mod:`repro.analysis.witness` checks at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.framework import AnalysisContext, Finding, rule

_LOCK_FACTORIES = {"Lock", "RLock"}


def _lock_factory_name(node: ast.AST) -> str | None:
    """``threading.Lock()`` -> ``"Lock"``, ``RLock()`` -> ``"RLock"``, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    return name if name in _LOCK_FACTORIES else None


def _is_lock_factory(node: ast.AST) -> bool:
    return _lock_factory_name(node) is not None


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attrs_in(node: ast.AST) -> list[str]:
    """Every ``self.X`` attribute name appearing anywhere inside ``node``."""
    found = []
    for child in ast.walk(node):
        attr = _self_attr(child)
        if attr is not None:
            found.append(attr)
    return found


@dataclass
class ClassLocks:
    """Lock layout of one class: plain attrs, dict families, providers."""

    module: str
    name: str
    plain: set[str] = field(default_factory=set)
    families: set[str] = field(default_factory=set)
    #: attrs created as ``threading.RLock()`` -- self re-acquisition is legal
    reentrant: set[str] = field(default_factory=set)
    #: method name -> the lock attr its return value is derived from
    providers: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def node_id(self, attr: str) -> str:
        suffix = "[*]" if attr in self.families else ""
        return f"{self.module}.{self.name}.{attr}{suffix}"

    def allows_self_edge(self, node: str) -> bool:
        """Self-acquisition is legal for RLocks and unordered inside families."""
        if node.endswith("[*]"):
            return True
        return any(node == self.node_id(attr) for attr in self.reentrant)


@dataclass
class LockGraph:
    """The inter-module lock-acquisition-order graph."""

    #: every lock node ever seen acquired (``module.Class.attr`` or ``...[*]``)
    nodes: set[str] = field(default_factory=set)
    #: (held, acquired) -> example sites
    edges: dict[tuple[str, str], list[tuple[str, int]]] = field(default_factory=dict)

    def add_edge(self, held: str, acquired: str, site: tuple[str, int]) -> None:
        sites = self.edges.setdefault((held, acquired), [])
        if len(sites) < 8:
            sites.append(site)

    def cycles(self) -> list[list[str]]:
        """Every elementary cycle reachable in the edge set (deduplicated)."""
        adjacency: dict[str, set[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, set()).add(dst)
        seen_cycles: set[tuple[str, ...]] = set()
        cycles: list[list[str]] = []

        def visit(node: str, path: list[str], on_path: set[str]) -> None:
            for succ in sorted(adjacency.get(node, ())):
                if succ in on_path:
                    cycle = path[path.index(succ) :]
                    # Canonical rotation so each cycle is reported once.
                    pivot = cycle.index(min(cycle))
                    canon = tuple(cycle[pivot:] + cycle[:pivot])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        cycles.append(list(canon))
                elif len(path) < 32:
                    visit(succ, path + [succ], on_path | {succ})

        for start in sorted(adjacency):
            visit(start, [start], {start})
        return cycles


def _collect_class_locks(module: str, cls: ast.ClassDef) -> ClassLocks:
    info = ClassLocks(module=module, name=cls.name)
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[item.name] = item  # type: ignore[assignment]
    for method in info.methods.values():
        lock_locals: set[str] = set()
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and _is_lock_factory(node.value):
                    info.plain.add(attr)
                    if _lock_factory_name(node.value) == "RLock":
                        info.reentrant.add(attr)
                elif isinstance(target, ast.Name) and _is_lock_factory(node.value):
                    lock_locals.add(target.id)
                elif isinstance(target, ast.Subscript):
                    base = _self_attr(target.value)
                    if base is None:
                        continue
                    if _is_lock_factory(node.value) or (
                        isinstance(node.value, ast.Name) and node.value.id in lock_locals
                    ):
                        info.families.add(base)
    info.plain -= info.families
    # Provider methods: return a value derived from a lock attr.
    lock_attrs = info.plain | info.families
    for name, method in info.methods.items():
        derived = _derivations(method, lock_attrs)
        for node in ast.walk(method):
            if isinstance(node, ast.Return) and node.value is not None:
                attr = _resolve_lock_expr(node.value, info, derived)
                if attr is not None:
                    info.providers[name] = attr
    return info


def _derivations(func: ast.AST, lock_attrs: set[str]) -> dict[str, str]:
    """Forward pass mapping local names to the lock attr they derive from."""
    derived: dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            sources = [a for a in _self_attrs_in(node.value) if a in lock_attrs]
            sources.extend(
                derived[n.id]
                for n in ast.walk(node.value)
                if isinstance(n, ast.Name) and n.id in derived
            )
            if sources:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        derived[target.id] = sources[0]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            sources = [a for a in _self_attrs_in(node.iter) if a in lock_attrs]
            sources.extend(
                derived[n.id]
                for n in ast.walk(node.iter)
                if isinstance(n, ast.Name) and n.id in derived
            )
            if sources and isinstance(node.target, ast.Name):
                derived[node.target.id] = sources[0]
    return derived


def _resolve_lock_expr(
    expr: ast.AST, info: ClassLocks, derived: dict[str, str]
) -> str | None:
    """Resolve an acquired expression to the lock attr it names, if any."""
    attr = _self_attr(expr)
    if attr is not None and attr in (info.plain | info.families):
        return attr
    if isinstance(expr, ast.Subscript):
        base = _self_attr(expr.value)
        if base is not None and base in info.families:
            return base
    if isinstance(expr, ast.Call):
        func = expr.func
        # self._writer_locks.get(name) / self._writer_lock(name)
        if isinstance(func, ast.Attribute):
            base = _self_attr(func.value)
            if base is not None and base in info.families and func.attr == "get":
                return base
        method = _self_attr(func)
        if method is not None and method in info.providers:
            return info.providers[method]
    if isinstance(expr, ast.Name) and expr.id in derived:
        return derived[expr.id]
    return None


class _FunctionWalker:
    """Walks one method's statements tracking the held-lock stack."""

    def __init__(
        self,
        relpath: str,
        info: ClassLocks,
        graph: LockGraph,
        acquired_of: dict[str, set[str]],
        writes: list[tuple[str, int, str, bool]],
    ):
        self.relpath = relpath
        self.info = info
        self.graph = graph
        self.acquired_of = acquired_of
        self.writes = writes
        self.acquired: set[str] = set()

    def run(self, method: ast.FunctionDef) -> None:
        self.derived = _derivations(method, self.info.plain | self.info.families)
        self._walk(method.body, [])

    # -- helpers -----------------------------------------------------------

    def _acquire(self, attr: str, held: list[str], line: int) -> str:
        node = self.info.node_id(attr)
        self.graph.nodes.add(node)
        self.acquired.add(node)
        for holder in held:
            if holder == node and self.info.allows_self_edge(node):
                # Re-entrant acquisition (RLock), or several members of one
                # family at once -- intra-family order is a runtime property
                # (checked by the witness).
                continue
            self.graph.add_edge(holder, node, (self.relpath, line))
        return node

    def _propagate_call(self, call: ast.Call, held: list[str]) -> None:
        method = _self_attr(call.func)
        if method is None or method not in self.acquired_of:
            return
        for node in sorted(self.acquired_of[method]):
            for holder in held:
                if holder == node and self.info.allows_self_edge(node):
                    continue
                self.graph.add_edge(holder, node, (self.relpath, call.lineno))

    def _scan_expr(self, expr: ast.AST, held: list[str]) -> None:
        """Record self-method call propagation and explicit acquire()s."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire":
                attr = _resolve_lock_expr(func.value, self.info, self.derived)
                if attr is not None:
                    self._acquire(attr, held, node.lineno)
                    held.append(self.info.node_id(attr))
            elif isinstance(func, ast.Attribute) and func.attr == "enter_context":
                if node.args:
                    attr = _resolve_lock_expr(node.args[0], self.info, self.derived)
                    if attr is not None:
                        self._acquire(attr, held, node.lineno)
                        held.append(self.info.node_id(attr))
            else:
                self._propagate_call(node, held)

    def _record_writes(self, stmt: ast.stmt, held: list[str]) -> None:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
            if attr is not None:
                self.writes.append((self.relpath, stmt.lineno, attr, bool(held)))

    # -- statement walk ----------------------------------------------------

    def _walk(self, body: list[ast.stmt], held: list[str]) -> None:
        for stmt in body:
            self._record_writes(stmt, held)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                frame = list(held)
                for item in stmt.items:
                    attr = _resolve_lock_expr(item.context_expr, self.info, self.derived)
                    # Entering ``with self._writer_lock(n)`` first *calls*
                    # the provider (its own acquisitions happen before ours).
                    if isinstance(item.context_expr, ast.Call):
                        self._propagate_call(item.context_expr, frame)
                    if attr is not None:
                        self._acquire(attr, frame, stmt.lineno)
                        frame.append(self.info.node_id(attr))
                    else:
                        self._scan_expr(item.context_expr, frame)
                self._walk(stmt.body, frame)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(stmt.body, list(held))
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, list(held))
                for handler in stmt.handlers:
                    self._walk(handler.body, list(held))
                self._walk(stmt.orelse, list(held))
                self._walk(stmt.finalbody, list(held))
            elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                self._scan_expr(
                    stmt.test if isinstance(stmt, (ast.If, ast.While)) else stmt.iter,
                    held,
                )
                self._walk(stmt.body, list(held))
                self._walk(stmt.orelse, list(held))
            else:
                self._scan_expr(stmt, held)
                release = self._released_attr(stmt)
                if release is not None and release in held:
                    held.remove(release)

    def _released_attr(self, stmt: ast.stmt) -> str | None:
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return None
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr == "release":
            attr = _resolve_lock_expr(func.value, self.info, self.derived)
            if attr is not None:
                return self.info.node_id(attr)
        return None


def _acquired_fixpoint(info: ClassLocks) -> dict[str, set[str]]:
    """Per-method acquired-lock sets, closed over same-class self calls."""
    direct: dict[str, set[str]] = {}
    calls: dict[str, set[str]] = {}
    for name, method in info.methods.items():
        derived = _derivations(method, info.plain | info.families)
        acquired: set[str] = set()
        called: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = _resolve_lock_expr(item.context_expr, info, derived)
                    if attr is not None:
                        acquired.add(info.node_id(attr))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in ("acquire", "enter_context"):
                    target = func.value if func.attr == "acquire" else (
                        node.args[0] if node.args else None
                    )
                    if target is not None:
                        attr = _resolve_lock_expr(target, info, derived)
                        if attr is not None:
                            acquired.add(info.node_id(attr))
                else:
                    callee = _self_attr(func)
                    if callee is not None:
                        called.add(callee)
        direct[name] = acquired
        calls[name] = called
    closed = {name: set(acquired) for name, acquired in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in closed:
            for callee in calls[name]:
                extra = closed.get(callee, set()) - closed[name]
                if extra:
                    closed[name] |= extra
                    changed = True
    return closed


def build_lock_graph(ctx: AnalysisContext) -> tuple[LockGraph, list[Finding]]:
    """Build the repository-wide graph; returns it plus unlocked-write findings."""
    graph = LockGraph()
    write_findings: list[Finding] = []
    for relpath in ctx.iter_python("src"):
        module = ctx.module_name(relpath)
        tree = ctx.tree(relpath)
        for cls in [n for n in tree.body if isinstance(n, ast.ClassDef)]:
            info = _collect_class_locks(module, cls)
            if not (info.plain or info.families):
                continue
            acquired_of = _acquired_fixpoint(info)
            writes: list[tuple[str, int, str, bool]] = []
            for method in info.methods.values():
                walker = _FunctionWalker(relpath, info, graph, acquired_of, writes)
                walker.run(method)
            # Attributes the class itself writes under a lock somewhere...
            guarded_attrs = {
                attr
                for (_file, _line, attr, locked) in writes
                if locked and attr not in (info.plain | info.families)
            }
            # ...flag writes to them outside every lock (and outside __init__).
            method_ranges = sorted(
                (method.lineno, method.end_lineno or method.lineno, name)
                for name, method in info.methods.items()
            )

            def _method_of(line: int) -> str | None:
                for lo, hi, name in method_ranges:
                    if lo <= line <= hi:
                        return name
                return None

            for file, line, attr, locked in writes:
                if locked or attr not in guarded_attrs:
                    continue
                if _method_of(line) == "__init__":
                    continue
                write_findings.append(
                    Finding(
                        rule="lock-discipline",
                        file=file,
                        line=line,
                        message=(
                            f"{info.name}.{attr} is written under a lock elsewhere "
                            f"but this write holds none"
                        ),
                        severity="warning",
                    )
                )
    return graph, write_findings


@rule("lock-discipline", "acquisition-order cycles and unlocked shared writes")
def check_lock_discipline(ctx: AnalysisContext) -> list[Finding]:
    graph, findings = build_lock_graph(ctx)
    for cycle in graph.cycles():
        ring = " -> ".join(cycle + [cycle[0]])
        sites = []
        for src, dst in zip(cycle, cycle[1:] + [cycle[0]]):
            for file, line in graph.edges.get((src, dst), [])[:1]:
                sites.append(f"{file}:{line}")
        first = graph.edges.get((cycle[0], cycle[1 % len(cycle)]), [("<unknown>", 0)])[0]
        findings.append(
            Finding(
                rule="lock-discipline",
                file=first[0],
                line=first[1],
                message=(
                    f"lock-order cycle {ring} (potential deadlock; "
                    f"edges at {', '.join(sites)})"
                ),
            )
        )
    return findings
