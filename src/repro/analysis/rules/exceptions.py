"""Exception-hygiene rule: no silent broad excepts on serving-critical paths.

A handler is a *silent swallow* when it catches everything (bare
``except:``, ``except Exception``, ``except BaseException``) and its body
neither re-raises nor does anything observable -- no call (logging, a
metrics counter), no assignment (a recorded fallback), just ``pass`` /
``continue`` / ``break`` / ``return <constant>``.  On the server, sharding
and WAL paths such a handler turns a failing subsystem into a silent
wrong answer; every legitimate keep-serving catch must at least count the
error somewhere an operator can see.

The rule scans every module under ``src`` (the definition is strict enough
to be repo-wide); argued exceptions go into the allowlist with a reason.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import AnalysisContext, Finding, rule

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
        if name in _BROAD:
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body has no observable effect at all."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call, ast.Assign, ast.AugAssign, ast.AnnAssign)):
            return False
        if isinstance(node, ast.Return) and node.value is not None:
            if not isinstance(node.value, ast.Constant):
                return False
    return True


@rule("exception-hygiene", "broad except handlers must log, count or re-raise")
def check_exception_hygiene(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for relpath in ctx.iter_python("src"):
        tree = ctx.tree(relpath)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and _is_silent(node):
                caught = "bare except" if node.type is None else "broad except"
                findings.append(
                    Finding(
                        rule="exception-hygiene",
                        file=relpath,
                        line=node.lineno,
                        message=(
                            f"{caught} swallows the error silently "
                            f"(log, count or re-raise)"
                        ),
                    )
                )
    return findings
