"""Shipped rules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    drift,
    exceptions,
    locks,
    numpy_hotpath,
    wire_compat,
)
