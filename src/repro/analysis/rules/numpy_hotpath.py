"""Numpy hot-path rule: no quadratic appends in loops, no silent float64.

* ``np.append`` / ``np.concatenate`` / ``np.vstack`` / ``np.hstack``
  *inside a loop body* reallocates and copies the whole array every
  iteration -- the gather-into-a-list-then-concatenate-once pattern the
  columnar pipeline uses everywhere else is O(n) instead of O(n^2).
* ``np.zeros`` / ``np.ones`` / ``np.empty`` / ``np.full`` without an
  explicit ``dtype=`` allocates float64; the columnar pipeline is integer
  end to end (ids, offsets, counters), so a silent float64 allocation is
  an 8-byte-per-cell upcast that later comparisons quietly absorb.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import AnalysisContext, Finding, rule

_GROWING = {"append", "concatenate", "vstack", "hstack"}
_ALLOCATING = {"zeros", "ones", "empty", "full"}


def _numpy_call(node: ast.Call) -> str | None:
    """``np.X(...)`` / ``numpy.X(...)`` -> ``X``, else None."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _has_dtype(node: ast.Call) -> bool:
    return any(keyword.arg == "dtype" for keyword in node.keywords)


class _LoopVisitor(ast.NodeVisitor):
    """Collects numpy calls together with their lexical loop depth."""

    def __init__(self) -> None:
        self.depth = 0
        self.grow_in_loop: list[tuple[str, int]] = []
        self.untyped_alloc: list[tuple[str, int]] = []

    def _visit_loop(self, node: ast.AST) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        name = _numpy_call(node)
        if name in _GROWING and self.depth > 0:
            self.grow_in_loop.append((name, node.lineno))
        elif name in _ALLOCATING and not _has_dtype(node):
            self.untyped_alloc.append((name, node.lineno))
        self.generic_visit(node)


@rule("numpy-hotpath", "no array growth in loops, no implicit float64 allocations")
def check_numpy_hotpath(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for relpath in ctx.iter_python("src"):
        source = ctx.source(relpath)
        if "import numpy" not in source:
            continue
        visitor = _LoopVisitor()
        visitor.visit(ctx.tree(relpath))
        for name, line in visitor.grow_in_loop:
            findings.append(
                Finding(
                    rule="numpy-hotpath",
                    file=relpath,
                    line=line,
                    message=(
                        f"np.{name} inside a loop copies the whole array every "
                        f"iteration; gather into a list and concatenate once"
                    ),
                )
            )
        for name, line in visitor.untyped_alloc:
            findings.append(
                Finding(
                    rule="numpy-hotpath",
                    file=relpath,
                    line=line,
                    message=f"np.{name} without an explicit dtype allocates float64",
                    severity="warning",
                )
            )
    return findings
