"""Synthetic molecule-like graph workloads (AIDS / Protein stand-ins).

Graph-edit-distance filtering is driven by label selectivity: the AIDS
compounds have many vertex labels (selective parts), the Protein graphs have
very few (parts match almost anything).  The generator builds small connected
graphs -- a random spanning tree plus a few extra edges, with configurable
vertex/edge label alphabets -- and plants near-duplicates produced by a small
number of random edit operations, so thresholded queries return non-empty
result sets.  Graph sizes are kept around 8-12 vertices so that exact GED
verification stays tractable in pure Python (the substitution for the paper's
26/33-vertex datasets recorded in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


@dataclass
class GraphWorkload:
    """A dataset of labelled graphs plus a query workload."""

    graphs: list[Graph]
    queries: list[Graph]

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def avg_vertices(self) -> float:
        if not self.graphs:
            return 0.0
        return sum(g.num_vertices for g in self.graphs) / len(self.graphs)


def _random_graph(
    rng: np.random.Generator,
    num_vertices: int,
    extra_edges: int,
    vertex_labels: list[str],
    edge_labels: list[str],
) -> Graph:
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, vertex_labels[int(rng.integers(0, len(vertex_labels)))])
    # Random spanning tree keeps the graph connected.
    for vertex in range(1, num_vertices):
        parent = int(rng.integers(0, vertex))
        graph.add_edge(vertex, parent, edge_labels[int(rng.integers(0, len(edge_labels)))])
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 10 * extra_edges + 10:
        attempts += 1
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, edge_labels[int(rng.integers(0, len(edge_labels)))])
        added += 1
    return graph


def _random_edit(
    rng: np.random.Generator, graph: Graph, vertex_labels: list[str], edge_labels: list[str]
) -> None:
    """Apply one random edit operation in place."""
    operation = int(rng.integers(0, 4))
    vertices = graph.vertices
    if operation == 0 and vertices:  # relabel a vertex
        vertex = vertices[int(rng.integers(0, len(vertices)))]
        graph.add_vertex(vertex, vertex_labels[int(rng.integers(0, len(vertex_labels)))])
    elif operation == 1 and graph.num_edges > 1:  # delete an edge
        u, v, _label = graph.edges()[int(rng.integers(0, graph.num_edges))]
        graph.remove_edge(u, v)
    elif operation == 2 and len(vertices) >= 2:  # insert an edge
        u = vertices[int(rng.integers(0, len(vertices)))]
        v = vertices[int(rng.integers(0, len(vertices)))]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, edge_labels[int(rng.integers(0, len(edge_labels)))])
    else:  # relabel an edge
        if graph.num_edges:
            u, v, _label = graph.edges()[int(rng.integers(0, graph.num_edges))]
            graph.remove_edge(u, v)
            graph.add_edge(u, v, edge_labels[int(rng.integers(0, len(edge_labels)))])


def molecule_workload(
    num_graphs: int,
    num_queries: int,
    min_vertices: int = 8,
    max_vertices: int = 12,
    extra_edges: int = 2,
    num_vertex_labels: int = 8,
    num_edge_labels: int = 3,
    duplicate_fraction: float = 0.5,
    max_edits: int = 4,
    seed: int = 0,
) -> GraphWorkload:
    """Generate a molecule-like labelled-graph workload with planted duplicates."""
    if num_graphs <= 0 or num_queries <= 0:
        raise ValueError("the workload needs at least one graph and one query")
    if min_vertices < 2 or max_vertices < min_vertices:
        raise ValueError("invalid vertex-count range")
    rng = np.random.default_rng(seed)
    vertex_labels = [f"V{i}" for i in range(num_vertex_labels)]
    edge_labels = [f"e{i}" for i in range(num_edge_labels)]

    def fresh() -> Graph:
        size = int(rng.integers(min_vertices, max_vertices + 1))
        return _random_graph(rng, size, extra_edges, vertex_labels, edge_labels)

    def noisy_copy(source: Graph) -> Graph:
        copy = source.copy()
        for _ in range(int(rng.integers(1, max_edits + 1))):
            _random_edit(rng, copy, vertex_labels, edge_labels)
        return copy

    num_sources = max(1, int(round(num_graphs * (1.0 - duplicate_fraction))))
    graphs = [fresh() for _ in range(num_sources)]
    while len(graphs) < num_graphs:
        graphs.append(noisy_copy(graphs[int(rng.integers(0, num_sources))]))
    queries = [
        noisy_copy(graphs[int(rng.integers(0, len(graphs)))]) for _ in range(num_queries)
    ]
    return GraphWorkload(graphs=graphs, queries=queries)


def aids_like(num_graphs: int = 150, num_queries: int = 10, seed: int = 0) -> GraphWorkload:
    """Stand-in for the AIDS antivirus compounds (many vertex labels)."""
    return molecule_workload(
        num_graphs=num_graphs,
        num_queries=num_queries,
        min_vertices=8,
        max_vertices=12,
        extra_edges=2,
        num_vertex_labels=10,
        num_edge_labels=3,
        max_edits=4,
        seed=seed,
    )


def protein_like(num_graphs: int = 100, num_queries: int = 8, seed: int = 1) -> GraphWorkload:
    """Stand-in for the Protein structures (few vertex labels, denser)."""
    return molecule_workload(
        num_graphs=num_graphs,
        num_queries=num_queries,
        min_vertices=8,
        max_vertices=11,
        extra_edges=4,
        num_vertex_labels=3,
        num_edge_labels=5,
        max_edits=4,
        seed=seed,
    )
