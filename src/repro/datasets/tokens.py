"""Synthetic token-set workloads (Enron / DBLP stand-ins).

Prefix filtering is driven by token-frequency skew: rare tokens make short,
selective prefixes.  The generator draws tokens from a Zipfian distribution
over an integer universe, then creates near-duplicate records by resampling a
small fraction of each source record's tokens, which is what makes high
Jaccard thresholds return non-trivial result sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TokenSetWorkload:
    """A dataset of token sets plus a query workload.

    Tokens are non-negative integers.  Records are Python lists of *distinct*
    tokens in arbitrary order; the searchers apply their own global ordering.
    """

    records: list[list[int]]
    queries: list[list[int]]
    universe_size: int

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def avg_record_size(self) -> float:
        if not self.records:
            return 0.0
        return sum(len(r) for r in self.records) / len(self.records)


def _zipf_tokens(rng: np.random.Generator, size: int, universe: int, skew: float) -> list[int]:
    """Draw ``size`` distinct tokens from a truncated Zipf distribution."""
    tokens: set[int] = set()
    # Rejection-sample within the universe; Zipf tails beyond the universe are
    # re-drawn, which preserves the skew of the head.
    while len(tokens) < size:
        draws = rng.zipf(skew, size=size * 2)
        for token in draws:
            if token <= universe:
                tokens.add(int(token - 1))
                if len(tokens) == size:
                    break
    return list(tokens)


def zipfian_set_workload(
    num_records: int,
    num_queries: int,
    universe_size: int = 5000,
    avg_size: int = 40,
    size_spread: int = 10,
    skew: float = 1.2,
    duplicate_fraction: float = 0.5,
    noise_fraction: float = 0.1,
    seed: int = 0,
) -> TokenSetWorkload:
    """Generate a Zipfian token-set workload with planted near-duplicates.

    Args:
        num_records: number of data records.
        num_queries: number of queries; each query is a noisy copy of a random
            data record so high-similarity thresholds have results.
        universe_size: number of distinct tokens.
        avg_size: average record size (tokens per record).
        size_spread: half-width of the uniform record-size distribution.
        skew: Zipf exponent of the token-frequency distribution.
        duplicate_fraction: fraction of records generated as noisy copies of
            earlier records (creates result clusters).
        noise_fraction: fraction of tokens replaced when creating a noisy copy.
        seed: RNG seed.
    """
    if num_records <= 0 or num_queries <= 0:
        raise ValueError("the workload needs at least one record and one query")
    if avg_size - size_spread < 1:
        raise ValueError("avg_size - size_spread must be at least 1")
    rng = np.random.default_rng(seed)
    records: list[list[int]] = []

    def noisy_copy(source: list[int]) -> list[int]:
        copy = list(source)
        num_noise = max(1, int(round(len(copy) * noise_fraction)))
        for _ in range(num_noise):
            position = int(rng.integers(0, len(copy)))
            replacement = _zipf_tokens(rng, 1, universe_size, skew)[0]
            copy[position] = replacement
        return sorted(set(copy))

    num_sources = max(1, int(round(num_records * (1.0 - duplicate_fraction))))
    for _ in range(num_sources):
        size = int(rng.integers(avg_size - size_spread, avg_size + size_spread + 1))
        records.append(sorted(_zipf_tokens(rng, size, universe_size, skew)))
    while len(records) < num_records:
        source = records[int(rng.integers(0, num_sources))]
        records.append(noisy_copy(source))
    rng.shuffle(records)

    queries = []
    for _ in range(num_queries):
        source = records[int(rng.integers(0, len(records)))]
        queries.append(noisy_copy(source))
    return TokenSetWorkload(records=records, queries=queries, universe_size=universe_size)


def enron_like(
    num_records: int = 3000, num_queries: int = 30, seed: int = 0
) -> TokenSetWorkload:
    """Long records (~100 tokens) standing in for tokenized Enron emails."""
    return zipfian_set_workload(
        num_records=num_records,
        num_queries=num_queries,
        universe_size=20000,
        avg_size=100,
        size_spread=30,
        skew=1.15,
        duplicate_fraction=0.5,
        noise_fraction=0.08,
        seed=seed,
    )


def dblp_like(
    num_records: int = 5000, num_queries: int = 50, seed: int = 1
) -> TokenSetWorkload:
    """Short records (~14 tokens) standing in for DBLP author/title records."""
    return zipfian_set_workload(
        num_records=num_records,
        num_queries=num_queries,
        universe_size=8000,
        avg_size=14,
        size_spread=5,
        skew=1.25,
        duplicate_fraction=0.5,
        noise_fraction=0.12,
        seed=seed,
    )
