"""Synthetic string workloads (IMDB / PubMed stand-ins).

String edit-distance filtering depends on q-gram frequency skew and on the
existence of near-duplicate strings within small edit distances.  The
generator composes strings from a skewed syllable vocabulary (producing
realistic repeated q-grams) and plants noisy duplicates created with random
edit operations.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np

_SYLLABLES = [
    "an", "ar", "el", "en", "er", "in", "is", "le", "li", "lo",
    "ma", "mi", "na", "ne", "on", "or", "ra", "re", "ri", "ro",
    "sa", "se", "si", "ta", "te", "ti", "to", "va", "vi", "zu",
]

_TITLE_WORDS = [
    "analysis", "protein", "clinical", "study", "gene", "expression", "cell",
    "human", "patients", "effects", "treatment", "model", "cancer", "brain",
    "structure", "function", "activity", "response", "disease", "molecular",
    "binding", "receptor", "factor", "growth", "acid", "dna", "rna", "tumor",
    "membrane", "protein", "kinase", "pathway", "signal", "regulation",
]


@dataclass
class StringWorkload:
    """A dataset of strings plus a query workload."""

    records: list[str]
    queries: list[str]

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def avg_length(self) -> float:
        if not self.records:
            return 0.0
        return sum(len(r) for r in self.records) / len(self.records)


def _random_edits(rng: np.random.Generator, text: str, num_edits: int, alphabet: str) -> str:
    """Apply ``num_edits`` random insert / delete / substitute operations."""
    chars = list(text)
    for _ in range(num_edits):
        operation = rng.integers(0, 3)
        if operation == 0 and len(chars) > 1:  # deletion
            position = int(rng.integers(0, len(chars)))
            del chars[position]
        elif operation == 1:  # insertion
            position = int(rng.integers(0, len(chars) + 1))
            chars.insert(position, alphabet[int(rng.integers(0, len(alphabet)))])
        else:  # substitution
            position = int(rng.integers(0, len(chars)))
            chars[position] = alphabet[int(rng.integers(0, len(alphabet)))]
    return "".join(chars)


def _name(rng: np.random.Generator) -> str:
    def word() -> str:
        count = int(rng.integers(2, 5))
        syllables = [
            _SYLLABLES[int(rng.integers(0, len(_SYLLABLES)))] for _ in range(count)
        ]
        return "".join(syllables)

    return f"{word()} {word()}"


def _title(rng: np.random.Generator, num_words: int) -> str:
    words = [
        _TITLE_WORDS[int(rng.integers(0, len(_TITLE_WORDS)))] for _ in range(num_words)
    ]
    return " ".join(words)


def name_workload(
    num_records: int,
    num_queries: int,
    duplicate_fraction: float = 0.5,
    max_edits: int = 3,
    seed: int = 0,
) -> StringWorkload:
    """Short name-like strings (IMDB actor-name stand-in, ~16 characters)."""
    if num_records <= 0 or num_queries <= 0:
        raise ValueError("the workload needs at least one record and one query")
    rng = np.random.default_rng(seed)
    alphabet = string.ascii_lowercase
    num_sources = max(1, int(round(num_records * (1.0 - duplicate_fraction))))
    records = [_name(rng) for _ in range(num_sources)]
    while len(records) < num_records:
        source = records[int(rng.integers(0, num_sources))]
        records.append(_random_edits(rng, source, int(rng.integers(1, max_edits + 1)), alphabet))
    rng.shuffle(records)
    queries = []
    for _ in range(num_queries):
        source = records[int(rng.integers(0, len(records)))]
        queries.append(_random_edits(rng, source, int(rng.integers(0, max_edits + 1)), alphabet))
    return StringWorkload(records=records, queries=queries)


def title_workload(
    num_records: int,
    num_queries: int,
    avg_words: int = 14,
    duplicate_fraction: float = 0.5,
    max_edits: int = 8,
    seed: int = 0,
) -> StringWorkload:
    """Long title-like strings (PubMed title stand-in, ~100 characters)."""
    if num_records <= 0 or num_queries <= 0:
        raise ValueError("the workload needs at least one record and one query")
    rng = np.random.default_rng(seed)
    alphabet = string.ascii_lowercase + " "
    num_sources = max(1, int(round(num_records * (1.0 - duplicate_fraction))))
    records = [
        _title(rng, int(rng.integers(max(2, avg_words - 4), avg_words + 5)))
        for _ in range(num_sources)
    ]
    while len(records) < num_records:
        source = records[int(rng.integers(0, num_sources))]
        records.append(_random_edits(rng, source, int(rng.integers(1, max_edits + 1)), alphabet))
    rng.shuffle(records)
    queries = []
    for _ in range(num_queries):
        source = records[int(rng.integers(0, len(records)))]
        queries.append(_random_edits(rng, source, int(rng.integers(0, max_edits + 1)), alphabet))
    return StringWorkload(records=records, queries=queries)


def imdb_like(num_records: int = 5000, num_queries: int = 50, seed: int = 0) -> StringWorkload:
    """Stand-in for the IMDB actor-name dataset."""
    return name_workload(num_records, num_queries, seed=seed)


def pubmed_like(num_records: int = 2000, num_queries: int = 20, seed: int = 1) -> StringWorkload:
    """Stand-in for the PubMed publication-title dataset."""
    return title_workload(num_records, num_queries, seed=seed)
