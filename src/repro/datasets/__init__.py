"""Synthetic dataset generators.

The paper evaluates on eight real datasets (GIST, SIFT, Enron, DBLP, IMDB,
PubMed, AIDS, Protein) that are not redistributable here.  Each generator in
this package produces a laptop-scale synthetic stand-in that preserves the
properties the filters are sensitive to:

* :mod:`repro.datasets.binary` -- clustered binary vectors (GIST / SIFT
  stand-ins): a background of near-uniform vectors plus planted clusters so
  that thresholded queries have non-trivial result sets.
* :mod:`repro.datasets.tokens` -- Zipfian token sets with noisy duplicates
  (Enron / DBLP stand-ins): token-frequency skew drives prefix filtering.
* :mod:`repro.datasets.text` -- name-like and title-like strings with edit
  noise (IMDB / PubMed stand-ins).
* :mod:`repro.datasets.molecules` -- molecule-like labelled graphs with edit
  noise (AIDS / Protein stand-ins).

All generators take an explicit ``seed`` and are deterministic.
"""

from repro.datasets.binary import BinaryWorkload, gist_like, sift_like
from repro.datasets.tokens import TokenSetWorkload, dblp_like, enron_like
from repro.datasets.text import StringWorkload, imdb_like, pubmed_like

__all__ = [
    "BinaryWorkload",
    "gist_like",
    "sift_like",
    "TokenSetWorkload",
    "enron_like",
    "dblp_like",
    "StringWorkload",
    "imdb_like",
    "pubmed_like",
]
