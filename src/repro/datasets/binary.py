"""Synthetic binary-vector workloads (GIST / SIFT stand-ins).

The GIST and SIFT datasets of the paper are binary codes produced by spectral
hashing over image descriptors.  What the partition filters are sensitive to
is (a) the existence of query results at realistic thresholds and (b) a
dominant mass of far-away background vectors that must be filtered out.  The
generator therefore plants clusters of near-duplicate codes inside a uniform
background and samples queries from the clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BinaryWorkload:
    """A dataset of binary vectors plus a query workload.

    Attributes:
        vectors: ``(n, d)`` 0/1 matrix of data vectors.
        queries: ``(q, d)`` 0/1 matrix of query vectors.
        d: dimensionality.
    """

    vectors: np.ndarray
    queries: np.ndarray

    @property
    def d(self) -> int:
        return int(self.vectors.shape[1])

    @property
    def num_vectors(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def num_queries(self) -> int:
        return int(self.queries.shape[0])


def clustered_binary_workload(
    num_vectors: int,
    d: int,
    num_queries: int,
    num_clusters: int = 20,
    cluster_fraction: float = 0.5,
    cluster_radius: float = 0.08,
    query_radius: float = 0.10,
    seed: int = 0,
) -> BinaryWorkload:
    """Generate a clustered binary workload.

    Args:
        num_vectors: number of data vectors.
        d: dimensionality (e.g. 256 for the GIST stand-in, 512 for SIFT).
        num_queries: number of query vectors, sampled near cluster centres so
            thresholded queries have results.
        num_clusters: number of planted clusters.
        cluster_fraction: fraction of data vectors drawn from clusters (the
            rest is uniform background).
        cluster_radius: expected fraction of flipped bits between a cluster
            member and its centre.
        query_radius: expected fraction of flipped bits between a query and
            its cluster centre.
        seed: RNG seed.
    """
    if num_vectors <= 0 or num_queries <= 0:
        raise ValueError("the workload needs at least one vector and one query")
    if d <= 0:
        raise ValueError("dimensionality must be positive")
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ValueError("cluster_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    centers = rng.integers(0, 2, size=(max(1, num_clusters), d), dtype=np.uint8)

    num_clustered = int(round(num_vectors * cluster_fraction))
    num_background = num_vectors - num_clustered

    members = []
    if num_clustered:
        assignment = rng.integers(0, len(centers), size=num_clustered)
        flips = rng.random((num_clustered, d)) < cluster_radius
        members.append(np.bitwise_xor(centers[assignment], flips.astype(np.uint8)))
    if num_background:
        members.append(rng.integers(0, 2, size=(num_background, d), dtype=np.uint8))
    vectors = np.concatenate(members, axis=0)
    rng.shuffle(vectors, axis=0)

    query_assignment = rng.integers(0, len(centers), size=num_queries)
    query_flips = rng.random((num_queries, d)) < query_radius
    queries = np.bitwise_xor(centers[query_assignment], query_flips.astype(np.uint8))
    return BinaryWorkload(vectors=vectors, queries=queries)


def gist_like(
    num_vectors: int = 20000, num_queries: int = 50, seed: int = 0
) -> BinaryWorkload:
    """A 256-dimensional stand-in for the GIST binary codes."""
    return clustered_binary_workload(
        num_vectors=num_vectors,
        d=256,
        num_queries=num_queries,
        num_clusters=32,
        cluster_fraction=0.4,
        cluster_radius=0.08,
        query_radius=0.12,
        seed=seed,
    )


def sift_like(
    num_vectors: int = 20000, num_queries: int = 50, seed: int = 1
) -> BinaryWorkload:
    """A 512-dimensional stand-in for the SIFT binary codes."""
    return clustered_binary_workload(
        num_vectors=num_vectors,
        d=512,
        num_queries=num_queries,
        num_clusters=32,
        cluster_fraction=0.4,
        cluster_radius=0.06,
        query_radius=0.10,
        seed=seed,
    )
