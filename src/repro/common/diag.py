"""Diagnostics layer: continuous profiler, tail sampling and SLO monitors.

Four facilities that answer "why is p99 slow *right now*", layered on the
metrics/tracing substrate of :mod:`repro.common.obs`:

* a **continuous sampling profiler** -- a daemon thread samples
  ``sys._current_frames()`` at a configurable rate and aggregates folded
  (flamegraph-collapsed) stacks per *thread role*: the server's asyncio
  loop is the ``batcher``, the ``engine-batch`` executor thread is the
  ``executor``, ``auto-compact-*`` threads are ``compaction`` and shard
  worker processes report as ``shard-worker``.  Memory is bounded (at most
  ``max_stacks`` distinct stacks per role, overflow folded into a
  ``(other)`` pseudo-stack), snapshots are JSON-safe and mergeable across
  processes, and ``render_folded`` emits standard collapsed-stack lines
  that flamegraph tooling consumes directly.

* a **tail-based trace sampler** -- same ``add/snapshot/__len__`` surface
  as :class:`repro.common.obs.TraceBuffer`, but with a retention policy:
  slow traces (over ``slow_ms``) and error traces are *always* kept in a
  dedicated ring, while ordinary traces pass through a budgeted stride
  sampler (``budget=0.01`` keeps ~1%).  Tracing can stay enabled under
  load without the interesting tail being evicted by the boring middle.

* a **span->metrics bridge** -- folds span trees into per-backend,
  per-stage *self-time* counters (span duration minus its children), the
  continuously-collected cost profile the ROADMAP's cost-based planner
  will consume.

* **SLO burn-rate monitors** -- a multi-window (fast 5m / slow 1h)
  burn-rate monitor over a latency/error objective, plus a per-shard
  health scoreboard for the sharded engine.

Everything here is stdlib-only and safe to import in shard worker
processes.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Callable, Iterable

from repro.common import obs

PROFILE_WIRE_VERSION = 1

# Default sampling rate. 67 Hz resolves millisecond-scale stages while the
# sampling thread itself stays well under 1% of one core; a prime-ish rate
# avoids beating against periodic work.
DEFAULT_PROFILE_HZ = 67.0

# A sampled stack deeper than this is truncated at the root end; the leaf
# frames (where self time is spent) are always retained.
_STACK_DEPTH_LIMIT = 64

# Pseudo-stack that absorbs samples once a role has max_stacks distinct
# folded stacks, keeping profiler memory bounded on pathological workloads.
OVERFLOW_STACK = "(overflow)"


def thread_role(name: str, main_role: str = "batcher") -> str:
    """Map a thread name to its engine stage role.

    ``main_role`` is what ``MainThread`` reports as: the asyncio accept loop
    (``batcher``) when profiling a server process, ``shard-worker`` when
    profiling inside a shard worker process.
    """
    if name.startswith("engine-batch"):
        return "executor"
    if name.startswith("engine-server") or name.startswith("asyncio"):
        return "batcher"
    if name.startswith("auto-compact"):
        return "compaction"
    if name.endswith("-supervisor") or name.startswith("supervisor"):
        return "supervisor"
    if name == "MainThread":
        return main_role
    return "other"


def _fold(frame) -> str:
    """Render one thread's frame chain as a collapsed stack, root first."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < _STACK_DEPTH_LIMIT:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Continuous sampling profiler with bounded memory.

    ``start()`` spawns a daemon thread that wakes ``hz`` times a second,
    walks ``sys._current_frames()`` and attributes each thread's folded
    stack to its role.  ``snapshot()`` returns a JSON-safe, mergeable dump
    at any time (running or stopped); ``clear()`` resets the aggregate.
    The profiler's own sampling thread is excluded from its samples.
    """

    def __init__(
        self,
        hz: float = DEFAULT_PROFILE_HZ,
        max_stacks: int = 512,
        main_role: str = "batcher",
    ) -> None:
        if not hz > 0:
            raise ValueError("profiler hz must be positive")
        if max_stacks < 1:
            raise ValueError("profiler max_stacks must be at least 1")
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self.main_role = main_role
        self._lock = threading.Lock()
        self._roles: dict[str, dict[str, int]] = {}
        self._ticks = 0
        self._active_s = 0.0
        self._t0: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        with self._lock:
            if self._thread is not None:
                return self
            self._stop = threading.Event()
            self._t0 = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run, name="diag-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            stop = self._stop
            self._thread = None
        if thread is None:
            return
        stop.set()
        thread.join(timeout=2.0)
        with self._lock:
            if self._t0 is not None:
                self._active_s += time.perf_counter() - self._t0
                self._t0 = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def clear(self) -> None:
        with self._lock:
            self._roles = {}
            self._ticks = 0
            self._active_s = 0.0
            if self._t0 is not None:
                self._t0 = time.perf_counter()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample(me)

    def _sample(self, skip_ident: int) -> None:
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        with self._lock:
            self._ticks += 1
            for ident, frame in frames.items():
                if ident == skip_ident:
                    continue
                name = names.get(ident)
                if name is None:
                    continue  # thread died between the two snapshots
                role = thread_role(name, self.main_role)
                stack = _fold(frame)
                bucket = self._roles.setdefault(role, {})
                if stack in bucket or len(bucket) < self.max_stacks:
                    bucket[stack] = bucket.get(stack, 0) + 1
                else:
                    bucket[OVERFLOW_STACK] = bucket.get(OVERFLOW_STACK, 0) + 1

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump; ``samples`` per role count thread-samples."""
        with self._lock:
            duration = self._active_s
            if self._t0 is not None:
                duration += time.perf_counter() - self._t0
            roles = {
                role: {"samples": sum(stacks.values()), "stacks": dict(stacks)}
                for role, stacks in self._roles.items()
            }
            return {
                "diag_wire_version": PROFILE_WIRE_VERSION,
                "hz": self.hz,
                "running": self._thread is not None,
                "duration_s": round(duration, 3),
                "ticks": self._ticks,
                "roles": roles,
            }


def merge_profiles(wires: Iterable[dict]) -> dict:
    """Fold profiler snapshots (e.g. parent + shard workers) into one."""
    merged: dict = {
        "diag_wire_version": PROFILE_WIRE_VERSION,
        "hz": 0.0,
        "running": False,
        "duration_s": 0.0,
        "ticks": 0,
        "roles": {},
    }
    for wire in wires:
        if not wire:
            continue
        merged["hz"] = max(merged["hz"], float(wire.get("hz", 0.0)))
        merged["running"] = merged["running"] or bool(wire.get("running"))
        merged["duration_s"] = max(merged["duration_s"], float(wire.get("duration_s", 0.0)))
        merged["ticks"] += int(wire.get("ticks", 0))
        for role, dumped in wire.get("roles", {}).items():
            bucket = merged["roles"].setdefault(role, {"samples": 0, "stacks": {}})
            bucket["samples"] += int(dumped.get("samples", 0))
            stacks = bucket["stacks"]
            for stack, count in dumped.get("stacks", {}).items():
                stacks[stack] = stacks.get(stack, 0) + int(count)
    return merged


def profile_diff(before: dict, after: dict) -> dict:
    """The samples accumulated between two snapshots of one profiler."""
    roles: dict = {}
    before_roles = before.get("roles", {})
    for role, dumped in after.get("roles", {}).items():
        prior = before_roles.get(role, {}).get("stacks", {})
        stacks = {}
        for stack, count in dumped.get("stacks", {}).items():
            delta = int(count) - int(prior.get(stack, 0))
            if delta > 0:
                stacks[stack] = delta
        if stacks:
            roles[role] = {"samples": sum(stacks.values()), "stacks": stacks}
    return {
        "diag_wire_version": PROFILE_WIRE_VERSION,
        "hz": after.get("hz", 0.0),
        "running": after.get("running", False),
        "duration_s": round(
            float(after.get("duration_s", 0.0)) - float(before.get("duration_s", 0.0)), 3
        ),
        "ticks": int(after.get("ticks", 0)) - int(before.get("ticks", 0)),
        "roles": roles,
    }


def render_folded(profile: dict) -> str:
    """Collapsed-stack text (``role;frame;frame count``), flamegraph-ready."""
    lines: list[str] = []
    for role in sorted(profile.get("roles", {})):
        stacks = profile["roles"][role].get("stacks", {})
        for stack, count in sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"{role};{stack} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def top_self_frames(profile: dict, top: int = 15) -> list[dict]:
    """Hottest frames by *self* samples (the leaf of each folded stack)."""
    totals: dict[tuple[str, str], int] = {}
    all_samples = 0
    for role, dumped in profile.get("roles", {}).items():
        for stack, count in dumped.get("stacks", {}).items():
            leaf = stack.rsplit(";", 1)[-1]
            totals[(role, leaf)] = totals.get((role, leaf), 0) + int(count)
            all_samples += int(count)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        {
            "role": role,
            "frame": frame,
            "samples": count,
            "share": round(count / all_samples, 4) if all_samples else 0.0,
        }
        for (role, frame), count in ranked[: max(0, int(top))]
    ]


def role_attribution(profile: dict) -> dict[str, float]:
    """Fraction of all samples attributed to each thread role."""
    samples = {
        role: int(dumped.get("samples", 0))
        for role, dumped in profile.get("roles", {}).items()
    }
    total = sum(samples.values())
    if not total:
        return {}
    return {role: count / total for role, count in samples.items()}


# ---------------------------------------------------------------------------
# Tail-based trace sampling
# ---------------------------------------------------------------------------


class TailSampler:
    """Tail-based trace retention: keep the interesting, sample the rest.

    Drop-in for :class:`repro.common.obs.TraceBuffer` (``add`` / ``snapshot``
    / ``__len__``), with two retention classes:

    * **always-keep** -- traces flagged as errors, and traces whose
      end-to-end latency reaches ``slow_ms``, go to a dedicated ring that
      ordinary traffic can never evict;
    * **budgeted** -- every other trace passes a deterministic stride
      sampler: ``budget=1.0`` keeps everything (the old TraceBuffer
      behaviour), ``budget=0.01`` keeps every 100th.

    ``snapshot`` interleaves both rings newest-first, so ``/debug/traces``
    surfaces the slow tail alongside a representative sample of the rest.
    """

    def __init__(
        self,
        capacity: int = 128,
        budget: float = 1.0,
        slow_ms: float | None = None,
    ) -> None:
        if not 0.0 <= budget <= 1.0:
            raise ValueError("trace budget must be in [0, 1]")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        cap = max(1, int(capacity))
        self.budget = float(budget)
        self.slow_ms = slow_ms
        self._stride = 0 if budget == 0.0 else max(1, round(1.0 / budget))
        self._lock = threading.Lock()
        self._tail: "deque[tuple[int, dict]]" = deque(maxlen=cap)
        self._sampled: "deque[tuple[int, dict]]" = deque(maxlen=cap)
        self._seq = 0
        self._ordinary = 0
        self.offered = 0
        self.kept_slow = 0
        self.kept_error = 0
        self.kept_sampled = 0
        self.dropped = 0

    def add(self, trace_doc: dict, *, e2e_ms: float | None = None, error: bool = False) -> bool:
        """Offer a trace; returns True when retained."""
        if e2e_ms is None:
            e2e_ms = trace_doc.get("duration_ms")
        with self._lock:
            self._seq += 1
            self.offered += 1
            if error:
                self.kept_error += 1
                self._tail.append((self._seq, trace_doc))
                return True
            if self.slow_ms is not None and e2e_ms is not None and e2e_ms >= self.slow_ms:
                self.kept_slow += 1
                self._tail.append((self._seq, trace_doc))
                return True
            self._ordinary += 1
            if self._stride and self._ordinary % self._stride == 1 % self._stride:
                self.kept_sampled += 1
                self._sampled.append((self._seq, trace_doc))
                return True
            self.dropped += 1
            return False

    def snapshot(self, last: int | None = None) -> list[dict]:
        """Most recent first across both retention classes."""
        with self._lock:
            tagged = sorted(
                list(self._tail) + list(self._sampled), key=lambda sv: -sv[0]
            )
        docs = [doc for _, doc in tagged]
        return docs if last is None else docs[: max(0, int(last))]

    def __len__(self) -> int:
        with self._lock:
            return len(self._tail) + len(self._sampled)

    def stats(self) -> dict:
        with self._lock:
            return {
                "offered": self.offered,
                "kept_slow": self.kept_slow,
                "kept_error": self.kept_error,
                "kept_sampled": self.kept_sampled,
                "dropped": self.dropped,
                "budget": self.budget,
                "slow_ms": self.slow_ms,
            }


# ---------------------------------------------------------------------------
# Span -> metrics bridge
# ---------------------------------------------------------------------------


def span_self_times(trace_doc: dict) -> dict[str, float]:
    """Per-stage self time (ms) folded from one trace's span tree.

    Self time is a span's duration minus its children's, clamped at zero;
    repeated span names (e.g. ``shard[0]`` verify across batches) add up.
    """
    out: dict[str, float] = {}

    def walk(node: dict) -> None:
        children = node.get("children") or ()
        child_ms = sum(c.get("duration_ms", 0.0) for c in children)
        name = node.get("name", "?")
        self_ms = max(0.0, node.get("duration_ms", 0.0) - child_ms)
        out[name] = out.get(name, 0.0) + self_ms
        for child in children:
            walk(child)

    for span in trace_doc.get("spans", ()):
        walk(span)
    return out


class SpanMetricsBridge:
    """Folds span trees into per-backend per-stage self-time counters.

    Every recorded trace adds ``trace_stage_self_seconds_total{backend,
    stage}`` (plus a ``trace_stage_folds_total`` denominator), turning the
    sampled traces into the continuously-updated cost profile the planned
    cost-based optimizer reads: "on backend X, stage Y costs Z seconds of
    self time per traced request".
    """

    METRIC = "trace_stage_self_seconds_total"
    FOLDS = "trace_stage_folds_total"

    def __init__(self, registry: obs.MetricsRegistry) -> None:
        self.registry = registry
        # record() sits on the per-response hot path when diagnostics are
        # always-on, so instruments are resolved once per (backend, stage)
        # instead of paying the registry's lock + label-key sort per trace.
        self._counters: dict[tuple[str, str], obs.Counter] = {}
        self._folds: dict[str, obs.Counter] = {}

    def record(self, trace_doc: dict, backend: str = "") -> None:
        stages = span_self_times(trace_doc)
        if not stages:
            return
        for stage, self_ms in stages.items():
            counter = self._counters.get((backend, stage))
            if counter is None:
                counter = self.registry.counter(
                    self.METRIC,
                    "span self-time folded from traces",
                    backend=backend,
                    stage=stage,
                )
                self._counters[(backend, stage)] = counter
            counter.inc(self_ms / 1000.0)
        folds = self._folds.get(backend)
        if folds is None:
            folds = self.registry.counter(
                self.FOLDS, "traces folded into stage self-times", backend=backend
            )
            self._folds[backend] = folds
        folds.inc()


# ---------------------------------------------------------------------------
# SLO burn-rate monitoring
# ---------------------------------------------------------------------------


class SloMonitor:
    """Multi-window burn-rate monitor over a latency/error objective.

    The SLO is "a fraction ``objective`` of requests are *good*", where a
    request is bad when it errored or (with ``latency_ms`` set) exceeded
    the latency target.  Burn rate over a window is the observed bad
    fraction divided by the error budget ``1 - objective``: 1.0 means the
    budget is being spent exactly at the sustainable rate, 14.4 means a
    30-day budget burns in two days.  Following the multi-window pattern,
    :meth:`status` reports ``breaching`` only when *both* the fast and the
    slow window exceed their thresholds -- the fast window catches fresh
    regressions quickly, the slow window stops a brief blip from paging.

    Counts are bucketed at ``bucket_s`` granularity in a bounded ring, so
    memory is O(slow_window / bucket_s) regardless of traffic.  ``now``
    can be injected on every call for deterministic tests.
    """

    def __init__(
        self,
        objective: float = 0.99,
        latency_ms: float | None = None,
        fast_window_s: float = 300.0,
        slow_window_s: float = 3600.0,
        fast_burn: float = 14.4,
        slow_burn: float = 6.0,
        bucket_s: float = 10.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("SLO objective must be in (0, 1)")
        if latency_ms is not None and latency_ms <= 0:
            raise ValueError("SLO latency target must be positive")
        if not 0 < fast_window_s <= slow_window_s:
            raise ValueError("windows must satisfy 0 < fast <= slow")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        self.objective = float(objective)
        self.latency_ms = latency_ms
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.fast_burn = float(fast_burn)
        self.slow_burn = float(slow_burn)
        self.bucket_s = float(bucket_s)
        self._clock = clock
        self._lock = threading.Lock()
        max_buckets = int(self.slow_window_s / self.bucket_s) + 2
        self._buckets: "deque[list]" = deque(maxlen=max_buckets)  # [start, good, bad]

    def observe(self, latency_ms: float, error: bool = False, now: float | None = None) -> None:
        bad = error or (self.latency_ms is not None and latency_ms > self.latency_ms)
        now = self._clock() if now is None else now
        start = now - (now % self.bucket_s)
        with self._lock:
            if self._buckets and self._buckets[-1][0] == start:
                bucket = self._buckets[-1]
            else:
                bucket = [start, 0, 0]
                self._buckets.append(bucket)
            bucket[2 if bad else 1] += 1

    def _window_counts(self, seconds: float, now: float) -> tuple[int, int]:
        lo = now - seconds
        good = bad = 0
        for start, g, b in self._buckets:
            if start >= lo - self.bucket_s:
                good += g
                bad += b
        return good, bad

    def burn_rate(self, seconds: float, now: float | None = None) -> float:
        """Bad fraction over the window divided by the error budget."""
        now = self._clock() if now is None else now
        with self._lock:
            good, bad = self._window_counts(seconds, now)
        total = good + bad
        if not total:
            return 0.0
        return (bad / total) / (1.0 - self.objective)

    def status(self, now: float | None = None) -> dict:
        now = self._clock() if now is None else now
        with self._lock:
            fast_good, fast_bad = self._window_counts(self.fast_window_s, now)
            slow_good, slow_bad = self._window_counts(self.slow_window_s, now)
        budget = 1.0 - self.objective

        def window(good: int, bad: int, seconds: float, threshold: float) -> dict:
            total = good + bad
            rate = (bad / total) / budget if total else 0.0
            return {
                "seconds": seconds,
                "requests": total,
                "bad": bad,
                "burn_rate": round(rate, 4),
                "threshold": threshold,
            }

        fast = window(fast_good, fast_bad, self.fast_window_s, self.fast_burn)
        slow = window(slow_good, slow_bad, self.slow_window_s, self.slow_burn)
        return {
            "objective": self.objective,
            "latency_ms": self.latency_ms,
            "windows": {"fast": fast, "slow": slow},
            "breaching": bool(
                fast["burn_rate"] >= self.fast_burn and slow["burn_rate"] >= self.slow_burn
            ),
        }


class Supervisor:
    """A background self-healing loop: call ``tick`` every ``interval_s``.

    The replicated sharded engine runs one of these to respawn dead
    replicas and drive auto-compaction.  A tick that raises is recorded
    (count + last message) and the loop keeps going -- a transient failure
    in one sweep must not kill the healer; persistent failures surface
    through :meth:`status` on ``/healthz``-style probes.
    """

    def __init__(
        self,
        tick: Callable[[], None],
        interval_s: float = 0.2,
        name: str = "supervisor",
    ) -> None:
        if not interval_s > 0:
            raise ValueError("supervisor interval must be positive")
        self._tick = tick
        self.interval_s = float(interval_s)
        self.name = name
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._ticks = 0
        self._errors = 0
        self._last_error: str | None = None

    def start(self) -> None:
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._tick()
            except Exception as exc:
                with self._lock:
                    self._errors += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
            else:
                with self._lock:
                    self._ticks += 1

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def status(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "interval_s": self.interval_s,
                "running": self._thread is not None and self._thread.is_alive(),
                "ticks": self._ticks,
                "errors": self._errors,
                "last_error": self._last_error,
            }


class HealthScoreboard:
    """Per-shard rolling health for the sharded engine.

    Tracks requests, errors and worst latency per shard over a sliding
    window and grades each shard ``ok`` / ``degraded`` / ``failing``
    (``idle`` with no recent traffic).  A shard is degraded once any
    recent request failed, failing when at least half did.
    """

    def __init__(
        self,
        num_shards: int,
        window_s: float = 60.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if num_shards < 1:
            raise ValueError("scoreboard needs at least one shard")
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = threading.Lock()
        # Per shard: deque of (ts, latency_s, error) capped to keep memory
        # bounded even if pruning lags behind a traffic burst.
        self._events: list[deque] = [deque(maxlen=4096) for _ in range(num_shards)]

    def observe(
        self,
        shard: int,
        latency_s: float = 0.0,
        error: bool = False,
        now: float | None = None,
    ) -> None:
        if not 0 <= shard < len(self._events):
            return
        now = self._clock() if now is None else now
        with self._lock:
            events = self._events[shard]
            events.append((now, float(latency_s), bool(error)))
            self._prune(events, now)

    def _prune(self, events: deque, now: float) -> None:
        lo = now - self.window_s
        while events and events[0][0] < lo:
            events.popleft()

    def report(self, now: float | None = None) -> list[dict]:
        now = self._clock() if now is None else now
        out: list[dict] = []
        with self._lock:
            for shard, events in enumerate(self._events):
                self._prune(events, now)
                requests = len(events)
                errors = sum(1 for _, _, err in events if err)
                worst = max((lat for _, lat, err in events if not err), default=0.0)
                if not requests:
                    status = "idle"
                elif errors * 2 >= requests:
                    status = "failing"
                elif errors:
                    status = "degraded"
                else:
                    status = "ok"
                out.append(
                    {
                        "shard": shard,
                        "window_s": self.window_s,
                        "requests": requests,
                        "errors": errors,
                        "error_rate": round(errors / requests, 4) if requests else 0.0,
                        "max_latency_ms": round(worst * 1000.0, 3),
                        "status": status,
                    }
                )
        return out
