"""Metrics registry and request tracing for the serving stack.

Two small, dependency-free facilities shared by the engine, the sharded
engine and the HTTP server:

* a **metrics registry** -- named counters, gauges and fixed-bucket latency
  histograms.  Instruments are get-or-created by ``(name, labels)``, are
  cheap to update under a lock-free fast path (plain attribute writes guarded
  by the GIL), can be snapshotted to a JSON-safe wire dict, **merged** across
  processes (shard workers ship their registries over the existing pickle
  IPC and the parent folds them together), and rendered in the Prometheus
  text exposition format for ``GET /metrics``.  Histogram p50/p95/p99 are
  derived by linear interpolation inside the owning bucket, so merged
  shard histograms answer the same quantile queries as an unsharded one.
  Histograms optionally record an **exemplar** per bucket -- the trace id of
  a recent observation that landed there -- rendered in OpenMetrics
  ``# {trace_id="..."}`` syntax so a slow bucket links to a replayable trace
  in ``/debug/traces``.  Exemplars survive ``merge_wire`` (newest wins).

* **request tracing** -- a span API (``with span("verify"): ...``) built on a
  :class:`contextvars.ContextVar`.  When no trace is active ``span()``
  returns a shared no-op context manager after a single guard check, so the
  disabled path costs one function call and one ContextVar read (bounded by
  a micro-bench test).  When a trace *is* active, spans nest into a tree of
  ``{"name", "start_ms", "duration_ms", "children"}`` nodes that the server
  stitches into an end-to-end request timeline (coalesce wait -> batch exec
  -> per-shard candidate/verify -> merge), retrievable via
  ``Response.trace``, ``GET /debug/traces`` and the slow-query log.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Iterable, Sequence

# Version 2 added optional per-bucket histogram exemplars; merge_wire accepts
# both versions (exemplars are simply absent from v1 dumps).
OBS_WIRE_VERSION = 2

# Versions merge_wire still decodes (v1 dumps are a subset of v2).
SUPPORTED_OBS_WIRE_VERSIONS = frozenset({1, 2})

# Default latency buckets (seconds).  Tuned for the engine's range: a cached
# hit is ~10us, a cold graph query a few hundred ms.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

# Micro-batch sizes are small integers; a dedicated bucket ladder keeps the
# histogram readable.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing count (float-valued for time totals)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, delta-store size)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with derivable quantiles and exact sum/count.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  Two histograms with the same bucket ladder merge
    by element-wise addition, which is exactly how the parent combines the
    per-shard-worker latency histograms: the merged histogram is
    indistinguishable from one that observed every sample itself.

    When an observation carries a ``trace_id``, the owning bucket remembers
    it as an exemplar ``(trace_id, value, unix_ts)``.  Exemplar storage is
    lazy (``None`` until the first traced observation), merges newest-wins,
    and is bounded to one exemplar per bucket.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "exemplars")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("histogram buckets must be distinct and ascending")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0
        # One (trace_id, value, unix_ts) per bucket, or None; allocated lazily
        # so untraced histograms pay nothing.
        self.exemplars: list[tuple[str, float, float] | None] | None = None

    def _bucket_index(self, value: float) -> int:
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                return i
        return len(self.buckets)

    def observe(self, value: float, trace_id: str | None = None) -> None:
        self.sum += value
        self.count += 1
        i = self._bucket_index(value)
        self.counts[i] += 1
        if trace_id is not None:
            if self.exemplars is None:
                self.exemplars = [None] * (len(self.buckets) + 1)
            self.exemplars[i] = (str(trace_id), float(value), time.time())

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count
        if other.exemplars is not None:
            self._merge_exemplars(other.exemplars)

    def _merge_exemplars(
        self, incoming: Sequence[tuple[str, float, float] | None]
    ) -> None:
        """Newest observation wins per bucket (timestamps are unix seconds)."""
        if self.exemplars is None:
            self.exemplars = [None] * (len(self.buckets) + 1)
        for i, ex in enumerate(incoming):
            if ex is None:
                continue
            mine = self.exemplars[i]
            if mine is None or ex[2] >= mine[2]:
                self.exemplars[i] = (str(ex[0]), float(ex[1]), float(ex[2]))

    def quantile(self, q: float) -> float:
        """Approximate q-quantile by linear interpolation within the bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for i, edge in enumerate(self.buckets):
            c = self.counts[i]
            if c and cumulative + c >= target:
                fraction = (target - cumulative) / c
                return lower + (edge - lower) * max(0.0, min(1.0, fraction))
            cumulative += c
            lower = edge
        # Everything beyond the last finite edge: report that edge (the
        # histogram cannot resolve further).
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All series of one metric name: kind, help text, labelled instruments."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help: str, buckets=None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create instrument store, snapshot/merge/render in one place."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- instrument access --------------------------------------------------

    def _get(self, name: str, kind: str, help: str, buckets, labels: dict[str, str]):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}"
                )
            key = _label_key(labels)
            instrument = family.series.get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(family.buckets or LATENCY_BUCKETS_S)
                else:
                    instrument = _KINDS[kind]()
                family.series[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(name, "gauge", help, None, labels)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None, **labels: str
    ) -> Histogram:
        return self._get(name, "histogram", help, tuple(buckets) if buckets else None, labels)

    def get(self, name: str, **labels: str):
        """Fetch an existing instrument or None (no registration side effect)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.series.get(_label_key(labels))

    # -- serialization ------------------------------------------------------

    def to_wire(self) -> dict:
        """JSON-safe dump: ships over the shard IPC and the HTTP /stats body."""
        with self._lock:
            families = {}
            for name, family in self._families.items():
                series = []
                for key, instrument in family.series.items():
                    entry: dict = {"labels": dict(key)}
                    if family.kind == "histogram":
                        entry["counts"] = list(instrument.counts)
                        entry["sum"] = instrument.sum
                        entry["count"] = instrument.count
                        if instrument.exemplars is not None:
                            entry["exemplars"] = [
                                list(ex) if ex is not None else None
                                for ex in instrument.exemplars
                            ]
                    else:
                        entry["value"] = instrument.value
                    series.append(entry)
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "buckets": list(family.buckets) if family.buckets else None,
                    "series": series,
                }
            return {"obs_wire_version": OBS_WIRE_VERSION, "families": families}

    def merge_wire(self, wire: dict) -> None:
        """Fold a :meth:`to_wire` dump into this registry.

        Counters and histogram buckets add; gauges add too (per-worker sizes
        such as delta-store records are additive across id-range shards).
        """
        version = wire.get("obs_wire_version", 1)
        if version not in SUPPORTED_OBS_WIRE_VERSIONS:
            supported = ", ".join(str(v) for v in sorted(SUPPORTED_OBS_WIRE_VERSIONS))
            raise ValueError(
                f"unsupported obs wire version {version!r} (supported: {supported})"
            )
        for name, dumped in wire.get("families", {}).items():
            kind = dumped["kind"]
            buckets = tuple(dumped["buckets"]) if dumped.get("buckets") else None
            for entry in dumped["series"]:
                labels = entry.get("labels", {})
                if kind == "histogram":
                    hist = self.histogram(name, dumped.get("help", ""), buckets, **labels)
                    incoming = Histogram(hist.buckets)
                    incoming.counts = list(entry["counts"])
                    incoming.sum = float(entry["sum"])
                    incoming.count = int(entry["count"])
                    dumped_exemplars = entry.get("exemplars")
                    if dumped_exemplars:
                        incoming.exemplars = [
                            tuple(ex) if ex is not None else None
                            for ex in dumped_exemplars
                        ]
                    hist.merge(incoming)
                elif kind == "gauge":
                    self.gauge(name, dumped.get("help", ""), **labels).inc(entry["value"])
                else:
                    self.counter(name, dumped.get("help", ""), **labels).inc(entry["value"])

    @classmethod
    def merged(cls, wires: Iterable[dict]) -> "MetricsRegistry":
        registry = cls()
        for wire in wires:
            registry.merge_wire(wire)
        return registry

    # -- exposition ---------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {_escape_help(family.help)}")
                lines.append(f"# TYPE {name} {family.kind}")
                for key in sorted(family.series):
                    instrument = family.series[key]
                    labels = dict(key)
                    if family.kind == "histogram":
                        exemplars = instrument.exemplars
                        cumulative = 0
                        for i, edge in enumerate(instrument.buckets):
                            cumulative += instrument.counts[i]
                            line = _sample(
                                f"{name}_bucket", {**labels, "le": _fmt(edge)}, cumulative
                            )
                            if exemplars is not None and exemplars[i] is not None:
                                line += _exemplar_suffix(exemplars[i])
                            lines.append(line)
                        line = _sample(
                            f"{name}_bucket", {**labels, "le": "+Inf"}, instrument.count
                        )
                        if exemplars is not None and exemplars[-1] is not None:
                            line += _exemplar_suffix(exemplars[-1])
                        lines.append(line)
                        lines.append(_sample(f"{name}_sum", labels, instrument.sum))
                        lines.append(_sample(f"{name}_count", labels, instrument.count))
                    else:
                        lines.append(_sample(name, labels, instrument.value))
        return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def _exemplar_suffix(exemplar: tuple[str, float, float]) -> str:
    """OpenMetrics exemplar: `` # {trace_id="..."} <value> <unix_ts>``."""
    trace_id, value, ts = exemplar
    return f' # {{trace_id="{_escape_label(trace_id)}"}} {_fmt(value)} {_fmt(ts)}'


def strip_exemplar(line: str) -> str:
    """Drop a trailing exemplar annotation from one exposition line."""
    marker = line.find(" # {")
    return line[:marker] if marker >= 0 else line


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class _Node:
    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.children: list = []  # _Node or pre-rendered span dicts


class Trace:
    """One request timeline: a tree of timed spans plus embedded sub-traces.

    Spans carry offsets relative to the trace start.  A worker's trace is
    embedded as a pre-rendered subtree whose offsets are relative to the
    *worker's* start (clocks are not comparable across processes), which is
    when the worker began the query -- close enough for a timeline.
    """

    __slots__ = ("trace_id", "name", "started_unix", "_t0", "_end", "_root", "_stack")

    def __init__(self, trace_id: str | None = None, name: str = "trace") -> None:
        self.trace_id = trace_id or new_trace_id()
        self.name = name
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self._end: float | None = None
        self._root: list = []
        self._stack: list[_Node] = []

    def begin(self, name: str) -> _Node:
        node = _Node(name, time.perf_counter())
        (self._stack[-1].children if self._stack else self._root).append(node)
        self._stack.append(node)
        return node

    def end(self, node: _Node) -> None:
        node.end = time.perf_counter()
        if self._stack and self._stack[-1] is node:
            self._stack.pop()

    def embed(self, name: str, duration_ms: float, children: list | None, *, start_ms: float = 0.0) -> None:
        """Attach a pre-rendered span subtree under the current span."""
        rendered = {
            "name": name,
            "start_ms": round(start_ms, 4),
            "duration_ms": round(duration_ms, 4),
            "children": children or [],
        }
        (self._stack[-1].children if self._stack else self._root).append(rendered)

    def finish(self) -> None:
        self._end = time.perf_counter()

    @property
    def duration_ms(self) -> float:
        end = self._end if self._end is not None else time.perf_counter()
        return (end - self._t0) * 1000.0

    def _render(self, node) -> dict:
        if isinstance(node, dict):
            return node
        return {
            "name": node.name,
            "start_ms": round((node.start - self._t0) * 1000.0, 4),
            "duration_ms": round((node.end - node.start) * 1000.0, 4),
            "children": [self._render(child) for child in node.children],
        }

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_unix": self.started_unix,
            "duration_ms": round(self.duration_ms, 4),
            "spans": [self._render(node) for node in self._root],
        }


_ACTIVE: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)


def current_trace() -> Trace | None:
    return _ACTIVE.get()


def activate(trace: Trace):
    """Install ``trace`` as the ambient trace; returns a reset token."""
    return _ACTIVE.set(trace)


def deactivate(token) -> None:
    _ACTIVE.reset(token)


class _NoopSpan:
    """Shared do-nothing context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    __slots__ = ("_trace", "_name", "_node")

    def __init__(self, trace: Trace, name: str) -> None:
        self._trace = trace
        self._name = name
        self._node = None

    def __enter__(self):
        self._node = self._trace.begin(self._name)
        return self._node

    def __exit__(self, *exc):
        self._trace.end(self._node)
        return False


def span(name: str):
    """Time a block under the ambient trace; free when tracing is off."""
    trace = _ACTIVE.get()
    if trace is None:
        return _NOOP_SPAN
    return _SpanHandle(trace, name)


def span_tree_coverage(trace_doc: dict) -> float:
    """Fraction of the trace duration covered by its top-level spans."""
    total = trace_doc.get("duration_ms", 0.0)
    if not total:
        return 0.0
    covered = sum(s.get("duration_ms", 0.0) for s in trace_doc.get("spans", ()))
    return covered / total


class TraceBuffer:
    """Thread-safe ring buffer of the most recent trace documents."""

    def __init__(self, capacity: int = 128) -> None:
        from collections import deque

        self._lock = threading.Lock()
        self._traces: "deque[dict]" = deque(maxlen=max(1, int(capacity)))

    def add(self, trace_doc: dict) -> None:
        with self._lock:
            self._traces.append(trace_doc)

    def snapshot(self, last: int | None = None) -> list[dict]:
        """Most recent first."""
        with self._lock:
            docs = list(self._traces)
        docs.reverse()
        return docs if last is None else docs[: max(0, int(last))]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class SlowQueryLog:
    """Structured JSON-lines log of queries over a latency threshold.

    Each entry is one line of JSON carrying the trace id, route, funnel
    counts and span timeline.  Entries are also kept in a small in-memory
    ring so tests and ``/debug`` consumers can read them without a file.

    When ``max_bytes`` is set the file is size-rotated: once an append
    pushes it past the limit it is renamed to ``<path>.1`` (older rotations
    shifting to ``.2``, ``.3``, ...) and a fresh file is started; at most
    ``keep_files`` rotated files are retained, so a long-running server
    with a low threshold occupies bounded disk.
    """

    def __init__(
        self,
        threshold_ms: float,
        path: str | None = None,
        keep: int = 128,
        max_bytes: int | None = None,
        keep_files: int = 3,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError("slow-query threshold must be non-negative")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("slow-query log max_bytes must be positive")
        if keep_files < 1:
            raise ValueError("slow-query log keep_files must be at least 1")
        self.threshold_ms = float(threshold_ms)
        self.path = path
        self.max_bytes = max_bytes
        self.keep_files = int(keep_files)
        self.rotations = 0
        self._lock = threading.Lock()
        self.recent = TraceBuffer(keep)

    def maybe_log(self, e2e_ms: float, entry: dict) -> bool:
        """Record ``entry`` if the query exceeded the threshold."""
        if e2e_ms < self.threshold_ms:
            return False
        entry = {"e2e_ms": round(e2e_ms, 4), **entry}
        self.recent.add(entry)
        if self.path:
            line = json.dumps(entry, separators=(",", ":"), default=str)
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
                    size = fh.tell()
                if self.max_bytes is not None and size >= self.max_bytes:
                    self._rotate()
        return True

    def _rotate(self) -> None:
        """Shift ``path -> path.1 -> path.2 ...``, dropping beyond keep_files."""
        import os

        overflow = f"{self.path}.{self.keep_files + 1}"
        for i in range(self.keep_files, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        if os.path.exists(overflow):
            os.remove(overflow)
        self.rotations += 1
