"""Search results and per-query statistics shared by all searchers.

The paper's evaluation reports, per query, the number of candidates produced
by the filter, the number of results, the candidate-generation time and the
total search time.  :class:`SearchResult` carries exactly those quantities so
that the experiment harness (:mod:`repro.experiments`) can aggregate them into
the series plotted in Figures 5-12 without knowing which searcher produced
them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence


class Timer:
    """A tiny perf_counter-based stopwatch used inside the searchers."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Return the elapsed time and reset the stopwatch."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed


@dataclass
class SearchResult:
    """Outcome of one thresholded similarity query.

    Attributes:
        results: ids of the data objects satisfying the selection constraint.
        candidates: ids of the data objects that reached verification.  For a
            correct (complete) filter this is always a superset of
            ``results``.
        candidate_time: seconds spent generating candidates (filtering).
        verify_time: seconds spent verifying candidates.
        extra: optional per-algorithm counters (e.g. the Pivotal algorithm
            reports its Cand-1 and Cand-2 sizes here).
    """

    results: list
    candidates: list
    candidate_time: float = 0.0
    verify_time: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def num_results(self) -> int:
        return len(self.results)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def total_time(self) -> float:
        return self.candidate_time + self.verify_time

    @property
    def false_positives(self) -> int:
        return self.num_candidates - self.num_results


@dataclass
class QueryStats:
    """Aggregate of :class:`SearchResult` objects over a query workload.

    ``total_generated`` counts the objects that *entered* the filter
    pipeline (pre-chain candidates); ``total_candidates`` counts the objects
    that survived it and reached verification.  The gap between the two is
    what the filters earned, and the gap between ``total_candidates`` and
    ``total_results`` is what verification still had to reject.  Searchers
    that do not report a ``generated`` counter (the scalar baselines) fall
    back to the candidate count, making the filter look free rather than
    wrong.
    """

    num_queries: int = 0
    total_generated: int = 0
    total_candidates: int = 0
    total_results: int = 0
    total_candidate_time: float = 0.0
    total_verify_time: float = 0.0

    def add(self, result: SearchResult) -> None:
        self.num_queries += 1
        generated = getattr(result, "num_generated", None)
        if generated is None:
            extra = getattr(result, "extra", None)
            generated = extra.get("generated") if extra else None
        self.total_generated += result.num_candidates if generated is None else int(generated)
        self.total_candidates += result.num_candidates
        self.total_results += result.num_results
        self.total_candidate_time += result.candidate_time
        self.total_verify_time += result.verify_time

    @classmethod
    def from_results(cls, results: Sequence[SearchResult]) -> "QueryStats":
        stats = cls()
        for result in results:
            stats.add(result)
        return stats

    @property
    def avg_generated(self) -> float:
        return self.total_generated / self.num_queries if self.num_queries else 0.0

    @property
    def avg_candidates(self) -> float:
        return self.total_candidates / self.num_queries if self.num_queries else 0.0

    @property
    def avg_results(self) -> float:
        return self.total_results / self.num_queries if self.num_queries else 0.0

    @property
    def avg_candidate_time(self) -> float:
        return (
            self.total_candidate_time / self.num_queries if self.num_queries else 0.0
        )

    @property
    def avg_verify_time(self) -> float:
        return self.total_verify_time / self.num_queries if self.num_queries else 0.0

    @property
    def avg_total_time(self) -> float:
        if not self.num_queries:
            return 0.0
        return (self.total_candidate_time + self.total_verify_time) / self.num_queries
