"""Reusable per-query scratch and CSR kernels for the columnar searchers.

The columnar candidate pipeline evaluates whole candidate arrays per query;
allocating every intermediate afresh would make the allocator the hot path
under serving traffic.  A :class:`Scratch` instance owns named, grow-only
numpy buffers that searchers reuse across the queries of a batch; the
accumulation helpers work on *compact* touched-object arrays, so per-query
cost (including the implicit reset between queries) scales with the
candidates a query touches, never with the dataset size -- the same property
an epoch-stamped dense visited array gives, without the dense memory.

Searchers hold their scratch behind :class:`PerThread`, so the engine's
thread-pooled ``search_batch`` gives every worker thread a private set of
buffers while the queries coalesced onto one thread keep reusing a single
allocation.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

import numpy as np

T = TypeVar("T")


class Scratch:
    """Named grow-only numpy buffers reused across queries."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, size: int, dtype: np.dtype | type) -> np.ndarray:
        """A length-``size`` view of the named buffer, grown when needed.

        The contents are whatever the previous query left behind; callers
        must fully overwrite the view before reading it.
        """
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < size or buffer.dtype != np.dtype(dtype):
            capacity = max(size, 2 * buffer.size if buffer is not None else 256)
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:size]

    def arange(self, size: int) -> np.ndarray:
        """A read-only-by-convention ``arange(size)`` view, grown when needed.

        A prefix of a longer arange *is* the shorter arange, so the buffer
        never needs refilling -- callers must not write through the view.
        """
        buffer = self._buffers.get("__arange__")
        if buffer is None or buffer.size < size:
            capacity = max(size, 2 * buffer.size if buffer is not None else 256)
            buffer = np.arange(capacity, dtype=np.int64)
            self._buffers["__arange__"] = buffer
        return buffer[:size]


class PerThread:
    """A lazily constructed per-thread instance of anything.

    The engine answers batches on a thread pool; scratch buffers are
    mutable, so each worker thread gets its own copy while sequential
    queries on one thread share it.
    """

    def __init__(self, factory: Callable[[], T]):
        self._factory = factory
        self._local = threading.local()

    def get(self) -> T:
        instance = getattr(self._local, "value", None)
        if instance is None:
            instance = self._factory()
            self._local.value = instance
        return instance


def csr_gather_indices(
    starts: np.ndarray, ends: np.ndarray, scratch: Scratch | None = None
) -> np.ndarray:
    """Flat gather indices for CSR row slices ``[starts[i], ends[i])``.

    The classic vectorised expansion: an ``arange`` over the total payload
    shifted per row so each row's block counts from its own ``starts``.
    """
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Row i's block must start at starts[i]; the arange starts it at the
    # cumulative length of the preceding rows, so shift by the difference.
    shifts = starts - (np.cumsum(lengths) - lengths)
    expanded = np.repeat(shifts, lengths)
    if scratch is not None:
        out = scratch.take("csr_gather", total, np.int64)
        np.add(scratch.arange(total), expanded, out=out)
        return out
    expanded += np.arange(total, dtype=np.int64)
    return expanded


def grouped_counts(objs: np.ndarray, cols: np.ndarray, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Count ``(objs[i], cols[i])`` pairs grouped by object.

    Returns ``(touched, counts)`` where ``touched`` holds the distinct object
    ids ascending and ``counts`` is a ``(len(touched), width)`` matrix with
    ``counts[t, c]`` the number of pairs ``(touched[t], c)``.  Works entirely
    in the compact touched-object domain: nothing is allocated or zeroed at
    dataset size.
    """
    if objs.size == 0:
        return np.empty(0, dtype=np.int64), np.zeros((0, width), dtype=np.int64)
    touched, inverse = np.unique(objs, return_inverse=True)
    flat = np.bincount(inverse * width + cols, minlength=touched.size * width)
    return touched, flat.reshape(touched.size, width)


def sorted_member_mask(haystack: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Which of ``values`` occur in the *sorted* array ``haystack``.

    One clipped ``searchsorted`` sweep: the shared membership kernel of the
    set verifiers, the columnar batch verification and the delta-store
    scan.
    """
    if not haystack.size or not values.size:
        return np.zeros(values.size, dtype=bool)
    slots = np.searchsorted(haystack, values)
    np.minimum(slots, haystack.size - 1, out=slots)
    return haystack[slots] == values


def segment_sums(flags: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``flags`` for CSR segments split at ``boundaries``.

    ``boundaries`` has ``num_segments + 1`` entries into ``flags``; empty
    segments yield 0 (unlike ``np.add.reduceat``, which misbehaves on them).
    """
    prefix = np.zeros(flags.size + 1, dtype=np.int64)
    np.cumsum(flags, out=prefix[1:])
    return prefix[boundaries[1:]] - prefix[boundaries[:-1]]
