"""Shared infrastructure used by every substrate searcher.

The four case-study packages (:mod:`repro.hamming`, :mod:`repro.sets`,
:mod:`repro.strings`, :mod:`repro.graphs`) expose the same searcher protocol:

* ``search(query, tau)`` returns a :class:`repro.common.stats.SearchResult`
  with the result ids, the candidate ids that were verified, and timing broken
  down into candidate generation and verification -- the quantities plotted in
  the paper's Figures 5-12.

The protocol lives here so the experiment harness can drive any searcher
uniformly.
"""

from repro.common.obs import MetricsRegistry, SlowQueryLog, Trace, TraceBuffer, span
from repro.common.stats import QueryStats, SearchResult, Timer

__all__ = [
    "MetricsRegistry",
    "QueryStats",
    "SearchResult",
    "SlowQueryLog",
    "Timer",
    "Trace",
    "TraceBuffer",
    "span",
]
