"""Generic two-step candidate generation (Section 7).

Every pigeonring searcher in this repository follows the same two-step scheme:

1. **First step** -- find, with an index, the data objects that have at least
   one viable single box.  This step is identical to the candidate generation
   of the underlying pigeonhole algorithm (GPH, pkwise, Pivotal, Pars).
2. **Second step** -- for each viable box found, check on the fly whether the
   chains of lengths ``2, ..., l`` starting from that box are all viable
   (i.e. whether the chain of length ``l`` is prefix-viable).  Only objects
   passing this check become candidates.

The second step needs only the box values along the chain, which the substrate
provides through a callable; boxes are therefore evaluated lazily and the
check stops at the first violating prefix.  The Corollary-2 skip is applied:
when the chain starting at ``i`` first violates at prefix length ``l'``, no
chain starting anywhere in ``[i .. i + l' - 1]`` can be prefix-viable for the
same target length, so those starts are not re-examined for this object.

:class:`ChainChecker` implements the per-object second step;
:func:`generate_candidates` drives both steps for an arbitrary problem given
its index-probe and box-evaluation callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator

from repro.core.thresholds import ThresholdAllocation


@dataclass
class CandidateStats:
    """Counters describing one candidate-generation run.

    Attributes:
        probed_boxes: viable single boxes produced by the first step (``|V|``
            in the cost analysis of Section 7).
        chain_checks: chains whose prefix-viability was evaluated.
        box_evaluations: individual box values computed during the second
            step (the dominant cost term ``(l - 1) * |V| * c_B``).
        candidates: objects that survived both steps.
    """

    probed_boxes: int = 0
    chain_checks: int = 0
    box_evaluations: int = 0
    candidates: int = 0


class ChainChecker:
    """Per-object second-step checker with lazy box evaluation and skipping.

    One ``ChainChecker`` is created per (data object, query) pair that reached
    the second step.  Box values are computed at most once each and cached, so
    probing the same object from several viable starting boxes does not repeat
    work.
    """

    def __init__(
        self,
        allocation: ThresholdAllocation,
        box_value: Callable[[int], float],
        length: int,
    ):
        """Args:
            allocation: threshold allocation defining viability.
            box_value: callable returning the value of box ``i`` for this
                (data object, query) pair.
            length: target chain length ``l``.
        """
        if not 1 <= length <= allocation.m:
            raise ValueError(
                f"chain length must be in [1, {allocation.m}], got {length}"
            )
        self._allocation = allocation
        self._box_value = box_value
        self._length = length
        self._cache: dict[int, float] = {}
        self._skip_until: dict[int, int] = {}
        self.stats = CandidateStats()

    def _value(self, index: int) -> float:
        index %= self._allocation.m
        if index not in self._cache:
            self._cache[index] = self._box_value(index)
            self.stats.box_evaluations += 1
        return self._cache[index]

    def check_from(self, start: int) -> bool:
        """Whether the chain of the target length starting at ``start`` is prefix-viable."""
        m = self._allocation.m
        start %= m
        self.stats.chain_checks += 1
        running = 0.0
        for offset in range(self._length):
            running += self._value((start + offset) % m)
            if not self._allocation.chain_satisfies(running, start, offset + 1):
                # Corollary-2 skip: starts in [start .. start + offset] cannot
                # yield a prefix-viable chain of the target length either.
                for skipped in range(offset + 1):
                    self._skip_until[(start + skipped) % m] = self._length
                return False
        return True

    def should_skip(self, start: int) -> bool:
        """Whether ``start`` was already ruled out by a previous failed check."""
        return self._skip_until.get(start % self._allocation.m, 0) >= self._length

    def is_candidate(self, starts: Iterable[int]) -> bool:
        """Whether any of the given starting boxes yields a prefix-viable chain."""
        for start in starts:
            if self.should_skip(start):
                continue
            if self.check_from(start):
                return True
        return False


def generate_candidates(
    query: object,
    probe_index: Callable[[object], Iterable[tuple[Hashable, int]]],
    box_value: Callable[[Hashable, int], float],
    allocation_for: Callable[[Hashable], ThresholdAllocation],
    length: int,
    stats: CandidateStats | None = None,
) -> Iterator[Hashable]:
    """Drive the two-step candidate generation for one query.

    Args:
        query: the query object (passed through to ``probe_index``).
        probe_index: first step -- yields ``(object_id, box_index)`` pairs for
            every viable single box found by the underlying index.  The same
            object may be yielded several times with different box indices.
        box_value: second step -- returns ``b_i(x, q)`` for a data object id
            and box index.
        allocation_for: returns the threshold allocation to use for a given
            data object (allocations may be object-specific, e.g. when the
            number of boxes depends on the object's size).
        length: chain length ``l``.  ``1`` reproduces the pigeonhole filter.
        stats: optional shared counters to accumulate into.

    Yields:
        Candidate object ids, each at most once, in first-seen order.
    """
    checkers: dict[Hashable, ChainChecker] = {}
    emitted: set[Hashable] = set()
    for obj_id, box_index in probe_index(query):
        if stats is not None:
            stats.probed_boxes += 1
        if obj_id in emitted:
            continue
        checker = checkers.get(obj_id)
        if checker is None:
            allocation = allocation_for(obj_id)
            checker = ChainChecker(
                allocation,
                lambda i, _obj=obj_id: box_value(_obj, i),
                min(length, allocation.m),
            )
            checkers[obj_id] = checker
        if checker.should_skip(box_index):
            continue
        if checker.check_from(box_index):
            emitted.add(obj_id)
            if stats is not None:
                stats.candidates += 1
            yield obj_id
    if stats is not None:
        for checker in checkers.values():
            stats.chain_checks += checker.stats.chain_checks
            stats.box_evaluations += checker.stats.box_evaluations
