"""Variable threshold allocation and integer reduction (Section 4).

Instead of the uniform quota ``n / m``, a filtering instance may assign a
threshold ``t_i`` to every box.  The paper proves the pigeonring analogues of
the two classic pigeonhole variants:

* Theorem 6 (variable threshold allocation): if ``||B||_1 <= n`` and
  ``||T||_1 = n``, then for every ``l`` some chain has *all* prefixes
  satisfying ``||c_i^{l'}||_1 <= sum_{j=i}^{i+l'-1} t_j``.
* Theorem 7 (integer reduction): for integer boxes and thresholds, if
  ``||B||_1 <= n`` and ``||T||_1 = n - m + 1``, the prefix condition relaxes to
  ``||c_i^{l'}||_1 <= l' - 1 + sum t_j``.

Both theorems also hold with ``>=`` in place of ``<=``; for the ``>=``
direction integer reduction requires ``||T||_1 = n + m - 1`` and the prefix
condition becomes ``||c_i^{l'}||_1 >= 1 - l' + sum t_j``.  The set-similarity
searcher uses exactly that variant (results satisfy ``f(x, q) >= tau``).

:class:`ThresholdAllocation` wraps a concrete threshold sequence together with
the comparison direction and the integer-reduction slack, and provides the
viability / prefix-viability predicates and witness enumeration used by the
substrate searchers and by the property tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence


class Direction(enum.Enum):
    """Comparison direction of the selection constraint ``f(x, q) <=/>= tau``."""

    LEQ = "leq"
    GEQ = "geq"


@dataclass(frozen=True)
class ThresholdAllocation:
    """A per-box threshold sequence ``T = (t_0, ..., t_{m-1})``.

    Args:
        thresholds: per-box thresholds.
        direction: whether boxes must stay below (``LEQ``) or above (``GEQ``)
            their thresholds for a chain to be viable.
        integer_reduction: when True, the per-prefix slack of Theorem 7 is
            applied (``+ (l' - 1)`` for ``LEQ``, ``- (l' - 1)`` for ``GEQ``).
    """

    thresholds: tuple[float, ...]
    direction: Direction = Direction.LEQ
    integer_reduction: bool = False

    def __init__(
        self,
        thresholds: Sequence[float],
        direction: Direction = Direction.LEQ,
        integer_reduction: bool = False,
    ):
        object.__setattr__(self, "thresholds", tuple(thresholds))
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "integer_reduction", integer_reduction)
        if not self.thresholds:
            raise ValueError("a threshold allocation needs at least one box")

    @property
    def m(self) -> int:
        return len(self.thresholds)

    @property
    def total(self) -> float:
        """``||T||_1``."""
        return sum(self.thresholds)

    def validates_bound(self, n: float) -> bool:
        """Whether ``||T||_1`` matches the value required for exactness.

        * ``LEQ`` without integer reduction: ``||T||_1 == n`` (Theorem 6).
        * ``LEQ`` with integer reduction: ``||T||_1 == n - m + 1`` (Theorem 7).
        * ``GEQ`` without integer reduction: ``||T||_1 == n``.
        * ``GEQ`` with integer reduction: ``||T||_1 == n + m - 1``.

        Substrate algorithms may legitimately use a *looser* allocation (a
        smaller ``||T||_1`` for ``LEQ`` is still complete, just weaker); this
        helper checks the tight value stated by the theorems.
        """
        if self.direction is Direction.LEQ:
            target = n - self.m + 1 if self.integer_reduction else n
        else:
            target = n + self.m - 1 if self.integer_reduction else n
        return math.isclose(self.total, target, rel_tol=0.0, abs_tol=1e-9)

    def chain_threshold(self, start: int, length: int) -> float:
        """The threshold against which ``||c_start^length||_1`` is compared.

        Includes the integer-reduction slack when enabled.
        """
        if not 0 <= length <= self.m:
            raise ValueError(f"chain length must be in [0, {self.m}], got {length}")
        start %= self.m
        total = 0.0
        for offset in range(length):
            total += self.thresholds[(start + offset) % self.m]
        if self.integer_reduction and length > 0:
            if self.direction is Direction.LEQ:
                total += length - 1
            else:
                total -= length - 1
        return total

    def box_satisfies(self, value: float, index: int) -> bool:
        """Whether a single box value satisfies its own threshold (chain length 1)."""
        return self.chain_satisfies(value, index, 1)

    def chain_satisfies(self, chain_total: float, start: int, length: int) -> bool:
        """Whether a chain sum satisfies the (slack-adjusted) chain threshold."""
        bound = self.chain_threshold(start, length)
        if self.direction is Direction.LEQ:
            return chain_total <= bound + 1e-12
        return chain_total >= bound - 1e-12

    def is_viable(self, boxes: Sequence[float], start: int, length: int) -> bool:
        """Viability of ``c_start^length`` under this allocation."""
        self._check_boxes(boxes)
        total = 0.0
        start %= self.m
        for offset in range(length):
            total += boxes[(start + offset) % self.m]
        return self.chain_satisfies(total, start, length)

    def is_prefix_viable(
        self, boxes: Sequence[float], start: int, length: int
    ) -> bool:
        """Prefix-viability of ``c_start^length`` under this allocation."""
        self._check_boxes(boxes)
        start %= self.m
        running = 0.0
        for offset in range(length):
            running += boxes[(start + offset) % self.m]
            if not self.chain_satisfies(running, start, offset + 1):
                return False
        return True

    def first_prefix_violation(
        self, boxes: Sequence[float], start: int, length: int
    ) -> int | None:
        """Smallest prefix length violating the allocation, or ``None`` if none does."""
        self._check_boxes(boxes)
        start %= self.m
        running = 0.0
        for offset in range(length):
            running += boxes[(start + offset) % self.m]
            if not self.chain_satisfies(running, start, offset + 1):
                return offset + 1
        return None

    def strong_witnesses(self, boxes: Sequence[float], length: int) -> list[int]:
        """Starting indices of prefix-viable chains of ``length`` (Theorems 6/7)."""
        self._check_boxes(boxes)
        if not 1 <= length <= self.m:
            raise ValueError(f"chain length must be in [1, {self.m}], got {length}")
        return [
            i for i in range(self.m) if self.is_prefix_viable(boxes, i, length)
        ]

    def passes(self, boxes: Sequence[float], length: int) -> bool:
        """Filtering condition: some chain of ``length`` is prefix-viable."""
        return bool(self.strong_witnesses(boxes, length))

    def passes_basic(self, boxes: Sequence[float], length: int) -> bool:
        """Basic-form filtering condition: some chain of ``length`` is viable."""
        self._check_boxes(boxes)
        if not 1 <= length <= self.m:
            raise ValueError(f"chain length must be in [1, {self.m}], got {length}")
        return any(self.is_viable(boxes, i, length) for i in range(self.m))

    def _check_boxes(self, boxes: Sequence[float]) -> None:
        if len(boxes) != self.m:
            raise ValueError(
                f"expected {self.m} box values, got {len(boxes)}"
            )


def uniform_allocation(
    n: float, m: int, direction: Direction = Direction.LEQ
) -> ThresholdAllocation:
    """The uniform allocation ``t_i = n / m`` (Theorem 3 as a special case of Theorem 6)."""
    if m <= 0:
        raise ValueError("the number of boxes m must be positive")
    return ThresholdAllocation([n / m] * m, direction=direction, integer_reduction=False)


def integer_reduction_allocation(
    n: int, m: int, direction: Direction = Direction.LEQ
) -> ThresholdAllocation:
    """An as-even-as-possible integer allocation with the Theorem 5/7 total.

    For ``LEQ`` the thresholds sum to ``n - m + 1``; for ``GEQ`` to
    ``n + m - 1``.  The remainder is spread over the leading boxes so the
    allocation is deterministic.
    """
    if m <= 0:
        raise ValueError("the number of boxes m must be positive")
    total = n - m + 1 if direction is Direction.LEQ else n + m - 1
    base, remainder = divmod(total, m)
    thresholds = [base + 1 if i < remainder else base for i in range(m)]
    return ThresholdAllocation(thresholds, direction=direction, integer_reduction=True)
