"""The pigeonhole principle and the pigeonring principle.

This module provides direct, constructive statements of:

* Theorem 1 (pigeonhole principle): if ``||B||_1 <= n`` then some box satisfies
  ``b_i <= n / m``.
* Theorem 2 (pigeonring principle, basic form): if ``||B||_1 <= n`` then for
  every chain length ``l`` some chain ``c_i^l`` satisfies
  ``||c_i^l||_1 <= l * n / m``.
* Theorem 3 (pigeonring principle, strong form): if ``||B||_1 <= n`` then for
  every ``l`` some chain ``c_i^l`` is *prefix-viable* (every prefix satisfies
  its quota).
* Corollary 1 (viable and non-viable, prefix and suffix variants).
* Corollary 2 (concatenating same-type chains preserves the type).

Each theorem is exposed two ways:

``*_witnesses``
    Return the starting indices of all chains that satisfy the respective
    condition.  These are the constructive counterparts used by the tests and
    by :mod:`repro.core.geometry`.

``passes_*``
    Return whether at least one witness exists, i.e. whether a data object
    whose boxes are ``B`` survives the corresponding filter.  These are the
    filtering conditions used throughout the paper: a data object is a
    candidate only if it passes.

The filters here use the *uniform* quota ``n / m``.  Variable threshold
allocation and integer reduction (Theorems 4-7) live in
:mod:`repro.core.thresholds`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chains import (
    chain_sum,
    is_prefix_viable,
    is_suffix_viable,
    is_viable,
)


def pigeonhole_bound(n: float, m: int) -> float:
    """The per-box quota ``n / m`` guaranteed by Theorem 1."""
    if m <= 0:
        raise ValueError("the number of boxes m must be positive")
    return n / m


def pigeonhole_witnesses(boxes: Sequence[float], n: float) -> list[int]:
    """Indices ``i`` with ``b_i <= n / m`` (the witnesses of Theorem 1)."""
    m = len(boxes)
    quota = pigeonhole_bound(n, m)
    return [i for i, value in enumerate(boxes) if value <= quota]


def passes_pigeonhole(boxes: Sequence[float], n: float) -> bool:
    """Filtering condition of Theorem 1: some box is within the quota ``n / m``.

    Theorem 1 guarantees every ``B`` with ``||B||_1 <= n`` passes; layouts with
    a larger sum may pass too (false positives), which is exactly the weakness
    the pigeonring principle addresses.
    """
    return bool(pigeonhole_witnesses(boxes, n))


def pigeonring_basic_witnesses(
    boxes: Sequence[float], n: float, length: int
) -> list[int]:
    """Starting indices of chains of ``length`` with ``||c_i^l||_1 <= l * n / m``."""
    m = len(boxes)
    quota = pigeonhole_bound(n, m)
    if not 1 <= length <= m:
        raise ValueError(f"chain length must be in [1, {m}], got {length}")
    return [i for i in range(m) if is_viable(boxes, i, length, quota)]


def passes_pigeonring_basic(boxes: Sequence[float], n: float, length: int) -> bool:
    """Filtering condition of Theorem 2 for a single chain length."""
    return bool(pigeonring_basic_witnesses(boxes, n, length))


def pigeonring_strong_witnesses(
    boxes: Sequence[float], n: float, length: int
) -> list[int]:
    """Starting indices of prefix-viable chains of ``length`` (Theorem 3 witnesses)."""
    m = len(boxes)
    quota = pigeonhole_bound(n, m)
    if not 1 <= length <= m:
        raise ValueError(f"chain length must be in [1, {m}], got {length}")
    return [i for i in range(m) if is_prefix_viable(boxes, i, length, quota)]


def passes_pigeonring_strong(boxes: Sequence[float], n: float, length: int) -> bool:
    """Filtering condition of Theorem 3: some chain of ``length`` is prefix-viable."""
    return bool(pigeonring_strong_witnesses(boxes, n, length))


def passes_pigeonring(
    boxes: Sequence[float], n: float, length: int, strong: bool = True
) -> bool:
    """Filtering condition of the pigeonring principle.

    With ``strong=True`` (the default and the form the paper means when the
    context is clear) the strong form of Theorem 3 is applied; otherwise the
    basic form of Theorem 2.  ``length == 1`` reduces both to the pigeonhole
    principle.
    """
    if strong:
        return passes_pigeonring_strong(boxes, n, length)
    return passes_pigeonring_basic(boxes, n, length)


def suffix_viable_witnesses(boxes: Sequence[float], n: float, length: int) -> list[int]:
    """Starting indices of suffix-viable chains of ``length`` (Corollary 1, viable case)."""
    m = len(boxes)
    quota = pigeonhole_bound(n, m)
    if not 1 <= length <= m:
        raise ValueError(f"chain length must be in [1, {m}], got {length}")
    return [i for i in range(m) if is_suffix_viable(boxes, i, length, quota)]


def prefix_nonviable_witnesses(
    boxes: Sequence[float], n: float, length: int
) -> list[int]:
    """Starting indices of prefix-non-viable chains (Corollary 1, ``||B||_1 > n`` case).

    A chain is prefix-non-viable when *every* prefix violates its quota
    (``||c_i^{l'}||_1 > l' * n / m`` for all ``l'``).
    """
    m = len(boxes)
    quota = pigeonhole_bound(n, m)
    if not 1 <= length <= m:
        raise ValueError(f"chain length must be in [1, {m}], got {length}")
    witnesses = []
    for i in range(m):
        running = 0.0
        all_violate = True
        for offset in range(length):
            running += boxes[(i + offset) % m]
            if running <= (offset + 1) * quota:
                all_violate = False
                break
        if all_violate:
            witnesses.append(i)
    return witnesses


def suffix_nonviable_witnesses(
    boxes: Sequence[float], n: float, length: int
) -> list[int]:
    """Starting indices of suffix-non-viable chains (every suffix violates its quota)."""
    m = len(boxes)
    quota = pigeonhole_bound(n, m)
    if not 1 <= length <= m:
        raise ValueError(f"chain length must be in [1, {m}], got {length}")
    witnesses = []
    for i in range(m):
        running = 0.0
        all_violate = True
        for back in range(length):
            running += boxes[(i + length - 1 - back) % m]
            if running <= (back + 1) * quota:
                all_violate = False
                break
        if all_violate:
            witnesses.append(i)
    return witnesses


def candidate_subset_holds(
    boxes: Sequence[float], n: float, max_length: int | None = None
) -> bool:
    """Check Lemmas 1 and 4 on one box layout.

    The candidates produced with chain length ``l`` (strong form) must be a
    subset of those produced with length ``l - 1`` and of those produced by
    the pigeonhole principle.  Expressed per object: if a layout passes the
    filter at length ``l`` it must also pass at every shorter length.  Returns
    ``True`` when the monotonicity holds for this layout, which the property
    tests assert over random layouts.
    """
    m = len(boxes)
    limit = m if max_length is None else min(max_length, m)
    passed_shorter = True
    for length in range(1, limit + 1):
        passes = passes_pigeonring_strong(boxes, n, length)
        if passes and not passed_shorter:
            return False
        passed_shorter = passes
    return True


def complete_chain_sum(boxes: Sequence[float]) -> float:
    """``||c_i^m||_1``, which equals ``||B||_1`` for every start ``i``."""
    return chain_sum(boxes, 0, len(boxes))
