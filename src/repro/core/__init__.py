"""Core pigeonring machinery.

This subpackage implements the paper's primary contribution:

* :mod:`repro.core.chains` -- rings of boxes, chains, viability predicates.
* :mod:`repro.core.principle` -- the pigeonhole principle (Theorem 1) and the
  pigeonring principle in its basic (Theorem 2) and strong (Theorem 3) forms,
  together with Corollaries 1 and 2.
* :mod:`repro.core.thresholds` -- variable threshold allocation and integer
  reduction (Theorems 4-7) for both the ``<=`` and ``>=`` directions.
* :mod:`repro.core.framework` -- the universal filtering framework
  ``<F, B, D>`` with completeness and tightness checks (Lemmas 6 and 7).
* :mod:`repro.core.candidates` -- the generic two-step candidate generation of
  Section 7 with the Corollary-2 skip optimisation.
* :mod:`repro.core.analysis` -- the filtering-power analysis of Section 3.1.
* :mod:`repro.core.geometry` -- the geometric interpretation of Appendix A.
* :mod:`repro.core.integral` -- the integral forms of Appendix B.
"""

from repro.core.chains import (
    Chain,
    Ring,
    chain_sum,
    prefix_viable_lengths,
    is_viable,
    is_prefix_viable,
    is_suffix_viable,
)
from repro.core.principle import (
    pigeonhole_bound,
    pigeonhole_witnesses,
    passes_pigeonhole,
    pigeonring_basic_witnesses,
    passes_pigeonring_basic,
    pigeonring_strong_witnesses,
    passes_pigeonring_strong,
    passes_pigeonring,
)
from repro.core.thresholds import (
    ThresholdAllocation,
    uniform_allocation,
    integer_reduction_allocation,
    Direction,
)
from repro.core.framework import FilteringInstance, check_completeness, check_tightness
from repro.core.candidates import ChainChecker, generate_candidates
from repro.core.analysis import BoxDistribution, FilterAnalysis

__all__ = [
    "Chain",
    "Ring",
    "chain_sum",
    "prefix_viable_lengths",
    "is_viable",
    "is_prefix_viable",
    "is_suffix_viable",
    "pigeonhole_bound",
    "pigeonhole_witnesses",
    "passes_pigeonhole",
    "pigeonring_basic_witnesses",
    "passes_pigeonring_basic",
    "pigeonring_strong_witnesses",
    "passes_pigeonring_strong",
    "passes_pigeonring",
    "ThresholdAllocation",
    "uniform_allocation",
    "integer_reduction_allocation",
    "Direction",
    "FilteringInstance",
    "check_completeness",
    "check_tightness",
    "ChainChecker",
    "generate_candidates",
    "BoxDistribution",
    "FilterAnalysis",
]
