"""Filtering-power analysis (Section 3.1) reproducing Figure 2.

The paper estimates, under the assumption that the ``m`` boxes are i.i.d.
random variables with density ``p`` and that ``||B(x, q)||_1 = f(x, q)``:

* ``Pr(w_i)`` -- the probability that a chain of length ``i`` is a *word*:
  its first ``i - 1`` boxes form a prefix-viable chain and the ``i``-th box
  pushes the total over the quota ``i * tau / m`` (for ``i = 1`` the single
  box is simply non-viable).
* ``M(x)`` -- the probability that a chain of length ``x`` is a *target
  chain*, i.e. a concatenation of words (it then contains no prefix-viable
  chain of length ``l``), via the recurrence
  ``M(x) = sum_i M(x - i) * Pr(w_i)``.
* ``N(x)`` -- the probability that a ring of ``x`` boxes contains no
  prefix-viable chain of length ``l``, correcting for the position at which
  the ring is cut: ``N(x) = M(x) + sum_{i>=2} M(x - i) (i - 1) Pr(w_i)``.
* ``Pr(CAND_l) = 1 - N(m)`` and ``Pr(RES) = Pr(sum of m boxes <= tau)``.

The implementation works with *discrete* box distributions (probability mass
functions).  That is exact for Hamming distance search, where each box is the
Hamming distance over ``d / m`` dimensions and is Binomial(d/m, 1/2) under the
uniform-data model the paper uses for Figure 2.  Continuous densities can be
analysed after discretisation with :meth:`BoxDistribution.from_pdf`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence


def _merge(pmf: dict[float, float], value: float, prob: float) -> None:
    if prob <= 0.0:
        return
    pmf[value] = pmf.get(value, 0.0) + prob


class BoxDistribution:
    """A discrete probability distribution of a single box value."""

    def __init__(self, pmf: Mapping[float, float]):
        total = sum(pmf.values())
        if total <= 0.0:
            raise ValueError("a box distribution needs positive total probability")
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"probabilities must sum to 1 (got {total})")
        self._pmf = {float(value): float(prob) for value, prob in pmf.items() if prob > 0.0}

    @property
    def pmf(self) -> dict[float, float]:
        return dict(self._pmf)

    @property
    def support(self) -> list[float]:
        return sorted(self._pmf)

    def probability(self, value: float) -> float:
        return self._pmf.get(float(value), 0.0)

    def cdf(self, value: float) -> float:
        """``Pr(box <= value)``."""
        return sum(prob for v, prob in self._pmf.items() if v <= value + 1e-12)

    def tail(self, value: float) -> float:
        """``Pr(box > value)``."""
        return 1.0 - self.cdf(value)

    def mean(self) -> float:
        return sum(v * p for v, p in self._pmf.items())

    @classmethod
    def binomial(cls, trials: int, prob: float = 0.5) -> "BoxDistribution":
        """Binomial(trials, prob) -- the per-partition Hamming distance under uniform data."""
        if trials < 0:
            raise ValueError("trials must be non-negative")
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        pmf = {
            float(k): math.comb(trials, k) * prob**k * (1.0 - prob) ** (trials - k)
            for k in range(trials + 1)
        }
        return cls(pmf)

    @classmethod
    def uniform(cls, values: Sequence[float]) -> "BoxDistribution":
        """Uniform distribution over an explicit support."""
        if not values:
            raise ValueError("uniform distribution needs at least one value")
        prob = 1.0 / len(values)
        pmf: dict[float, float] = {}
        for value in values:
            _merge(pmf, float(value), prob)
        return cls(pmf)

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxDistribution":
        """Empirical distribution of observed box values (used for real datasets)."""
        if not samples:
            raise ValueError("cannot build a distribution from zero samples")
        prob = 1.0 / len(samples)
        pmf: dict[float, float] = {}
        for value in samples:
            _merge(pmf, float(value), prob)
        return cls(pmf)

    @classmethod
    def from_pdf(
        cls, pdf: Callable[[float], float], low: float, high: float, bins: int = 256
    ) -> "BoxDistribution":
        """Discretise a continuous density on ``[low, high]`` into ``bins`` midpoints."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        if high <= low:
            raise ValueError("high must exceed low")
        width = (high - low) / bins
        pmf: dict[float, float] = {}
        for i in range(bins):
            mid = low + (i + 0.5) * width
            _merge(pmf, mid, pdf(mid) * width)
        total = sum(pmf.values())
        return cls({v: p / total for v, p in pmf.items()})

    def convolve(self, other: "BoxDistribution") -> "BoxDistribution":
        """Distribution of the sum of two independent boxes."""
        pmf: dict[float, float] = {}
        for v1, p1 in self._pmf.items():
            for v2, p2 in other._pmf.items():
                _merge(pmf, v1 + v2, p1 * p2)
        return BoxDistribution(pmf)

    def convolve_power(self, times: int) -> "BoxDistribution":
        """Distribution of the sum of ``times`` independent copies of this box."""
        if times <= 0:
            raise ValueError("times must be positive")
        result = self
        for _ in range(times - 1):
            result = result.convolve(self)
        return result


@dataclass
class AnalysisPoint:
    """One point of the Figure-2 analysis."""

    chain_length: int
    candidate_probability: float
    result_probability: float

    @property
    def candidate_to_result_ratio(self) -> float:
        """``Pr(CAND_l) / Pr(RES)`` -- the quantity the paper plots in Figure 2."""
        if self.result_probability <= 0.0:
            return math.inf
        return self.candidate_probability / self.result_probability

    @property
    def false_positive_to_result_ratio(self) -> float:
        """``(Pr(CAND_l) - Pr(RES)) / Pr(RES)`` -- expected false positives per result."""
        if self.result_probability <= 0.0:
            return math.inf
        return max(0.0, self.candidate_probability - self.result_probability) / self.result_probability


class FilterAnalysis:
    """Analytical model of the pigeonring filter for i.i.d. boxes.

    Args:
        box: distribution of a single box value.
        m: number of boxes on the ring.
        tau: selection threshold; the quota of a single box is ``tau / m``.
    """

    def __init__(self, box: BoxDistribution, m: int, tau: float):
        if m <= 0:
            raise ValueError("m must be positive")
        self._box = box
        self._m = m
        self._tau = float(tau)
        self._quota = self._tau / m
        self._word_cache: dict[int, float] = {}

    @property
    def m(self) -> int:
        return self._m

    @property
    def tau(self) -> float:
        return self._tau

    @property
    def quota(self) -> float:
        return self._quota

    def word_probability(self, length: int) -> float:
        """``Pr(w_length)`` -- probability that a chain of ``length`` boxes is a word."""
        if length <= 0:
            raise ValueError("word length must be positive")
        if length in self._word_cache:
            return self._word_cache[length]
        if length == 1:
            result = self._box.tail(self._quota)
        else:
            # Distribution of prefix sums conditioned on staying prefix-viable
            # for the first (length - 1) boxes, then the final box breaks the
            # quota of the full chain.
            viable_sums: dict[float, float] = {0.0: 1.0}
            for step in range(1, length):
                next_sums: dict[float, float] = {}
                bound = step * self._quota
                for total, prob in viable_sums.items():
                    for value, p in self._box.pmf.items():
                        new_total = total + value
                        if new_total <= bound + 1e-12:
                            _merge(next_sums, new_total, prob * p)
                viable_sums = next_sums
            full_bound = length * self._quota
            result = 0.0
            for total, prob in viable_sums.items():
                result += prob * self._box.tail(full_bound - total)
        self._word_cache[length] = result
        return result

    def target_chain_probability(self, length: int, chain_length: int) -> float:
        """``M(length)`` -- probability that a chain of ``length`` boxes is a target chain."""
        words = [self.word_probability(i) for i in range(1, chain_length + 1)]
        m_values = [1.0] + [0.0] * length
        for x in range(1, length + 1):
            total = 0.0
            for i in range(1, min(x, chain_length) + 1):
                total += m_values[x - i] * words[i - 1]
            m_values[x] = total
        return m_values[length]

    def no_candidate_probability(self, chain_length: int) -> float:
        """``N(m)`` -- probability that a ring of ``m`` boxes has no prefix-viable chain."""
        if not 1 <= chain_length <= self._m:
            raise ValueError(f"chain length must be in [1, {self._m}], got {chain_length}")
        words = [self.word_probability(i) for i in range(1, chain_length + 1)]
        m_values = [1.0] + [0.0] * self._m
        for x in range(1, self._m + 1):
            total = 0.0
            for i in range(1, min(x, chain_length) + 1):
                total += m_values[x - i] * words[i - 1]
            m_values[x] = total
        x = self._m
        if x == 1:
            return m_values[1]
        result = m_values[x]
        for i in range(2, min(x, chain_length) + 1):
            result += m_values[x - i] * (i - 1) * words[i - 1]
        return min(1.0, result)

    def candidate_probability(self, chain_length: int) -> float:
        """``Pr(CAND_l) = 1 - N(m)``."""
        return max(0.0, 1.0 - self.no_candidate_probability(chain_length))

    def result_probability(self) -> float:
        """``Pr(RES)`` -- probability that the sum of the ``m`` boxes is within ``tau``."""
        total = self._box.convolve_power(self._m)
        return total.cdf(self._tau)

    def point(self, chain_length: int) -> AnalysisPoint:
        return AnalysisPoint(
            chain_length=chain_length,
            candidate_probability=self.candidate_probability(chain_length),
            result_probability=self.result_probability(),
        )

    def sweep(self, chain_lengths: Sequence[int]) -> list[AnalysisPoint]:
        """Evaluate the model for several chain lengths (one Figure-2 curve)."""
        return [self.point(length) for length in chain_lengths]


def hamming_uniform_analysis(d: int, m: int, tau: float) -> FilterAnalysis:
    """The Figure-2 setting: uniform binary vectors, ``d`` dimensions, ``m`` parts.

    Each box is the Hamming distance over ``d / m`` dimensions between two
    uniformly random binary vectors, i.e. Binomial(d / m, 1/2).
    """
    if d % m != 0:
        raise ValueError("d must be divisible by m for equi-width partitions")
    return FilterAnalysis(BoxDistribution.binomial(d // m, 0.5), m, tau)
