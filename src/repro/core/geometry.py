"""Geometric interpretation of the strong pigeonring principle (Appendix A).

Define ``g(0) = 0`` and ``g(x) = b_0 + ... + b_{x-1}`` for ``x`` in
``[1 .. 2m - 1]`` (the ring unrolled twice).  For every start ``x`` the line
through ``(x, g(x))`` and ``(x + m, g(x + m))`` has slope ``||B||_1 / m``.
Taking the line with the greatest y-intercept and calling its left endpoint
``i``, every secant from ``(i, g(i))`` to a later point of the graph has slope
at most ``||B||_1 / m``; equivalently the chain ``c_i^l`` is prefix-viable for
every ``l``.  This yields a *constructive* witness for Theorem 3, which the
property tests compare against the exhaustive witness search in
:mod:`repro.core.principle`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chains import is_prefix_viable


def cumulative_sums(boxes: Sequence[float]) -> list[float]:
    """``g(x)`` for ``x in [0 .. 2m - 1]`` -- prefix sums of the ring unrolled twice."""
    m = len(boxes)
    if m == 0:
        raise ValueError("cumulative_sums requires a non-empty ring of boxes")
    sums = [0.0]
    for x in range(1, 2 * m):
        sums.append(sums[-1] + boxes[(x - 1) % m])
    return sums


def line_intercept(boxes: Sequence[float], start: int) -> float:
    """Y-intercept of the line through ``(start, g(start))`` with slope ``||B||_1 / m``."""
    m = len(boxes)
    if not 0 <= start <= m - 1:
        raise ValueError(f"start must be in [0, {m - 1}], got {start}")
    sums = cumulative_sums(boxes)
    slope = sum(boxes) / m
    return sums[start] - slope * start


def max_intercept_start(boxes: Sequence[float]) -> int:
    """The starting index whose line has the greatest y-intercept.

    Ties are broken towards the smallest index, matching the "break ties
    arbitrarily" freedom in the paper.
    """
    m = len(boxes)
    best_start = 0
    best_intercept = line_intercept(boxes, 0)
    for start in range(1, m):
        intercept = line_intercept(boxes, start)
        if intercept > best_intercept + 1e-12:
            best_intercept = intercept
            best_start = start
    return best_start


def constructive_prefix_viable_start(boxes: Sequence[float], n: float) -> int | None:
    """A starting index from which every chain length is prefix-viable.

    Returns the max-intercept start when ``||B||_1 <= n`` (Theorem 3 then
    guarantees it works for quota ``n / m``), and ``None`` when the premise
    fails (in which case no guarantee exists, although a witness may still
    exist for some layouts).
    """
    if sum(boxes) > n + 1e-12:
        return None
    return max_intercept_start(boxes)


def verify_geometric_witness(boxes: Sequence[float], n: float) -> bool:
    """Check that the constructive start is prefix-viable at every length.

    Used by tests as an end-to-end validation of the Appendix-A argument:
    whenever ``||B||_1 <= n``, the start returned by
    :func:`constructive_prefix_viable_start` must satisfy the strong form for
    every ``l`` in ``[1 .. m]``.
    """
    start = constructive_prefix_viable_start(boxes, n)
    if start is None:
        return True
    m = len(boxes)
    quota = n / m
    return all(is_prefix_viable(boxes, start, length, quota) for length in range(1, m + 1))
