"""Rings of boxes and chains of consecutive boxes.

The paper (Section 3) places the ``m`` boxes ``b_0, ..., b_{m-1}`` clockwise on
a ring where ``b_0`` succeeds ``b_{m-1}``.  A *chain* ``c_i^l`` is the sequence
of ``l`` consecutive boxes starting at index ``i`` going clockwise; indices
wrap modulo ``m``.  ``||c_i^l||_1`` denotes the sum of its elements.

A chain is *viable* when its sum is within its quota (``l * n / m`` for the
uniform allocation, or the corresponding sum of per-box thresholds for
variable allocations).  A chain is *prefix-viable* when every one of its
prefixes is viable, and *suffix-viable* when every one of its suffixes is
viable.  These predicates are the building blocks of both forms of the
pigeonring principle and of the candidate-generation step of every searcher in
this repository.

All helpers in this module accept plain Python sequences of numbers (ints or
floats).  They are deliberately free of numpy so they stay usable for the
tiny per-candidate checks performed inside search loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


def chain_sum(boxes: Sequence[float], start: int, length: int) -> float:
    """Return ``||c_start^length||_1``, the sum of ``length`` consecutive boxes.

    Indices wrap around the ring: ``chain_sum(b, m - 1, 2) == b[m-1] + b[0]``.

    Args:
        boxes: the ring of box values ``b_0, ..., b_{m-1}``.
        start: starting index ``i`` (taken modulo ``m``).
        length: chain length ``l``; must satisfy ``0 <= l <= m``.

    Raises:
        ValueError: if ``length`` is negative or exceeds the number of boxes.
    """
    m = len(boxes)
    if m == 0:
        raise ValueError("chain_sum requires a non-empty ring of boxes")
    if not 0 <= length <= m:
        raise ValueError(f"chain length must be in [0, {m}], got {length}")
    start %= m
    total = 0.0
    for offset in range(length):
        total += boxes[(start + offset) % m]
    return total


def prefix_sums(boxes: Sequence[float], start: int, length: int) -> list[float]:
    """Return the sums of the 1-, 2-, ..., ``length``-prefixes of ``c_start^length``."""
    m = len(boxes)
    if m == 0:
        raise ValueError("prefix_sums requires a non-empty ring of boxes")
    if not 0 <= length <= m:
        raise ValueError(f"chain length must be in [0, {m}], got {length}")
    start %= m
    sums: list[float] = []
    running = 0.0
    for offset in range(length):
        running += boxes[(start + offset) % m]
        sums.append(running)
    return sums


@dataclass(frozen=True)
class Chain:
    """A chain ``c_i^l`` over a ring of ``m`` boxes.

    The chain stores only its coordinates (``start``, ``length``, ``m``); box
    values are supplied when sums are evaluated.  This mirrors how the search
    algorithms use chains: coordinates are enumerated cheaply, box values are
    computed lazily and only as far as the incremental viability check needs.
    """

    start: int
    length: int
    m: int

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError("a chain needs a positive ring size m")
        if not 0 <= self.length <= self.m:
            raise ValueError(f"chain length must be in [0, {self.m}], got {self.length}")
        object.__setattr__(self, "start", self.start % self.m)

    @property
    def indices(self) -> tuple[int, ...]:
        """The box indices covered by the chain, in clockwise order."""
        return tuple((self.start + offset) % self.m for offset in range(self.length))

    @property
    def is_complete(self) -> bool:
        """True when the chain covers every box exactly once (``l == m``)."""
        return self.length == self.m

    def sum(self, boxes: Sequence[float]) -> float:
        """``||c_i^l||_1`` for the supplied box values."""
        if len(boxes) != self.m:
            raise ValueError(f"expected {self.m} boxes, got {len(boxes)}")
        return chain_sum(boxes, self.start, self.length)

    def prefix(self, length: int) -> "Chain":
        """The ``length``-prefix ``c_i^{length}`` of this chain."""
        if not 0 <= length <= self.length:
            raise ValueError(f"prefix length must be in [0, {self.length}], got {length}")
        return Chain(self.start, length, self.m)

    def suffix(self, length: int) -> "Chain":
        """The ``length``-suffix ``c_{i+l-length}^{length}`` of this chain."""
        if not 0 <= length <= self.length:
            raise ValueError(f"suffix length must be in [0, {self.length}], got {length}")
        return Chain(self.start + self.length - length, length, self.m)

    def subchains(self) -> Iterator["Chain"]:
        """Yield every non-empty subchain ``c_j^{l'}`` with ``j >= i`` and ``j + l' <= i + l``."""
        for offset in range(self.length):
            for sub_len in range(1, self.length - offset + 1):
                yield Chain(self.start + offset, sub_len, self.m)

    def concatenate(self, other: "Chain") -> "Chain":
        """Concatenate with a contiguous chain starting where this one ends.

        Mirrors Lemma 2: the result covers ``l + l'`` boxes.  Raises if the
        chains are not contiguous or the result would exceed ``m`` boxes.
        """
        if other.m != self.m:
            raise ValueError("cannot concatenate chains over different rings")
        expected_start = (self.start + self.length) % self.m
        if other.start != expected_start:
            raise ValueError(
                f"chains are not contiguous: expected start {expected_start}, got {other.start}"
            )
        return Chain(self.start, self.length + other.length, self.m)


class Ring:
    """A ring of concrete box values with chain-viability queries.

    ``Ring`` is the convenience object used by the examples, the analysis
    module and the tests.  The hot search loops in the substrate packages do
    not build ``Ring`` objects; they use the free functions in this module (or
    inline the incremental check) to avoid per-candidate allocations.
    """

    def __init__(self, boxes: Sequence[float]):
        if len(boxes) == 0:
            raise ValueError("a ring needs at least one box")
        self._boxes = tuple(float(b) for b in boxes)

    @property
    def boxes(self) -> tuple[float, ...]:
        return self._boxes

    @property
    def m(self) -> int:
        return len(self._boxes)

    @property
    def total(self) -> float:
        """``||B||_1``, the sum of all boxes."""
        return sum(self._boxes)

    def chain(self, start: int, length: int) -> Chain:
        return Chain(start, length, self.m)

    def chains(self, length: int | None = None) -> Iterator[Chain]:
        """Yield every chain in ``C_B`` (optionally restricted to one length)."""
        lengths = range(1, self.m + 1) if length is None else (length,)
        for chain_length in lengths:
            for start in range(self.m):
                yield Chain(start, chain_length, self.m)

    def chain_sum(self, start: int, length: int) -> float:
        return chain_sum(self._boxes, start, length)

    def is_viable(self, start: int, length: int, quota_per_box: float) -> bool:
        return is_viable(self._boxes, start, length, quota_per_box)

    def is_prefix_viable(self, start: int, length: int, quota_per_box: float) -> bool:
        return is_prefix_viable(self._boxes, start, length, quota_per_box)

    def is_suffix_viable(self, start: int, length: int, quota_per_box: float) -> bool:
        return is_suffix_viable(self._boxes, start, length, quota_per_box)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Ring({list(self._boxes)!r})"


def is_viable(
    boxes: Sequence[float], start: int, length: int, quota_per_box: float
) -> bool:
    """True when ``||c_start^length||_1 <= length * quota_per_box``.

    ``quota_per_box`` is ``n / m`` in the uniform setting of Theorems 2 and 3.
    Empty chains (``length == 0``) are viable by convention (their sum is 0).
    """
    return chain_sum(boxes, start, length) <= length * quota_per_box


def is_prefix_viable(
    boxes: Sequence[float], start: int, length: int, quota_per_box: float
) -> bool:
    """True when every prefix ``c_start^{l'}``, ``l' in [1..length]``, is viable."""
    m = len(boxes)
    if m == 0:
        raise ValueError("is_prefix_viable requires a non-empty ring of boxes")
    if not 0 <= length <= m:
        raise ValueError(f"chain length must be in [0, {m}], got {length}")
    start %= m
    running = 0.0
    for offset in range(length):
        running += boxes[(start + offset) % m]
        if running > (offset + 1) * quota_per_box:
            return False
    return True


def is_suffix_viable(
    boxes: Sequence[float], start: int, length: int, quota_per_box: float
) -> bool:
    """True when every suffix of ``c_start^length`` is viable.

    The ``l'``-suffix of ``c_i^l`` is ``c_{i+l-l'}^{l'}``; walking the chain
    backwards from its last box and accumulating gives each suffix sum once.
    """
    m = len(boxes)
    if m == 0:
        raise ValueError("is_suffix_viable requires a non-empty ring of boxes")
    if not 0 <= length <= m:
        raise ValueError(f"chain length must be in [0, {m}], got {length}")
    start %= m
    running = 0.0
    for back in range(length):
        running += boxes[(start + length - 1 - back) % m]
        if running > (back + 1) * quota_per_box:
            return False
    return True


def prefix_viable_lengths(
    boxes: Sequence[float], start: int, quota_per_box: float, max_length: int | None = None
) -> int:
    """Return the largest ``l`` such that ``c_start^l`` is prefix-viable.

    Returns 0 when even the single box at ``start`` is non-viable.  This is
    the incremental check used by the second step of candidate generation:
    walking clockwise from a viable box and stopping at the first prefix-sum
    violation.
    """
    m = len(boxes)
    if m == 0:
        raise ValueError("prefix_viable_lengths requires a non-empty ring of boxes")
    limit = m if max_length is None else min(max_length, m)
    start %= m
    running = 0.0
    longest = 0
    for offset in range(limit):
        running += boxes[(start + offset) % m]
        if running > (offset + 1) * quota_per_box:
            break
        longest = offset + 1
    return longest


def first_prefix_violation(
    boxes: Sequence[float], start: int, quota_per_box: float, length: int
) -> int | None:
    """Return the smallest prefix length at which ``c_start^length`` stops being viable.

    Returns ``None`` when the chain is prefix-viable up to ``length``.  The
    returned value feeds the Corollary-2 skip optimisation: if the check fails
    at length ``l'`` then no chain starting at any position in
    ``[start .. start + l' - 1]`` can be prefix-viable either.
    """
    m = len(boxes)
    if m == 0:
        raise ValueError("first_prefix_violation requires a non-empty ring of boxes")
    if not 0 <= length <= m:
        raise ValueError(f"chain length must be in [0, {m}], got {length}")
    start %= m
    running = 0.0
    for offset in range(length):
        running += boxes[(start + offset) % m]
        if running > (offset + 1) * quota_per_box:
            return offset + 1
    return None
