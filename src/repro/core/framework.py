"""The universal filtering framework ``<F, B, D>`` (Section 5).

A pigeonring filtering instance is a triplet of

* a *featuring* function ``F`` mapping an object to a bag of features,
* a sequence of *box* functions ``b_i(x, q)`` each returning a real number, and
* a *bounding* function ``D`` mapping the selection threshold ``tau`` to the
  bound on ``||B(x, q)||_1``.

The instance is **complete** when ``||B(x, q)||_1 <= D(tau)`` is a necessary
condition of ``f(x, q) <= tau`` (no result can be filtered out), and **tight**
when the two conditions are equivalent (with ``l = m`` candidates are exactly
results).  Lemmas 6 and 7 give checkable characterisations; this module
provides empirical checkers over a sample of object pairs, which the tests use
to certify the concrete filtering instances of the four case studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.thresholds import Direction, ThresholdAllocation, uniform_allocation


@dataclass
class FilteringInstance:
    """A concrete ``<F, B, D>`` filtering instance for a tau-selection problem.

    Args:
        featuring: ``F`` -- maps an object to its bag of features.  Only used
            by callers that want to inspect features; ``boxes`` receives the
            raw objects so that implementations may cache extracted features.
        boxes: ``B`` -- maps ``(x, q)`` to the sequence of m box values.
        bound: ``D`` -- maps the selection threshold ``tau`` to the bound on
            ``||B(x, q)||_1``.  The identity is the common case.
        selection: the selection function ``f`` being filtered (used by the
            completeness / tightness checkers and by verification).
        direction: whether results satisfy ``f <= tau`` or ``f >= tau``.
    """

    featuring: Callable[[object], object]
    boxes: Callable[[object, object], Sequence[float]]
    bound: Callable[[float], float]
    selection: Callable[[object, object], float]
    direction: Direction = Direction.LEQ

    def box_values(self, x: object, q: object) -> list[float]:
        """``B(x, q)`` as a list."""
        return list(self.boxes(x, q))

    def box_sum(self, x: object, q: object) -> float:
        """``||B(x, q)||_1``."""
        return sum(self.boxes(x, q))

    def bound_value(self, tau: float) -> float:
        """``D(tau)``."""
        return self.bound(tau)

    def allocation(self, tau: float, m: int) -> ThresholdAllocation:
        """The uniform allocation with ``n = D(tau)`` used by Theorems 2/3."""
        return uniform_allocation(self.bound(tau), m, direction=self.direction)

    def passes(
        self,
        x: object,
        q: object,
        tau: float,
        length: int,
        allocation: ThresholdAllocation | None = None,
        strong: bool = True,
    ) -> bool:
        """Whether ``x`` survives the pigeonring filter for query ``q``.

        When ``allocation`` is omitted the uniform allocation with
        ``n = D(tau)`` is used.  ``length`` is the chain length ``l``;
        ``length == 1`` reduces to the pigeonhole filter.
        """
        values = self.box_values(x, q)
        if allocation is None:
            allocation = uniform_allocation(
                self.bound(tau), len(values), direction=self.direction
            )
        if strong:
            return allocation.passes(values, length)
        return allocation.passes_basic(values, length)

    def is_result(self, x: object, q: object, tau: float) -> bool:
        """Whether ``x`` is an actual result of the tau-selection query."""
        value = self.selection(x, q)
        if self.direction is Direction.LEQ:
            return value <= tau
        return value >= tau


def check_completeness(
    instance: FilteringInstance,
    pairs: Iterable[tuple[object, object]],
    taus: Sequence[float] | None = None,
) -> bool:
    """Empirically check the completeness conditions of Lemma 6 on sample pairs.

    Condition 1: for every pair, ``||B(x, q)||_1 <= D(f(x, q))`` (``>=`` for
    the ``GEQ`` direction).  Condition 2: no pair with a strictly smaller
    ``f`` value may have a box sum exceeding ``D`` of a larger ``f`` value.
    Additionally, when explicit ``taus`` are given, the direct definition is
    checked: every result at ``tau`` satisfies the bound at ``tau``.

    Returns ``True`` when no violation is found in the sample.  This cannot
    *prove* completeness (that needs the per-problem argument given in the
    case studies) but it is an effective certification harness for the
    concrete implementations.
    """
    observed: list[tuple[float, float]] = []
    for x, q in pairs:
        f_value = instance.selection(x, q)
        b_sum = instance.box_sum(x, q)
        observed.append((f_value, b_sum))
        if instance.direction is Direction.LEQ:
            if b_sum > instance.bound(f_value) + 1e-9:
                return False
        else:
            if b_sum < instance.bound(f_value) - 1e-9:
                return False
    # Condition 2 of Lemma 6 across all observed pairs.
    for f1, b1 in observed:
        for f2, _ in observed:
            if instance.direction is Direction.LEQ:
                if f1 < f2 and b1 > instance.bound(f2) + 1e-9:
                    return False
            else:
                if f1 > f2 and b1 < instance.bound(f2) - 1e-9:
                    return False
    if taus is not None:
        for tau in taus:
            bound = instance.bound(tau)
            for f_value, b_sum in observed:
                if instance.direction is Direction.LEQ:
                    if f_value <= tau and b_sum > bound + 1e-9:
                        return False
                else:
                    if f_value >= tau and b_sum < bound - 1e-9:
                        return False
    return True


def check_tightness(
    instance: FilteringInstance,
    pairs: Iterable[tuple[object, object]],
    taus: Sequence[float],
) -> bool:
    """Empirically check the tightness definition on sample pairs.

    Tightness (Definition 2) requires ``||B(x, q)||_1 <= D(tau)`` to be
    necessary *and sufficient* for ``f(x, q) <= tau``.  For every sampled pair
    and every ``tau`` the two sides of the equivalence are compared.
    """
    observed = [
        (instance.selection(x, q), instance.box_sum(x, q)) for x, q in pairs
    ]
    for tau in taus:
        bound = instance.bound(tau)
        for f_value, b_sum in observed:
            if instance.direction is Direction.LEQ:
                is_result = f_value <= tau
                satisfies = b_sum <= bound + 1e-9
            else:
                is_result = f_value >= tau
                satisfies = b_sum >= bound - 1e-9
            if is_result != satisfies:
                return False
    return True


def trivial_complete_instance(selection: Callable[[object, object], float]) -> FilteringInstance:
    """The trivial complete (but useless) instance from Section 5.

    A single box always equal to ``-1`` bounded by ``D(tau) = 0``: every data
    object is a candidate.  Provided as the degenerate baseline used in tests
    of the framework definitions.
    """
    return FilteringInstance(
        featuring=lambda obj: [obj],
        boxes=lambda x, q: [-1.0],
        bound=lambda tau: 0.0,
        selection=selection,
        direction=Direction.LEQ,
    )
