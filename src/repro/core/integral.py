"""Integral (continuous) forms of the principles (Appendix B).

* Theorem 8: if ``b`` is Riemann-integrable and the integral of ``b`` over
  ``[u, u + m]`` is at most ``n``, then some point ``x`` in the interval has
  ``b(x) <= n / m``.
* Theorem 9: if additionally ``b`` is periodic with period ``m``, then some
  ``x1`` exists such that for every ``x2`` in ``[x1, x1 + m]`` the integral
  from ``x1`` to ``x2`` is at most ``(x2 - x1) * n / m`` -- the continuous
  analogue of a prefix-viable chain.

These are verified numerically on a uniform grid: the integral is evaluated
with the trapezoidal rule and the witnesses are located with the same
max-intercept construction as Appendix A.  The functions return the witness
(or ``None`` when the premise does not hold numerically), so tests can assert
existence over families of periodic functions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def _grid(u: float, period: float, samples: int) -> np.ndarray:
    return np.linspace(u, u + period, samples + 1)


def integral_over_period(
    b: Callable[[float], float], u: float, period: float, samples: int = 2048
) -> float:
    """Trapezoidal estimate of the integral of ``b`` over ``[u, u + period]``."""
    if period <= 0:
        raise ValueError("period must be positive")
    xs = _grid(u, period, samples)
    values = np.array([b(float(x)) for x in xs])
    return float(np.trapezoid(values, xs))


def pointwise_witness(
    b: Callable[[float], float],
    u: float,
    period: float,
    n: float,
    samples: int = 2048,
) -> float | None:
    """A point ``x`` with ``b(x) <= n / period`` when the Theorem-8 premise holds.

    Returns ``None`` when the integral over the period exceeds ``n`` (premise
    fails) or -- which cannot happen for well-behaved functions but may for a
    too-coarse grid -- when no grid point satisfies the bound.
    """
    total = integral_over_period(b, u, period, samples)
    if total > n + 1e-9:
        return None
    quota = n / period
    xs = _grid(u, period, samples)
    values = np.array([b(float(x)) for x in xs])
    below = np.nonzero(values <= quota + 1e-9)[0]
    if len(below) == 0:
        return None
    return float(xs[below[0]])


def prefix_viable_witness(
    b: Callable[[float], float],
    u: float,
    period: float,
    n: float,
    samples: int = 2048,
) -> float | None:
    """A starting point ``x1`` satisfying the Theorem-9 condition on a grid.

    The condition is checked on the sampled grid: for every grid point ``x2``
    in ``[x1, x1 + period]`` the cumulative trapezoidal integral from ``x1``
    must not exceed ``(x2 - x1) * n / period``.  The witness is found with the
    max-intercept construction applied to the cumulative integral, mirroring
    Appendix A.
    """
    total = integral_over_period(b, u, period, samples)
    if total > n + 1e-9:
        return None
    # Sample two periods so chains can wrap, exactly as the discrete ring does.
    xs = np.linspace(u, u + 2 * period, 2 * samples + 1)
    values = np.array([b(float(x)) for x in xs])
    step = period / samples
    cumulative = np.concatenate(([0.0], np.cumsum((values[1:] + values[:-1]) * 0.5 * step)))
    slope = total / period
    intercepts = cumulative[: samples + 1] - slope * (xs[: samples + 1] - u)
    start_idx = int(np.argmax(intercepts))
    # Validate the witness on the grid.
    quota = n / period
    base = cumulative[start_idx]
    for offset in range(1, samples + 1):
        idx = start_idx + offset
        span = xs[idx] - xs[start_idx]
        if cumulative[idx] - base > span * quota + 1e-6 * max(1.0, abs(n)):
            return None
    return float(xs[start_idx])
