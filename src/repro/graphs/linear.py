"""Brute-force graph edit distance search (ground truth for tests)."""

from __future__ import annotations

from repro.common.stats import SearchResult, Timer
from repro.graphs.dataset import GraphDataset
from repro.graphs.ged import ged_within
from repro.graphs.graph import Graph


class LinearGraphSearcher:
    """Evaluate the threshold-limited GED against every data graph."""

    def __init__(self, dataset: GraphDataset):
        self._dataset = dataset

    @property
    def dataset(self) -> GraphDataset:
        return self._dataset

    def search(self, query: Graph, tau: int) -> SearchResult:
        timer = Timer()
        results = [
            obj_id
            for obj_id in range(len(self._dataset))
            if ged_within(self._dataset.graph(obj_id), query, tau)
        ]
        elapsed = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=list(range(len(self._dataset))),
            candidate_time=0.0,
            verify_time=elapsed,
        )
