"""Dataset container for graph edit distance search."""

from __future__ import annotations

from typing import Sequence

from repro.graphs.graph import Graph


class GraphDataset:
    """A collection of labelled data graphs."""

    def __init__(self, graphs: Sequence[Graph]):
        if not graphs:
            raise ValueError("the dataset needs at least one graph")
        self._graphs = list(graphs)

    @property
    def graphs(self) -> list[Graph]:
        return self._graphs

    def graph(self, obj_id: int) -> Graph:
        return self._graphs[obj_id]

    def __len__(self) -> int:
        return len(self._graphs)
