"""Graph edit distance search (Problem 5, Section 6.4).

The paper's pigeonring searcher builds on the Pars algorithm [136]: each data
graph is divided into ``tau + 1`` disjoint subgraphs; a candidate must have at
least one part subgraph-isomorphic to the query (pigeonhole).  The Ring
searcher keeps the same partitioning and extends the check to chains: box
``b_i`` is the minimum graph edit distance from part ``i`` to any subgraph of
the query, lower-bounded through deletion-neighbourhood-style partial mappings
so the expensive exact value is never computed.

Public API:

* :class:`repro.graphs.graph.Graph` -- labelled graphs.
* :class:`repro.graphs.dataset.GraphDataset`
* :class:`repro.graphs.pars.ParsSearcher` -- the pigeonhole baseline.
* :class:`repro.graphs.ring.RingGraphSearcher` -- the pigeonring searcher.
* :class:`repro.graphs.columnar.ColumnarGraphSearcher` -- label containment
  over dense part/label count matrices (byte-identical results).
* :class:`repro.graphs.linear.LinearGraphSearcher` -- brute force.
"""

from repro.graphs.graph import Graph
from repro.graphs.ged import ged_within, graph_edit_distance
from repro.graphs.isomorphism import min_mapping_cost, subgraph_isomorphic
from repro.graphs.partition import partition_graph
from repro.graphs.dataset import GraphDataset
from repro.graphs.linear import LinearGraphSearcher
from repro.graphs.pars import ParsSearcher
from repro.graphs.ring import RingGraphSearcher
from repro.graphs.columnar import ColumnarGraphSearcher

__all__ = [
    "Graph",
    "ged_within",
    "graph_edit_distance",
    "min_mapping_cost",
    "subgraph_isomorphic",
    "partition_graph",
    "GraphDataset",
    "LinearGraphSearcher",
    "ParsSearcher",
    "RingGraphSearcher",
    "ColumnarGraphSearcher",
]
