"""Graph edit distance (exact, threshold-limited).

The edit operations follow the paper: insert / delete an isolated labelled
vertex, change a vertex label, insert / delete a labelled edge, change an edge
label, all with unit cost.  The distance is computed over vertex mappings: the
cost of a mapping is the number of vertex insertions, deletions and
relabelings it implies plus the number of edge mismatches it induces, and the
edit distance is the minimum over injective partial mappings.

A branch-and-bound search with a label-multiset lower bound makes the
threshold decision (``ged <= tau``) practical for the molecule-sized graphs
used in the synthetic workloads; this is the verification step of both the
Pars baseline and the Ring searcher.
"""

from __future__ import annotations

from collections import Counter

from repro.graphs.graph import Graph


def _label_multiset_lower_bound(
    labels_a: Counter, labels_b: Counter, edges_a: Counter, edges_b: Counter
) -> int:
    """Lower bound of the edit distance from label multiset differences.

    Vertices: every surplus label on either side needs a relabel or an
    insert/delete; ``max(surplus_a, surplus_b)`` relabelings plus the size
    difference is a valid bound.  Edges contribute analogously, but edge edits
    forced by vertex edits overlap, so only the vertex part and the edge count
    difference are combined (a conservative, admissible bound).
    """
    surplus_a = sum((labels_a - labels_b).values())
    surplus_b = sum((labels_b - labels_a).values())
    vertex_bound = max(surplus_a, surplus_b)
    edge_surplus_a = sum((edges_a - edges_b).values())
    edge_surplus_b = sum((edges_b - edges_a).values())
    edge_bound = max(edge_surplus_a, edge_surplus_b)
    return max(vertex_bound, edge_bound)


def graph_edit_distance(g1: Graph, g2: Graph, upper_bound: int | None = None) -> int:
    """Exact graph edit distance, optionally capped at ``upper_bound``.

    When ``upper_bound`` is given and the true distance exceeds it, the value
    ``upper_bound + 1`` is returned.
    """
    cap = upper_bound if upper_bound is not None else g1.num_vertices + g2.num_vertices + g1.num_edges + g2.num_edges

    labels_1 = Counter(g1.vertex_label(v) for v in g1.vertices)
    labels_2 = Counter(g2.vertex_label(v) for v in g2.vertices)
    edges_1 = Counter(label for *_pair, label in g1.edges())
    edges_2 = Counter(label for *_pair, label in g2.edges())
    if _label_multiset_lower_bound(labels_1, labels_2, edges_1, edges_2) > cap:
        return cap + 1

    # Order g1 vertices by decreasing degree (most constrained first).
    order = sorted(g1.vertices, key=lambda v: -g1.degree(v))
    g2_vertices = g2.vertices
    best = cap + 1

    def mapped_edge_cost(vertex, image, mapping) -> int:
        """Edge cost induced by assigning ``vertex -> image`` given earlier assignments."""
        cost = 0
        for neighbor in g1.neighbors(vertex):
            if neighbor not in mapping:
                continue
            neighbor_image = mapping[neighbor]
            if image is None or neighbor_image is None:
                cost += 1  # the g1 edge must be deleted
                continue
            if not g2.has_edge(image, neighbor_image):
                cost += 1  # delete the g1 edge (or equivalently insert in g1)
            elif g2.edge_label(image, neighbor_image) != g1.edge_label(vertex, neighbor):
                cost += 1  # relabel
        if image is not None:
            # g2 edges between the image and earlier images with no g1
            # counterpart must be inserted into g1.
            for other, other_image in mapping.items():
                if other_image is None or other_image == image:
                    continue
                if g2.has_edge(image, other_image) and not g1.has_edge(vertex, other):
                    cost += 1
        return cost

    def completion_lower_bound(remaining_g1: list, used: set) -> int:
        remaining_labels_1 = Counter(g1.vertex_label(v) for v in remaining_g1)
        remaining_labels_2 = Counter(
            g2.vertex_label(v) for v in g2_vertices if v not in used
        )
        surplus_a = sum((remaining_labels_1 - remaining_labels_2).values())
        surplus_b = sum((remaining_labels_2 - remaining_labels_1).values())
        return max(surplus_a, surplus_b)

    def finish_cost(mapping, used) -> int:
        """Cost of inserting every unused g2 vertex and its unmatched edges."""
        cost = 0
        unused = [v for v in g2_vertices if v not in used]
        cost += len(unused)
        # Edges of g2 with at least one unused endpoint must be inserted.
        for u, v, _label in g2.edges():
            if u in unused or v in unused:
                cost += 1
        return cost

    def backtrack(index: int, cost: int, mapping: dict, used: set) -> None:
        nonlocal best
        if cost >= best:
            return
        if index == len(order):
            total = cost + finish_cost(mapping, used)
            if total < best:
                best = total
            return
        remaining = order[index:]
        if cost + completion_lower_bound(remaining, used) >= best:
            return
        vertex = order[index]
        label = g1.vertex_label(vertex)
        for image in g2_vertices:
            if image in used:
                continue
            step = 0 if g2.vertex_label(image) == label else 1
            step += mapped_edge_cost(vertex, image, mapping)
            if cost + step >= best:
                continue
            mapping[vertex] = image
            used.add(image)
            backtrack(index + 1, cost + step, mapping, used)
            used.discard(image)
            del mapping[vertex]
        # Delete the vertex.
        step = 1 + mapped_edge_cost(vertex, None, mapping)
        if cost + step < best:
            mapping[vertex] = None
            backtrack(index + 1, cost + step, mapping, used)
            del mapping[vertex]

    backtrack(0, 0, {}, set())
    return best if best <= cap else cap + 1


def ged_within(g1: Graph, g2: Graph, tau: int) -> bool:
    """Whether ``ged(g1, g2) <= tau``."""
    if tau < 0:
        return False
    return graph_edit_distance(g1, g2, upper_bound=tau) <= tau
