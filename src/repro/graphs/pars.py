"""The Pars baseline for graph edit distance search (pigeonhole principle).

Pars [136] partitions every data graph into ``tau + 1`` disjoint parts; a data
graph is a candidate only if at least one part is subgraph-isomorphic to the
query.  Candidates are verified with the threshold-limited exact GED.

A cheap label-multiset containment test prunes parts before the isomorphism
search, standing in for Pars's partition index at the scale of the synthetic
workloads (documented in DESIGN.md).
"""

from __future__ import annotations

from collections import Counter

from repro.common.stats import SearchResult, Timer
from repro.graphs.dataset import GraphDataset
from repro.graphs.ged import ged_within
from repro.graphs.graph import Graph
from repro.graphs.isomorphism import subgraph_isomorphic
from repro.graphs.partition import partition_graph


class ParsSearcher:
    """Pigeonhole baseline searcher for graph edit distance.

    Args:
        dataset: the collection of data graphs.
        tau: the GED threshold; the partitioning into ``tau + 1`` parts
            depends on it, so a searcher is built per threshold.
    """

    def __init__(self, dataset: GraphDataset, tau: int):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self._dataset = dataset
        self._tau = tau
        self._m = tau + 1
        self._parts: list[list[Graph]] = [
            partition_graph(dataset.graph(obj_id), self._m)
            for obj_id in range(len(dataset))
        ]

    @property
    def dataset(self) -> GraphDataset:
        return self._dataset

    @property
    def tau(self) -> int:
        return self._tau

    @property
    def m(self) -> int:
        return self._m

    def parts(self, obj_id: int) -> list[Graph]:
        """The precomputed parts of one data graph."""
        return self._parts[obj_id]

    @staticmethod
    def _labels_contained(part: Graph, query_labels: Counter, query_edge_labels: Counter) -> bool:
        """Necessary condition for subgraph isomorphism: label multisets contained."""
        for label, count in part.vertex_label_counts().items():
            if count > query_labels.get(label, 0):
                return False
        for label, count in part.edge_label_counts().items():
            if count > query_edge_labels.get(label, 0):
                return False
        return True

    def matching_parts(self, obj_id: int, query: Graph) -> list[int]:
        """Indices of parts that are subgraph-isomorphic to the query."""
        query_labels = Counter(query.vertex_label(v) for v in query.vertices)
        query_edge_labels = Counter(label for *_e, label in query.edges())
        matches = []
        for index, part in enumerate(self._parts[obj_id]):
            if not self._labels_contained(part, query_labels, query_edge_labels):
                continue
            if subgraph_isomorphic(part, query):
                matches.append(index)
        return matches

    def candidates(self, query: Graph) -> list[int]:
        query_labels = Counter(query.vertex_label(v) for v in query.vertices)
        query_edge_labels = Counter(label for *_e, label in query.edges())
        found = []
        for obj_id in range(len(self._dataset)):
            for part in self._parts[obj_id]:
                if not self._labels_contained(part, query_labels, query_edge_labels):
                    continue
                if subgraph_isomorphic(part, query):
                    found.append(obj_id)
                    break
        return found

    def search(self, query: Graph) -> SearchResult:
        timer = Timer()
        candidates = self.candidates(query)
        candidate_time = timer.restart()
        results = [
            obj_id
            for obj_id in candidates
            if ged_within(self._dataset.graph(obj_id), query, self._tau)
        ]
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
