"""Columnar (batch-at-a-time) pigeonring graph edit distance search.

:class:`ColumnarGraphSearcher` keeps the exact semantics of
:class:`repro.graphs.ring.RingGraphSearcher` but flattens the per-part label
containment test -- the first and by far the widest stage of the graph
pipeline -- into two dense count matrices over the label vocabulary of all
parts.  One broadcasted comparison per query replaces the per-part Counter
walks; only the parts that survive reach the (inherently per-pair) subgraph
isomorphism and chain checks, and only candidate graphs reach the exact GED
verification.
"""

from __future__ import annotations

import numpy as np

from repro.common.obs import span
from repro.common.stats import SearchResult, Timer
from repro.graphs.dataset import GraphDataset
from repro.graphs.ged import ged_within
from repro.graphs.graph import Graph
from repro.graphs.isomorphism import min_mapping_cost
from repro.graphs.ring import RingGraphSearcher


class ColumnarGraphSearcher(RingGraphSearcher):
    """Array-kernel pigeonring searcher for graph edit distance.

    Args:
        dataset: the collection of data graphs.
        tau: the GED threshold (also fixes ``m = tau + 1``).
        chain_length: chain length ``l``; the paper finds ``l`` in
            ``[tau - 2, tau]`` best.
    """

    def __init__(self, dataset: GraphDataset, tau: int, chain_length: int | None = None):
        super().__init__(dataset, tau, chain_length=chain_length)
        self._build_columns()

    def _build_columns(self) -> None:
        """Flatten every part's label multisets into dense count matrices."""
        vertex_vocab: dict = {}
        edge_vocab: dict = {}
        flat_parts: list[Graph] = []
        owners: list[int] = []
        indexes: list[int] = []
        for obj_id, parts in enumerate(self._parts):
            for index, part in enumerate(parts):
                flat_parts.append(part)
                owners.append(obj_id)
                indexes.append(index)
                for label in part.vertex_label_counts():
                    vertex_vocab.setdefault(label, len(vertex_vocab))
                for label in part.edge_label_counts():
                    edge_vocab.setdefault(label, len(edge_vocab))
        num_parts = len(flat_parts)
        vertex_counts = np.zeros((num_parts, max(1, len(vertex_vocab))), dtype=np.int64)
        edge_counts = np.zeros((num_parts, max(1, len(edge_vocab))), dtype=np.int64)
        for row, part in enumerate(flat_parts):
            for label, count in part.vertex_label_counts().items():
                vertex_counts[row, vertex_vocab[label]] = count
            for label, count in part.edge_label_counts().items():
                edge_counts[row, edge_vocab[label]] = count
        self._flat_parts = flat_parts
        self._part_owner = np.asarray(owners, dtype=np.int64)
        self._part_index = np.asarray(indexes, dtype=np.int64)
        self._vertex_vocab = vertex_vocab
        self._edge_vocab = edge_vocab
        self._vertex_counts = vertex_counts
        self._edge_counts = edge_counts

    def _contained_parts(self, query: Graph) -> np.ndarray:
        """Rows of every part whose label multisets fit inside the query."""
        query_vertices = np.zeros(self._vertex_counts.shape[1], dtype=np.int64)
        for vertex in query.vertices:
            slot = self._vertex_vocab.get(query.vertex_label(vertex))
            if slot is not None:
                query_vertices[slot] += 1
        query_edges = np.zeros(self._edge_counts.shape[1], dtype=np.int64)
        for *_edge, label in query.edges():
            slot = self._edge_vocab.get(label)
            if slot is not None:
                query_edges[slot] += 1
        contained = (self._vertex_counts <= query_vertices).all(axis=1)
        contained &= (self._edge_counts <= query_edges).all(axis=1)
        return np.flatnonzero(contained)

    def _candidates_columnar(self, query: Graph) -> tuple[list[int], int]:
        """Candidate ids (ascending) plus the label-survivor graph count."""
        rows = self._contained_parts(query)
        if not rows.size:
            return [], 0
        owners = self._part_owner[rows]
        boundaries = np.flatnonzero(np.diff(owners)) + 1
        groups = np.split(rows, boundaries)
        found: list[int] = []
        for group in groups:
            obj_id = int(self._part_owner[group[0]])
            starts = [
                int(self._part_index[row])
                for row in group.tolist()
                if min_mapping_cost(self._flat_parts[row], query, budget=0) == 0
            ]
            if not starts:
                continue
            if self._chain_length == 1 or self._passes_chain_check(obj_id, starts, query):
                found.append(obj_id)
        return found, len(groups)

    def candidates(self, query: Graph) -> list[int]:
        found, _generated = self._candidates_columnar(query)
        return found

    def search(self, query: Graph) -> SearchResult:
        timer = Timer()
        with span("candidates"):
            candidates, generated = self._candidates_columnar(query)
        candidate_time = timer.restart()
        with span("verify"):
            results = [
                obj_id
                for obj_id in candidates
                if ged_within(self._dataset.graph(obj_id), query, self._tau)
            ]
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
            extra={"generated": generated, "verified": len(candidates)},
        )
