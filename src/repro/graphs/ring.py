"""Pigeonring-accelerated graph edit distance search (Section 6.4).

The Ring searcher keeps Pars's first step (find parts that are subgraph-
isomorphic to the query, i.e. boxes of value 0) and adds the prefix-viable
chain check of Theorem 3 with the uniform quota ``tau / (tau + 1) < 1``: a
chain can only start at a zero box, and subsequent boxes are charged with a
lower bound of ``min ged(x_j, q')`` obtained from the cheapest
deletion-neighbourhood-style embedding of the part into the query
(:func:`repro.graphs.isomorphism.min_mapping_cost`).  Lower bounds keep the
filter complete while avoiding exact per-part edit distances, mirroring the
paper's Example 12.
"""

from __future__ import annotations

from collections import Counter

from repro.common.stats import SearchResult, Timer
from repro.graphs.dataset import GraphDataset
from repro.graphs.ged import ged_within
from repro.graphs.graph import Graph
from repro.graphs.isomorphism import min_mapping_cost
from repro.graphs.pars import ParsSearcher


class RingGraphSearcher(ParsSearcher):
    """Pigeonring searcher for graph edit distance.

    Args:
        dataset: the collection of data graphs.
        tau: the GED threshold (also fixes ``m = tau + 1``).
        chain_length: chain length ``l``; the paper finds ``l`` in
            ``[tau - 2, tau]`` best.
    """

    def __init__(self, dataset: GraphDataset, tau: int, chain_length: int | None = None):
        super().__init__(dataset, tau)
        if chain_length is None:
            chain_length = max(1, tau - 1)
        if chain_length < 1:
            raise ValueError("chain_length must be at least 1")
        self._chain_length = min(chain_length, self._m)

    @property
    def chain_length(self) -> int:
        return self._chain_length

    def _passes_chain_check(self, obj_id: int, starts: list[int], query: Graph) -> bool:
        m = self._m
        length = self._chain_length
        quota = self._tau / m
        parts = self._parts[obj_id]
        # index -> (value, cap used); a value <= cap is exact, a value of
        # cap + 1 is a truncated lower bound that may be refined with a larger
        # budget later.
        cache: dict[int, tuple[float, int]] = {start: (0.0, 0) for start in starts}

        def box_value(index: int, cap: int) -> float:
            """Lower bound of box ``index``, exact whenever it is at most ``cap``."""
            cached = cache.get(index)
            if cached is not None:
                value, cap_used = cached
                if value <= cap_used or cap <= cap_used:
                    return value
            value = float(min_mapping_cost(parts[index], query, budget=cap))
            cache[index] = (value, cap)
            return value

        for start in starts:
            running = 0.0
            passed = True
            for offset in range(length):
                box = (start + offset) % m
                bound = (offset + 1) * quota
                remaining = int(bound - running)
                value = box_value(box, max(0, remaining))
                running += value
                if running > bound + 1e-12:
                    passed = False
                    break
            if passed:
                return True
        return False

    def candidates(self, query: Graph) -> list[int]:
        query_labels = Counter(query.vertex_label(v) for v in query.vertices)
        query_edge_labels = Counter(label for *_e, label in query.edges())
        found = []
        for obj_id in range(len(self._dataset)):
            starts = []
            for index, part in enumerate(self._parts[obj_id]):
                if not self._labels_contained(part, query_labels, query_edge_labels):
                    continue
                if min_mapping_cost(part, query, budget=0) == 0:
                    starts.append(index)
            if not starts:
                continue
            if self._chain_length == 1 or self._passes_chain_check(obj_id, starts, query):
                found.append(obj_id)
        return found

    def search(self, query: Graph) -> SearchResult:
        timer = Timer()
        candidates = self.candidates(query)
        candidate_time = timer.restart()
        results = [
            obj_id
            for obj_id in candidates
            if ged_within(self._dataset.graph(obj_id), query, self._tau)
        ]
        verify_time = timer.elapsed()
        return SearchResult(
            results=results,
            candidates=candidates,
            candidate_time=candidate_time,
            verify_time=verify_time,
        )
