"""Partitioning a data graph into ``tau + 1`` disjoint parts (the Pars extract step).

Pars divides each data graph into ``tau + 1`` disjoint subgraphs; if
``ged(x, q) <= tau`` then at least one part is untouched by the edit script
and is therefore subgraph-isomorphic to the query.  The original algorithm
keeps *half-edges* (edges crossing parts, owned by one side); this
reproduction assigns vertices to parts with a BFS-balanced sweep and keeps
only the edges internal to a part.  Dropping cross edges makes each part
strictly smaller, so the filter stays complete (an untouched part is still a
subgraph of the query); the lost pruning power is the documented substitution
in DESIGN.md.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph


def partition_vertices(graph: Graph, num_parts: int) -> list[list]:
    """Assign vertices to ``num_parts`` groups of nearly equal size.

    A BFS sweep keeps each group as connected as practical, which makes the
    parts more selective patterns than random vertex subsets would be.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be at least 1")
    vertices = graph.vertices
    if not vertices:
        return [[] for _ in range(num_parts)]
    order: list = []
    visited: set = set()
    for seed in vertices:
        if seed in visited:
            continue
        queue = deque([seed])
        visited.add(seed)
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            for neighbor in sorted(graph.neighbors(vertex), key=repr):
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
    base, remainder = divmod(len(order), num_parts)
    groups: list[list] = []
    start = 0
    for part in range(num_parts):
        size = base + (1 if part < remainder else 0)
        groups.append(order[start : start + size])
        start += size
    return groups


def partition_graph(graph: Graph, num_parts: int) -> list[Graph]:
    """The ``num_parts`` induced subgraphs used as Pars / Ring features."""
    return [
        graph.induced_subgraph(group) for group in partition_vertices(graph, num_parts)
    ]
