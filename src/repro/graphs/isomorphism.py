"""Subgraph isomorphism and partial-mapping lower bounds.

Two related questions are answered here:

* :func:`subgraph_isomorphic` -- is the pattern graph isomorphic to a subgraph
  of the target (labels must match exactly)?  This is the Pars first-step
  test: a data-graph part within edit distance 0 of some query subgraph.
* :func:`min_mapping_cost` -- the cheapest way to embed the pattern into the
  target when deviations are charged like the deletion-neighbourhood
  operations of Section 6.4: wildcarding a vertex label, deleting an edge, or
  deleting a vertex (after its edges) each cost 1.  For every subgraph ``q'``
  of the target, ``min_mapping_cost(pattern, target) <= ged(pattern, q')``, so
  the value is a valid lower bound of the box ``b_i = min ged(x_i, q')`` used
  by the Ring chain check.
"""

from __future__ import annotations

from repro.graphs.graph import Graph


def subgraph_isomorphic(pattern: Graph, target: Graph) -> bool:
    """Whether ``pattern`` is isomorphic to a (not necessarily induced) subgraph of ``target``."""
    return min_mapping_cost(pattern, target, budget=0) == 0


def _label_feasible(pattern: Graph, target: Graph, budget: int) -> bool:
    """Cheap necessary condition: missing vertex labels alone already cost more than the budget."""
    target_counts = target.vertex_label_counts()
    missing = 0
    for label, count in pattern.vertex_label_counts().items():
        missing += max(0, count - target_counts.get(label, 0))
        if missing > budget:
            return False
    return True


def min_mapping_cost(pattern: Graph, target: Graph, budget: int) -> int:
    """Minimum deletion-neighbourhood cost of embedding ``pattern`` into ``target``.

    The search assigns every pattern vertex either to a distinct target vertex
    or to "deleted".  Costs: 1 per deleted vertex, 1 per pattern edge that is
    not matched by a target edge with the same label between the images
    (including edges incident to deleted vertices), and 1 per mapped vertex
    whose label differs from its image's label.  The exact minimum is returned
    when it is at most ``budget``; otherwise ``budget + 1`` is returned (the
    caller only needs to know the bound was exceeded).
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if pattern.num_vertices == 0:
        return 0
    if not _label_feasible(pattern, target, budget):
        return budget + 1

    # Order pattern vertices most-constrained first (highest degree).
    order = sorted(pattern.vertices, key=lambda v: -pattern.degree(v))
    target_vertices = target.vertices
    best = budget + 1

    def edge_cost(vertex, image, mapping) -> int:
        """Cost of pattern edges between ``vertex`` and already-mapped vertices."""
        cost = 0
        for neighbor in pattern.neighbors(vertex):
            if neighbor not in mapping:
                continue
            neighbor_image = mapping[neighbor]
            if image is None or neighbor_image is None:
                cost += 1
                continue
            if not target.has_edge(image, neighbor_image):
                cost += 1
            elif target.edge_label(image, neighbor_image) != pattern.edge_label(
                vertex, neighbor
            ):
                cost += 1
        return cost

    def backtrack(index: int, cost: int, mapping: dict, used: set) -> None:
        nonlocal best
        if cost >= best:
            return
        if index == len(order):
            best = cost
            return
        vertex = order[index]
        label = pattern.vertex_label(vertex)
        for image in target_vertices:
            if image in used:
                continue
            step = 0 if target.vertex_label(image) == label else 1
            step += edge_cost(vertex, image, mapping)
            if cost + step >= best:
                continue
            mapping[vertex] = image
            used.add(image)
            backtrack(index + 1, cost + step, mapping, used)
            used.discard(image)
            del mapping[vertex]
        # Deleting the vertex: 1 for the vertex plus 1 per incident edge to
        # already-mapped neighbours (edges to later vertices are charged when
        # those vertices are processed).
        step = 1 + edge_cost(vertex, None, mapping)
        if cost + step < best:
            mapping[vertex] = None
            backtrack(index + 1, cost + step, mapping, used)
            del mapping[vertex]

    backtrack(0, 0, {}, set())
    return best
