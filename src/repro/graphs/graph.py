"""A small labelled-graph data structure.

Graphs are undirected, with string (or any hashable) labels on vertices and
edges.  They are intentionally lightweight: the search algorithms only need
label lookups, adjacency, induced subgraphs and simple statistics.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping


class Graph:
    """An undirected labelled graph.

    Args:
        vertex_labels: mapping from vertex id to label.
        edges: mapping from a pair of vertex ids (any 2-iterable) to the edge
            label, or an iterable of ``(u, v, label)`` triples.
    """

    def __init__(
        self,
        vertex_labels: Mapping[Hashable, Hashable] | None = None,
        edges: Mapping | Iterable | None = None,
    ):
        self._labels: dict = dict(vertex_labels or {})
        self._edges: dict[frozenset, Hashable] = {}
        self._adjacency: dict = {v: set() for v in self._labels}
        if edges:
            items = edges.items() if isinstance(edges, Mapping) else (
                ((u, v), label) for u, v, label in edges
            )
            for (u, v), label in items:
                self.add_edge(u, v, label)

    # -- construction -----------------------------------------------------

    def add_vertex(self, vertex: Hashable, label: Hashable) -> None:
        self._labels[vertex] = label
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Hashable, v: Hashable, label: Hashable) -> None:
        if u == v:
            raise ValueError("self loops are not supported")
        if u not in self._labels or v not in self._labels:
            raise ValueError("both endpoints must be existing vertices")
        self._edges[frozenset((u, v))] = label
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        del self._edges[frozenset((u, v))]
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def remove_vertex(self, vertex: Hashable) -> None:
        for neighbor in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adjacency[vertex]
        del self._labels[vertex]

    # -- queries ----------------------------------------------------------

    @property
    def vertices(self) -> list:
        return list(self._labels)

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex_label(self, vertex: Hashable) -> Hashable:
        return self._labels[vertex]

    def has_vertex(self, vertex: Hashable) -> bool:
        return vertex in self._labels

    def neighbors(self, vertex: Hashable) -> set:
        return set(self._adjacency[vertex])

    def degree(self, vertex: Hashable) -> int:
        return len(self._adjacency[vertex])

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return frozenset((u, v)) in self._edges

    def edge_label(self, u: Hashable, v: Hashable) -> Hashable:
        return self._edges[frozenset((u, v))]

    def edges(self) -> list[tuple]:
        """All edges as ``(u, v, label)`` triples (arbitrary endpoint order)."""
        return [(*sorted(pair, key=repr), label) for pair, label in self._edges.items()]

    def vertex_label_counts(self) -> dict:
        counts: dict = {}
        for label in self._labels.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def edge_label_counts(self) -> dict:
        counts: dict = {}
        for label in self._edges.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def induced_subgraph(self, vertices: Iterable[Hashable]) -> "Graph":
        """The subgraph induced by a vertex subset (cross edges dropped)."""
        keep = set(vertices)
        subgraph = Graph({v: self._labels[v] for v in keep})
        for pair, label in self._edges.items():
            u, v = tuple(pair)
            if u in keep and v in keep:
                subgraph.add_edge(u, v, label)
        return subgraph

    def copy(self) -> "Graph":
        clone = Graph(dict(self._labels))
        for pair, label in self._edges.items():
            u, v = tuple(pair)
            clone.add_edge(u, v, label)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._labels == other._labels and self._edges == other._edges

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
