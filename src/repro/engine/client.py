"""Clients for the HTTP serving layer: blocking and asyncio.

:class:`EngineClient` is the blocking counterpart of
:class:`repro.engine.server.EngineServer`: one persistent HTTP/1.1
connection (``http.client``), domain payloads encoded through the same
:mod:`repro.engine.wire` codecs the server decodes with, and the server's
HTTP error taxonomy mapped back to typed exceptions:

* 400 -> :class:`RequestError` (the request itself is malformed),
* 429 -> :class:`ServerBusyError` (admission control; carries
  ``retry_after``),
* 503 -> :class:`ServerUnavailableError` (draining, or a dead shard
  worker; also carries ``retry_after``).

With ``retries > 0`` the client absorbs transient failures itself:
429/503 responses and connection-level errors are retried with capped
exponential backoff plus full jitter, honouring the server's
``Retry-After`` hint as a lower bound on the wait.  ``retries=0`` (the
default) keeps the historical fail-fast behaviour.  The client also
tracks a **read-your-writes session token**: every acknowledged
``/mutate`` response carries the WAL sequence map the batch landed at,
and subsequent searches send it back as ``X-Session-Token`` so a
replicated engine never routes them to a replica that has not yet
applied the caller's own writes.

:func:`asearch` is the coroutine equivalent of one ``search`` call for
asyncio callers -- it opens a connection, issues the request and decodes
the response without threads.  Both sides are stdlib-only.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any
from urllib.parse import urlsplit

from repro.engine.api import Query
from repro.engine.wire import encode_mutate, encode_query, merge_session


class EngineClientError(Exception):
    """Base class of every error raised by the HTTP clients."""


class RequestError(EngineClientError):
    """The server rejected the request as malformed (HTTP 400/404/405/413)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServerBusyError(EngineClientError):
    """Admission control rejected the query (HTTP 429); retry later."""

    def __init__(self, message: str, retry_after: float | None):
        super().__init__(message)
        self.retry_after = retry_after


class ServerUnavailableError(EngineClientError):
    """The server is draining or lost a shard worker (HTTP 503)."""

    def __init__(self, message: str, retry_after: float | None):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class WireResponse:
    """One decoded ``/search`` or ``/search/topk`` answer.

    Mirrors the wire schema: ``ids``/``scores`` are exactly what the engine
    returned, ``batch_size`` is the micro-batch the query was coalesced
    into, and ``raw`` keeps the full JSON body for forward compatibility.
    """

    ids: list[int]
    scores: list[float] | None
    tau_effective: float | int | None
    num_candidates: int
    engine_time_ms: float
    cached: bool
    batch_size: int
    raw: dict
    #: pre-chain-filter candidate count (None when the searcher does not
    #: report the funnel; see Response.num_generated)
    num_generated: int | None = None
    #: span timeline for the request (only present when tracing was asked
    #: for via ``trace=True`` / ``trace_id=`` or forced server-side)
    trace: dict | None = None

    @property
    def num_results(self) -> int:
        return len(self.ids)

    @classmethod
    def from_wire(cls, body: dict) -> "WireResponse":
        return cls(
            ids=list(body["ids"]),
            scores=None if body.get("scores") is None else list(body["scores"]),
            tau_effective=body.get("tau_effective"),
            num_candidates=body.get("num_candidates", 0),
            num_generated=body.get("num_generated"),
            engine_time_ms=body.get("engine_time_ms", 0.0),
            cached=body.get("cached", False),
            batch_size=body.get("batch_size", 1),
            trace=body.get("trace"),
            raw=body,
        )


def _parse_base_url(base_url: str) -> tuple[str, int]:
    parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
    if not parts.hostname:
        raise ValueError(f"no host in {base_url!r}")
    return parts.hostname, parts.port or 80


def parse_retry_after(value: str | None) -> float | None:
    """The ``Retry-After`` header as seconds, or ``None`` when unusable.

    Servers (and intermediaries) send missing, empty, HTTP-date or otherwise
    malformed values in the wild; 429/503 handling must degrade to "no hint"
    rather than raise while the typed error is being built.
    """
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return seconds if seconds >= 0 else None


def _raise_for_status(status: int, body: dict, retry_after: float | None) -> None:
    message = body.get("error", "") if isinstance(body, dict) else str(body)
    if status == 429:
        raise ServerBusyError(message, retry_after)
    if status == 503:
        raise ServerUnavailableError(message, retry_after)
    raise RequestError(status, message)


class EngineClient:
    """A blocking HTTP client for one engine server.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8080"`` (or bare ``host:port``).
        timeout: socket timeout in seconds for connect and each request.
        retries: retry budget **per call** for transient failures -- 429
            (admission control), 503 (draining / failover in progress) and
            connection-level errors (server restarted, keep-alive dropped).
            0 fails fast exactly like the historical client.  A retried
            mutation is at-least-once: the server may have applied a batch
            whose ack was lost, so callers that retry writes should use
            explicit ids (upserts with ids and deletes are idempotent).
        backoff_base / backoff_cap: the attempt-``n`` retry sleeps a
            uniformly random time in ``[0, min(cap, base * 2**n)]`` (full
            jitter); a ``Retry-After`` hint raises the lower bound to the
            hinted wait (itself capped by ``backoff_cap``).

    One client owns one persistent connection and is **not** thread-safe;
    give each thread its own client (see ``run_load_bench``).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be positive")
        self._host, self._port = _parse_base_url(base_url)
        self._timeout = timeout
        self._retries = retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._connection: http.client.HTTPConnection | None = None
        self._session: str | None = None
        #: transient failures absorbed by the retry loop (observability for
        #: load generators and the chaos harness)
        self.retries_used = 0

    @property
    def session(self) -> str | None:
        """The read-your-writes token tracked from acknowledged mutations."""
        return self._session

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "EngineClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _raw_request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, float | None]:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request_headers = dict(headers) if headers else {}
        if body:
            request_headers["Content-Type"] = "application/json"
        try:
            self._connection.request(method, path, body=body, headers=request_headers)
            response = self._connection.getresponse()
            data = response.read()
        except (ConnectionError, socket.timeout, http.client.HTTPException):
            # The connection is unusable (server restarted, keep-alive
            # dropped); throw it away so the next call reconnects.
            self.close()
            raise
        return response.status, data, parse_retry_after(response.getheader("Retry-After"))

    def _retry_delay(self, attempt: int, retry_after: float | None) -> float:
        """Full-jitter capped exponential backoff, floored by Retry-After."""
        ceiling = min(self._backoff_cap, self._backoff_base * (2**attempt))
        delay = random.uniform(0.0, ceiling)
        if retry_after is not None:
            delay = max(delay, min(retry_after, self._backoff_cap))
        return delay

    def _retrying_raw(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, float | None]:
        """One request with the per-call retry budget applied.

        Retries connection-level errors and 429/503 answers; everything
        else (including 400s) returns/raises immediately -- a malformed
        request does not become valid by waiting.
        """
        attempt = 0
        while True:
            retry_after: float | None = None
            try:
                status, data, retry_after = self._raw_request(method, path, payload, headers)
            except (ConnectionError, socket.timeout, http.client.HTTPException):
                if attempt >= self._retries:
                    raise
            else:
                if status not in (429, 503) or attempt >= self._retries:
                    return status, data, retry_after
            time.sleep(self._retry_delay(attempt, retry_after))
            attempt += 1
            self.retries_used += 1

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        status, data, retry_after = self._retrying_raw(method, path, payload, headers)
        decoded = json.loads(data.decode("utf-8")) if data else {}
        if status != 200:
            _raise_for_status(status, decoded, retry_after)
        return decoded

    def _search_headers(self, trace: bool, trace_id: str | None) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        elif trace:
            headers["X-Trace"] = "1"
        if self._session is not None:
            headers["X-Session-Token"] = self._session
        return headers or None

    # -- API ---------------------------------------------------------------

    def search(
        self,
        backend: str,
        payload: Any,
        tau: float | int | None = None,
        chain_length: int | None = None,
        algorithm: str = "ring",
        trace: bool = False,
        trace_id: str | None = None,
    ) -> WireResponse:
        """Thresholded selection over the wire (``POST /search``).

        ``trace=True`` asks the server to record a span timeline for this
        query (returned as ``WireResponse.trace``); ``trace_id`` does the
        same under a caller-chosen id, so one id can thread through logs
        on both sides of the wire.
        """
        query = Query(
            backend=backend,
            payload=payload,
            tau=tau,
            chain_length=chain_length,
            algorithm=algorithm,
        )
        return WireResponse.from_wire(
            self._request(
                "POST",
                "/search",
                encode_query(query),
                headers=self._search_headers(trace, trace_id),
            )
        )

    def search_topk(
        self,
        backend: str,
        payload: Any,
        k: int,
        tau: float | int | None = None,
        chain_length: int | None = None,
        algorithm: str = "ring",
        trace: bool = False,
        trace_id: str | None = None,
    ) -> WireResponse:
        """Top-k search over the wire (``POST /search/topk``)."""
        query = Query(
            backend=backend,
            payload=payload,
            tau=tau,
            k=k,
            chain_length=chain_length,
            algorithm=algorithm,
        )
        return WireResponse.from_wire(
            self._request(
                "POST",
                "/search/topk",
                encode_query(query),
                headers=self._search_headers(trace, trace_id),
            )
        )

    def search_wire(self, body: dict, topk: bool = False, trace: bool = False) -> WireResponse:
        """Send an already-encoded wire query (used by the load generator)."""
        path = "/search/topk" if topk else "/search"
        return WireResponse.from_wire(
            self._request("POST", path, body, headers=self._search_headers(trace, None))
        )

    def mutate(
        self,
        backend: str,
        ops: list[dict],
        durability: str | None = None,
    ) -> dict:
        """Apply one batch of mixed upserts/deletes (``POST /mutate``).

        Each op is ``{"op": "upsert", "record": <domain record>, "id":
        optional}`` or ``{"op": "delete", "id": int}``.  ``durability`` asks
        for an ack level (``"memory"`` or ``"wal"``); the response carries
        per-op ``results`` plus the effective ``durability`` and the WAL
        sequence number the batch was acknowledged at.

        An acknowledged mutation advances the client's read-your-writes
        session token (merged per shard, so tokens only move forward);
        later searches from this client carry it as ``X-Session-Token``.
        """
        body = self._request("POST", "/mutate", encode_mutate(backend, ops, durability))
        token = body.get("session")
        if isinstance(token, str) and token:
            self._session = merge_session(self._session, token)
        return body

    def upsert(
        self,
        backend: str,
        record: Any,
        obj_id: int | None = None,
        durability: str | None = None,
    ) -> int:
        """Insert or overwrite one record; returns its id.

        One-op shim over :meth:`mutate` (the legacy ``POST /upsert``
        endpoint remains available to older clients).
        """
        body = self.mutate(
            backend, [{"op": "upsert", "record": record, "id": obj_id}], durability
        )
        return int(body["results"][0]["id"])

    def delete(self, backend: str, obj_id: int, durability: str | None = None) -> bool:
        """Remove one id; True when it named a live object.

        One-op shim over :meth:`mutate` (the legacy ``POST /delete``
        endpoint remains available to older clients).
        """
        body = self.mutate(backend, [{"op": "delete", "id": obj_id}], durability)
        return bool(body["results"][0]["deleted"])

    def compact(self, backend: str | None = None) -> dict:
        """Fold the server's delta store(s) into rebuilt indexes."""
        payload: dict | None = None
        if backend is not None:
            payload = {"backend": backend}
        return self._request("POST", "/compact", payload)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def manifest(self) -> dict:
        return self._request("GET", "/manifest")

    def metrics(self) -> str:
        """The server's Prometheus text exposition (``GET /metrics``)."""
        status, data, retry_after = self._retrying_raw("GET", "/metrics")
        text = data.decode("utf-8")
        if status != 200:
            try:
                decoded = json.loads(text) if text else {}
            except json.JSONDecodeError:
                decoded = {"error": text}
            _raise_for_status(status, decoded, retry_after)
        return text

    def traces(self) -> dict:
        """Recently recorded request traces (``GET /debug/traces``)."""
        return self._request("GET", "/debug/traces")

    def profile(self, seconds: float | None = None) -> dict:
        """Folded-stack profile of the serving process (``GET /debug/profile``).

        With ``seconds`` the server measures a fresh window of that length
        (capped server-side); without it, the continuous profiler's
        whole-lifetime snapshot comes back instantly.
        """
        path = "/debug/profile"
        if seconds is not None:
            path = f"/debug/profile?seconds={seconds:g}"
        return self._request("GET", path)

    def slo(self) -> dict:
        """Burn-rate monitors and shard health (``GET /debug/slo``)."""
        return self._request("GET", "/debug/slo")


# ---------------------------------------------------------------------------
# asyncio side
# ---------------------------------------------------------------------------


async def _arequest(
    host: str, port: int, method: str, path: str, payload: dict | None, timeout: float
) -> tuple[int, dict, dict[str, str]]:
    """One HTTP/1.1 request over a fresh asyncio connection."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

        async def _read_all() -> tuple[int, dict, dict[str, str]]:
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2:
                raise EngineClientError(f"malformed status line {status_line!r}")
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            data = await reader.readexactly(length) if length else await reader.read()
            decoded = json.loads(data.decode("utf-8")) if data else {}
            return status, decoded, headers

        return await asyncio.wait_for(_read_all(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def asearch(
    base_url: str,
    backend: str,
    payload: Any,
    tau: float | int | None = None,
    k: int | None = None,
    chain_length: int | None = None,
    algorithm: str = "ring",
    timeout: float = 30.0,
) -> WireResponse:
    """One engine query from asyncio code, no threads involved.

    Chooses ``/search`` or ``/search/topk`` depending on whether ``k`` is
    set and raises the same typed errors as :class:`EngineClient`.
    """
    host, port = _parse_base_url(base_url)
    query = Query(
        backend=backend,
        payload=payload,
        tau=tau,
        k=k,
        chain_length=chain_length,
        algorithm=algorithm,
    )
    path = "/search/topk" if k is not None else "/search"
    status, body, headers = await _arequest(
        host, port, "POST", path, encode_query(query), timeout
    )
    if status != 200:
        _raise_for_status(status, body, parse_retry_after(headers.get("retry-after")))
    return WireResponse.from_wire(body)
