"""On-disk index containers: build once, save, and serve without rebuilding.

A container is a directory holding

* ``manifest.json`` -- format version, backend name and store descriptor,
* a backend-owned payload (``data.npz`` for Hamming -- vectors plus the
  serialised partition index -- or ``data.json`` for the other domains), and
* an optional persisted query workload (``queries.npz`` / ``queries.json``).

Loading resolves the backend through the registry, so a container is
self-describing: :func:`load_container` needs only the path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engine.backend import Backend, get_backend

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"


@dataclass
class Container:
    """A loaded index container."""

    backend: Backend
    store: Any
    queries: list[Any] | None
    manifest: dict


def save_container(
    backend: Backend,
    store: Any,
    directory: str,
    queries: Sequence[Any] | None = None,
) -> dict:
    """Write a store (and optionally a query workload) into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "format_version": FORMAT_VERSION,
        "backend": backend.name,
        "descriptor": backend.describe(store),
        # Recorded at build time (JSON keeps the int/float distinction, which
        # is semantic for the sets backend) so network clients and the load
        # generator can pick a threshold without loading the store.
        "default_tau": backend.default_tau(store),
    }
    backend.save_store(store, directory)
    if queries is not None:
        backend.save_queries(queries, directory)
        manifest["num_queries"] = len(queries)
    with open(os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest


def load_container(directory: str) -> Container:
    """Load a container written by :func:`save_container`."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"{directory!r} is not an index container (no manifest)")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported container format {version!r} (supported: {FORMAT_VERSION})")
    backend = get_backend(manifest["backend"])
    store = backend.load_store(directory)
    queries = backend.load_queries(directory)
    return Container(backend=backend, store=store, queries=queries, manifest=manifest)
