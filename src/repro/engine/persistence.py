"""On-disk index containers: build once, save, and serve without rebuilding.

A container is a directory holding

* ``manifest.json`` -- format version, backend name and store descriptor,
* a backend-owned payload (``data.npz`` for Hamming -- vectors plus the
  serialised partition index -- or ``data.json`` for the other domains),
* an optional persisted query workload (``queries.npz`` / ``queries.json``),
  and
* an optional ``mutations.json`` -- the delta/tombstone overlay of a
  mutated index (:mod:`repro.engine.mutation`), so upserts and deletes
  survive save/load without forcing a compaction.

Format versioning: version 1 is the original immutable layout; version 2
adds the overlay; version 3 adds ``wal_seq`` -- the write-ahead-log sequence
number this container checkpoints (every WAL batch with ``seq <= wal_seq``
is already folded into the stored state, so replay after a crash skips
them).  Containers are written at the *lowest* version that can represent
them (an unmutated index with no WAL history still writes version 1), and
readers accept all three -- but an old reader refuses a newer container
outright rather than silently serving it without its mutations.

Every file a container write touches goes through :func:`atomic_write`:
write to a temp file, fsync, then ``os.replace`` over the target.  A crash
mid-save leaves either the old file or the new one, never a half-written
manifest that a later load would trust.

Loading resolves the backend through the registry, so a container is
self-describing: :func:`load_container` needs only the path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, BinaryIO, Callable, Sequence

from repro.engine.backend import Backend, get_backend
from repro.engine.mutation import DeltaStore, delta_from_json, delta_to_json

FORMAT_VERSION = 3
SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2, 3})
MANIFEST_NAME = "manifest.json"
MUTATIONS_NAME = "mutations.json"


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (makes a rename durable)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem refuses dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write(path: str, writer: Callable[[BinaryIO], None]) -> None:
    """Write a file atomically: temp file + fsync + ``os.replace``.

    ``writer`` receives a binary handle positioned at the start of a temp
    file next to ``path``; on any failure the temp file is removed and the
    original is left untouched.
    """
    temp_path = path + ".tmp"
    try:
        with open(temp_path, "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.remove(temp_path)
        raise
    _fsync_directory(os.path.dirname(path))


def atomic_write_json(path: str, payload: Any, indent: int | None = None) -> None:
    """Serialise ``payload`` as JSON and write it atomically to ``path``."""
    data = json.dumps(payload, indent=indent).encode("utf-8")
    atomic_write(path, lambda handle: handle.write(data))


@dataclass
class Container:
    """A loaded index container."""

    backend: Backend
    store: Any
    queries: list[Any] | None
    manifest: dict
    delta: DeltaStore | None = None

    @property
    def wal_seq(self) -> int:
        """The WAL sequence number this container's state checkpoints."""
        return int(self.manifest.get("wal_seq", 0))


def save_container(
    backend: Backend,
    store: Any,
    directory: str,
    queries: Sequence[Any] | None = None,
    delta: DeltaStore | None = None,
    wal_seq: int = 0,
) -> dict:
    """Write a store (and optionally a workload and overlay) to ``directory``.

    ``wal_seq`` records how much write-ahead-log history the saved state
    already contains; replay on load applies only batches after it.
    """
    os.makedirs(directory, exist_ok=True)
    write_delta = delta is not None and delta.mutated
    if wal_seq > 0:
        version = 3
    elif write_delta:
        version = 2
    else:
        version = 1
    manifest = {
        "format_version": version,
        "backend": backend.name,
        "descriptor": backend.describe(store),
        # Recorded at build time (JSON keeps the int/float distinction, which
        # is semantic for the sets backend) so network clients and the load
        # generator can pick a threshold without loading the store.
        "default_tau": backend.default_tau(store),
    }
    if wal_seq > 0:
        manifest["wal_seq"] = int(wal_seq)
    backend.save_store(store, directory)
    mutations_path = os.path.join(directory, MUTATIONS_NAME)
    if write_delta:
        manifest["mutations"] = delta.summary()
        atomic_write_json(mutations_path, delta_to_json(backend, delta))
    elif os.path.exists(mutations_path):
        # Overwriting a mutated container with an unmutated store: a stale
        # overlay must not resurrect on the next load.
        os.remove(mutations_path)
    if queries is not None:
        backend.save_queries(queries, directory)
        manifest["num_queries"] = len(queries)
    atomic_write_json(os.path.join(directory, MANIFEST_NAME), manifest, indent=2)
    return manifest


def load_container(directory: str) -> Container:
    """Load a container written by :func:`save_container`."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"{directory!r} is not an index container (no manifest)")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_FORMAT_VERSIONS))
        raise ValueError(f"unsupported container format {version!r} (supported: {supported})")
    backend = get_backend(manifest["backend"])
    store = backend.load_store(directory)
    queries = backend.load_queries(directory)
    delta = None
    mutations_path = os.path.join(directory, MUTATIONS_NAME)
    if os.path.exists(mutations_path):
        with open(mutations_path, encoding="utf-8") as handle:
            delta = delta_from_json(backend, json.load(handle))
    return Container(backend=backend, store=store, queries=queries, manifest=manifest, delta=delta)
