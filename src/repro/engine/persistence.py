"""On-disk index containers: build once, save, and serve without rebuilding.

A container is a directory holding

* ``manifest.json`` -- format version, backend name and store descriptor,
* a backend-owned payload (``data.npz`` for Hamming -- vectors plus the
  serialised partition index -- or ``data.json`` for the other domains),
* an optional persisted query workload (``queries.npz`` / ``queries.json``),
  and
* an optional ``mutations.json`` -- the delta/tombstone overlay of a
  mutated index (:mod:`repro.engine.mutation`), so upserts and deletes
  survive save/load without forcing a compaction.

Format versioning: version 1 is the original immutable layout; version 2
adds the overlay.  Containers are written at the *lowest* version that can
represent them (an unmutated index still writes version 1), and readers
accept both -- but a version-1 reader refuses a version-2 container
outright rather than silently serving it without its mutations.

Loading resolves the backend through the registry, so a container is
self-describing: :func:`load_container` needs only the path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engine.backend import Backend, get_backend
from repro.engine.mutation import DeltaStore, delta_from_json, delta_to_json

FORMAT_VERSION = 2
SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2})
MANIFEST_NAME = "manifest.json"
MUTATIONS_NAME = "mutations.json"


@dataclass
class Container:
    """A loaded index container."""

    backend: Backend
    store: Any
    queries: list[Any] | None
    manifest: dict
    delta: DeltaStore | None = None


def save_container(
    backend: Backend,
    store: Any,
    directory: str,
    queries: Sequence[Any] | None = None,
    delta: DeltaStore | None = None,
) -> dict:
    """Write a store (and optionally a workload and overlay) to ``directory``."""
    os.makedirs(directory, exist_ok=True)
    write_delta = delta is not None and delta.mutated
    manifest = {
        "format_version": FORMAT_VERSION if write_delta else 1,
        "backend": backend.name,
        "descriptor": backend.describe(store),
        # Recorded at build time (JSON keeps the int/float distinction, which
        # is semantic for the sets backend) so network clients and the load
        # generator can pick a threshold without loading the store.
        "default_tau": backend.default_tau(store),
    }
    backend.save_store(store, directory)
    mutations_path = os.path.join(directory, MUTATIONS_NAME)
    if write_delta:
        manifest["mutations"] = delta.summary()
        with open(mutations_path, "w", encoding="utf-8") as handle:
            json.dump(delta_to_json(backend, delta), handle)
    elif os.path.exists(mutations_path):
        # Overwriting a mutated container with an unmutated store: a stale
        # overlay must not resurrect on the next load.
        os.remove(mutations_path)
    if queries is not None:
        backend.save_queries(queries, directory)
        manifest["num_queries"] = len(queries)
    with open(os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest


def load_container(directory: str) -> Container:
    """Load a container written by :func:`save_container`."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"{directory!r} is not an index container (no manifest)")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_FORMAT_VERSIONS))
        raise ValueError(f"unsupported container format {version!r} (supported: {supported})")
    backend = get_backend(manifest["backend"])
    store = backend.load_store(directory)
    queries = backend.load_queries(directory)
    delta = None
    mutations_path = os.path.join(directory, MUTATIONS_NAME)
    if os.path.exists(mutations_path):
        with open(mutations_path, encoding="utf-8") as handle:
            delta = delta_from_json(backend, json.load(handle))
    return Container(backend=backend, store=store, queries=queries, manifest=manifest, delta=delta)
