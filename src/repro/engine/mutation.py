"""Online index mutation: a delta/tombstone overlay over an immutable index.

The engine's four domain indexes (partition index, prefix filters, q-gram
inverted lists, Pars partitions) are built once over a frozen dataset; none
of them supports in-place inserts or deletes.  This module makes a served
index *writable* the way LSM-style systems do, with a **main/delta split**:

* the **main** store is the immutable prepared dataset plus its build-once
  index, exactly as before;
* a small :class:`DeltaStore` rides on top, holding

  - ``records`` -- freshly upserted objects, answered by an exact linear
    scan (batched through the backend's vectorised
    :meth:`repro.engine.backend.Backend.scan_records` /
    :meth:`~repro.engine.backend.Backend.record_distances` kernels, so a
    large delta is one kernel call, not one Python dispatch per record)
    and merged into every main answer,
  - ``tombstones`` -- external ids whose main copy is dead (deleted, or
    shadowed by an upsert), filtered out of every main answer, and
  - ``ids`` -- the mapping from main *positions* (what the searchers emit)
    to stable *external* ids, which stops being the identity after the
    first compaction that drops records;

* :meth:`repro.engine.backend.Backend.apply_mutations` (compaction) folds
  the delta into a rebuilt main store, clearing the overlay.

Because the pigeonring searchers are exact at every threshold, merging the
delta scan into the main answer reproduces, byte for byte, the answer an
index rebuilt from the post-mutation dataset would give -- the property the
engine's mutation tests assert per domain.

A :class:`DeltaStore` is treated as **immutable**: every mutation returns a
new instance (sharing the unchanged parts), so an in-flight search that
snapshotted the overlay keeps a consistent view while writers advance it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Mapping


@dataclass(frozen=True)
class DeltaStore:
    """The mutable overlay of one backend's store.

    Attributes:
        ids: external id of every main position, ascending (``ids[pos]``).
        positions: the inverse map, external id -> main position.
        tombstones: external ids whose main copy must not be served.
        records: external id -> raw record, for objects living in the delta.
        next_id: the smallest never-assigned external id.
        mutated: True once any mutation has ever been applied (survives
            compaction; a mutated index returns threshold answers sorted by
            external id, like the sharded engine, so answers stay comparable
            to a from-scratch rebuild).
    """

    ids: tuple[int, ...]
    positions: Mapping[int, int]
    tombstones: frozenset = frozenset()
    records: dict[int, Any] = field(default_factory=dict)
    next_id: int = 0
    mutated: bool = False

    @classmethod
    def fresh(cls, num_objects: int) -> "DeltaStore":
        """The identity overlay of a just-prepared store of ``num_objects``."""
        ids = tuple(range(num_objects))
        return cls(
            ids=ids,
            positions={obj_id: obj_id for obj_id in ids},
            next_id=num_objects,
        )

    # -- views -------------------------------------------------------------

    @property
    def is_identity(self) -> bool:
        """True when the overlay changes nothing about the served content.

        ``next_id`` may have advanced past the main size (an append that was
        deleted again) -- that affects future id assignment, not the stored
        records, so compaction has nothing to fold.
        """
        return not self.tombstones and not self.records and self.ids == tuple(range(len(self.ids)))

    @property
    def num_live(self) -> int:
        """Objects a query can currently match (main minus dead, plus delta)."""
        return len(self.ids) - len(self.tombstones) + len(self.records)

    def is_live(self, obj_id: int) -> bool:
        """Whether an external id currently names a live object."""
        if obj_id in self.records:
            return True
        return obj_id in self.positions and obj_id not in self.tombstones

    def live_main(self) -> Iterator[tuple[int, int]]:
        """``(position, external id)`` of every live main object, id order."""
        for position, obj_id in enumerate(self.ids):
            if obj_id not in self.tombstones:
                yield position, obj_id

    def summary(self) -> dict:
        """JSON-friendly counters for manifests, ``/stats`` and CLIs."""
        return {
            "num_main": len(self.ids),
            "num_tombstones": len(self.tombstones),
            "delta_records": len(self.records),
            "num_live": self.num_live,
            "next_id": self.next_id,
            "mutated": self.mutated,
        }

    # -- mutations (copy-on-write) -----------------------------------------

    def with_upsert(self, record: Any, obj_id: int | None = None) -> tuple["DeltaStore", int]:
        """Insert or overwrite one record; returns the overlay and its id."""
        if obj_id is None:
            obj_id = self.next_id
        elif obj_id < 0:
            raise ValueError(f"object ids are non-negative, got {obj_id}")
        tombstones = self.tombstones
        if obj_id in self.positions and obj_id not in tombstones:
            # The id names a main object: shadow it, the delta copy wins.
            tombstones = tombstones | {obj_id}
        records = dict(self.records)
        records[obj_id] = record
        return (
            replace(
                self,
                tombstones=tombstones,
                records=records,
                next_id=max(self.next_id, obj_id + 1),
                mutated=True,
            ),
            obj_id,
        )

    def with_delete(self, obj_id: int) -> tuple["DeltaStore", bool]:
        """Remove one external id; returns the overlay and whether it was live."""
        deleted = False
        tombstones = self.tombstones
        records = self.records
        if obj_id in self.records:
            records = dict(self.records)
            del records[obj_id]
            deleted = True
        if obj_id in self.positions and obj_id not in tombstones:
            tombstones = tombstones | {obj_id}
            deleted = True
        if not deleted:
            return self, False
        return replace(self, tombstones=tombstones, records=records, mutated=True), True

    def live_records(self, main_records: Any) -> tuple[list[int], list[Any]]:
        """Every live ``(external id, record)`` pair, ascending by id.

        ``main_records`` is indexed by main *position* (the backend's raw
        record sequence); delta records shadow tombstoned main copies.
        """
        merged = {obj_id: main_records[position] for position, obj_id in self.live_main()}
        merged.update(self.records)
        ordered = sorted(merged)
        return ordered, [merged[obj_id] for obj_id in ordered]

    def compacted(self, live_ids: list[int]) -> "DeltaStore":
        """The overlay of the rebuilt main store holding ``live_ids``.

        The rebuilt store is immutable again -- empty delta, no tombstones --
        but the id mapping and ``next_id`` survive, so external ids stay
        stable across compactions.
        """
        ids = tuple(live_ids)
        return DeltaStore(
            ids=ids,
            positions={obj_id: position for position, obj_id in enumerate(ids)},
            next_id=self.next_id,
            mutated=self.mutated,
        )


# ---------------------------------------------------------------------------
# Serialisation (used by repro.engine.persistence)
# ---------------------------------------------------------------------------


def delta_to_json(backend: Any, delta: DeltaStore) -> dict:
    """The JSON form of an overlay; records cross through the wire codec."""
    identity_ids = tuple(range(len(delta.ids))) == delta.ids
    return {
        "ids": None if identity_ids else list(delta.ids),
        "num_main": len(delta.ids),
        "tombstones": sorted(delta.tombstones),
        "next_id": delta.next_id,
        "mutated": delta.mutated,
        "records": [
            [obj_id, backend.record_to_wire(record)]
            for obj_id, record in sorted(delta.records.items())
        ],
    }


def delta_from_json(backend: Any, data: dict) -> DeltaStore:
    """Rebuild an overlay written by :func:`delta_to_json`."""
    if data["ids"] is None:
        ids = tuple(range(int(data["num_main"])))
    else:
        ids = tuple(int(obj_id) for obj_id in data["ids"])
    return DeltaStore(
        ids=ids,
        positions={obj_id: position for position, obj_id in enumerate(ids)},
        tombstones=frozenset(int(obj_id) for obj_id in data["tombstones"]),
        records={
            int(obj_id): backend.record_from_wire(wire) for obj_id, wire in data["records"]
        },
        next_id=int(data["next_id"]),
        mutated=bool(data["mutated"]),
    )
