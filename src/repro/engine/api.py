"""The uniform query API of the multi-domain search engine.

Every request against the engine -- whichever of the four domains answers it
-- is a :class:`Query`, and every answer is a :class:`Response`.  A query
either carries a threshold ``tau`` (thresholded selection, the paper's
problem statement) or a result count ``k`` (top-k search, implemented on top
of tau-selection by adaptive threshold escalation; see
:mod:`repro.engine.topk`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np


def _is_int(value: Any) -> bool:
    """True for genuine integers (bool is excluded: True is not a count)."""
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


@dataclass(frozen=True)
class Query:
    """One request against the engine.

    Attributes:
        backend: registered backend name (``hamming``, ``sets``, ``strings``
            or ``graphs``).
        payload: the domain query object -- a binary vector, a token set, a
            string, or a :class:`repro.graphs.graph.Graph`.
        tau: selection threshold.  Distances for ``hamming`` / ``strings`` /
            ``graphs``; a similarity threshold for ``sets`` (a float in
            ``(0, 1]`` means Jaccard, an integer ``>= 1`` means overlap).
            Optional for top-k queries, where it seeds the escalation ladder.
        k: when set, run a top-k search instead of a thresholded selection.
        chain_length: pigeonring chain length ``l``; ``None`` picks the
            backend's paper-tuned default.
        algorithm: which searcher family answers the query; every backend
            understands ``ring`` (pigeonring -- served by the columnar
            candidate pipeline on the sets/strings/graphs backends),
            ``baseline`` (the paper's per-domain baseline: GPH / pkwise /
            Pivotal / Pars) and ``linear`` (brute force).  The sets, strings
            and graphs backends additionally accept ``ring-scalar`` (the
            retained scalar pigeonring reference); sets also accepts
            ``adapt`` and ``partalloc``.
        trace_id: when set, the engine records a span timeline for this
            query and attaches it as ``Response.trace``.  The id also
            threads through the diagnostics layer: it becomes the
            OpenMetrics exemplar on the latency-histogram bucket the query
            lands in (see :mod:`repro.common.obs`) and keys the trace in
            the tail sampler's ring (:class:`repro.common.diag.
            TailSampler`), so a slow bucket on ``/metrics`` resolves to a
            concrete timeline under ``/debug/traces``.  Excluded from
            equality/hashing so tracing never perturbs the result cache.
        session: read-your-writes session token -- the ``wal_seq`` map the
            caller's last mutation was acknowledged at, rendered as
            ``"shard:seq,shard:seq"`` (see :func:`repro.engine.wire.
            format_session`).  A replicated engine skips replicas that have
            not yet applied the token's sequence for their shard.  Excluded
            from equality/hashing: the token constrains *routing*, never
            the answer, so it must not perturb the result cache.
    """

    backend: str
    payload: Any
    tau: float | int | None = None
    k: int | None = None
    chain_length: int | None = None
    algorithm: str = "ring"
    trace_id: str | None = field(default=None, compare=False)
    session: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.tau is None and self.k is None:
            raise ValueError("a query needs a threshold tau, a result count k, or both")
        if self.k is not None:
            if not _is_int(self.k):
                raise ValueError(f"k must be an integer, got {self.k!r}")
            if self.k < 1:
                raise ValueError("k must be at least 1")
        if self.tau is not None:
            if not _is_number(self.tau):
                raise ValueError(f"tau must be a number, got {self.tau!r}")
            if math.isnan(self.tau):
                raise ValueError("tau must not be NaN")
            if math.isinf(self.tau):
                raise ValueError("tau must be finite")
            if self.tau < 0:
                raise ValueError(f"tau must be non-negative, got {self.tau!r}")
        if self.chain_length is not None:
            if not _is_int(self.chain_length):
                raise ValueError(f"chain_length must be an integer, got {self.chain_length!r}")
            if self.chain_length < 1:
                raise ValueError("chain_length must be at least 1")


@dataclass
class Response:
    """The engine's answer to one :class:`Query`.

    Attributes:
        query: the query that produced this response.
        ids: ids of the matching data objects.  For top-k queries they are
            ordered best-first; for thresholded queries they follow the
            searcher's emission order.
        scores: exact distances (or negated similarities for ``sets``) of the
            returned ids; populated for top-k queries, ``None`` otherwise.
        tau_effective: the threshold that produced the result -- the query's
            own ``tau``, or the final rung of the top-k escalation ladder.
        num_candidates: objects that reached verification (filter output).
        num_generated: objects that *entered* the filter pipeline before the
            chain checks (reported by the columnar searchers; ``None`` when
            the searcher does not track it).
        candidate_time / verify_time: searcher-reported seconds, as in
            :class:`repro.common.stats.SearchResult`.
        engine_time: wall-clock seconds spent inside the engine for this
            query, including searcher construction and cache bookkeeping.
        cached: True when the response was served from the result cache.
        trace: span timeline recorded for this query (see
            :mod:`repro.common.obs`); ``None`` unless the query carried a
            ``trace_id``.
    """

    query: Query
    ids: list[int] = field(default_factory=list)
    scores: list[float] | None = None
    tau_effective: float | int | None = None
    num_candidates: int = 0
    num_generated: int | None = None
    candidate_time: float = 0.0
    verify_time: float = 0.0
    engine_time: float = 0.0
    cached: bool = False
    trace: dict | None = None

    @property
    def num_results(self) -> int:
        return len(self.ids)

    @property
    def total_time(self) -> float:
        """Searcher-reported filtering plus verification time."""
        return self.candidate_time + self.verify_time
